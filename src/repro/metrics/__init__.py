"""Fidelity metrics used throughout §5."""

from repro.metrics.autocorrelation import (autocorrelation_mse,
                                           average_autocorrelation,
                                           series_autocorrelation)
from repro.metrics.conditional import (conditional_w1,
                                       per_object_statistic)
from repro.metrics.crosscorrelation import (cross_correlation_error,
                                            feature_correlation_matrix)
from repro.metrics.distances import (categorical_jsd,
                                     jensen_shannon_divergence,
                                     total_variation, wasserstein1)
from repro.metrics.distributions import (attribute_histogram, diversity_score,
                                         empirical_cdf, length_histogram,
                                         mode_coverage, per_object_total)
from repro.metrics.memorization import (NearestNeighborResult,
                                        memorization_ratio, nearest_neighbors)
from repro.metrics.ranking import rankdata, spearman_rank_correlation

__all__ = [
    "series_autocorrelation", "average_autocorrelation",
    "autocorrelation_mse",
    "conditional_w1", "per_object_statistic",
    "feature_correlation_matrix", "cross_correlation_error",
    "wasserstein1", "jensen_shannon_divergence", "categorical_jsd",
    "total_variation",
    "length_histogram", "attribute_histogram", "per_object_total",
    "empirical_cdf", "diversity_score", "mode_coverage",
    "NearestNeighborResult", "nearest_neighbors", "memorization_ratio",
    "rankdata", "spearman_rank_correlation",
]
