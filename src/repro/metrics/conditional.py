"""Conditional-distribution fidelity (the Table 3 / Figure 9 pattern).

The hard part of joint attribute-feature modelling is the *conditional*
P(feature statistic | attribute): e.g. total bandwidth given technology.
These helpers generalise the paper's Table-3 evaluation to any categorical
attribute and per-object statistic.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TimeSeriesDataset, padding_mask
from repro.metrics.distances import wasserstein1

__all__ = ["per_object_statistic", "conditional_w1"]

_STATISTICS = ("sum", "mean", "max", "length")


def per_object_statistic(dataset: TimeSeriesDataset, feature: str,
                         statistic: str = "sum") -> np.ndarray:
    """One scalar per object: sum/mean/max of a feature, or series length."""
    if statistic not in _STATISTICS:
        raise ValueError(f"statistic must be one of {_STATISTICS}")
    if statistic == "length":
        return dataset.lengths.astype(np.float64)
    column = dataset.feature_column(feature)
    mask = padding_mask(dataset.lengths, dataset.schema.max_length)
    if statistic == "sum":
        return (column * mask).sum(axis=1)
    if statistic == "mean":
        return (column * mask).sum(axis=1) / dataset.lengths
    return np.where(mask > 0, column, -np.inf).max(axis=1)


def conditional_w1(real: TimeSeriesDataset, synthetic: TimeSeriesDataset,
                   attribute: str, feature: str, statistic: str = "sum",
                   min_samples: int = 3) -> dict:
    """W1 distance of a per-object statistic, conditioned on an attribute.

    Returns a dict with one entry per category label (W1 between real and
    synthetic conditional distributions; NaN when either side has fewer
    than ``min_samples`` objects) plus ``"__macro__"``, the mean over
    categories where the distance is defined.
    """
    if real.schema != synthetic.schema:
        raise ValueError("real and synthetic schemas differ")
    spec = real.schema.attribute(attribute)
    if not spec.is_categorical:
        raise ValueError(f"{attribute!r} is not categorical")

    real_stat = per_object_statistic(real, feature, statistic)
    syn_stat = per_object_statistic(synthetic, feature, statistic)
    real_groups = real.attribute_column(attribute).astype(int)
    syn_groups = synthetic.attribute_column(attribute).astype(int)

    out: dict = {}
    defined = []
    for index, label in enumerate(spec.categories):
        a = real_stat[real_groups == index]
        b = syn_stat[syn_groups == index]
        if len(a) < min_samples or len(b) < min_samples:
            out[label] = float("nan")
            continue
        out[label] = wasserstein1(a, b)
        defined.append(out[label])
    out["__macro__"] = float(np.mean(defined)) if defined else float("nan")
    return out
