"""Distribution distances: Wasserstein-1 (Table 3) and JSD (Figures 20-23)."""

from __future__ import annotations

import numpy as np

__all__ = ["wasserstein1", "jensen_shannon_divergence",
           "categorical_jsd", "total_variation"]


def wasserstein1(a: np.ndarray, b: np.ndarray) -> float:
    """Wasserstein-1 distance between two empirical 1-D distributions.

    Footnote 6 of the paper: "the integrated absolute error between 2 CDFs";
    for samples this is computed exactly from the sorted pooled values.
    """
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    if len(a) == 0 and len(b) == 0:
        raise ValueError("both samples are empty; wasserstein1 needs at "
                         "least one value on each side")
    if len(a) == 0:
        raise ValueError("the first sample is empty; wasserstein1 needs "
                         "at least one value on each side")
    if len(b) == 0:
        raise ValueError("the second sample is empty; wasserstein1 needs "
                         "at least one value on each side")
    support = np.concatenate([a, b])
    support.sort(kind="mergesort")
    deltas = np.diff(support)
    cdf_a = np.searchsorted(a, support[:-1], side="right") / len(a)
    cdf_b = np.searchsorted(b, support[:-1], side="right") / len(b)
    return float(np.sum(np.abs(cdf_a - cdf_b) * deltas))


def _entropy(p: np.ndarray) -> float:
    mask = p > 0
    return float(-(p[mask] * np.log2(p[mask])).sum())


def jensen_shannon_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """JSD (base-2, in [0, 1]) between two discrete distributions."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same support size")
    if p.sum() <= 0 or q.sum() <= 0:
        raise ValueError("distributions must have positive mass")
    p = p / p.sum()
    q = q / q.sum()
    m = 0.5 * (p + q)
    return float(_entropy(m) - 0.5 * _entropy(p) - 0.5 * _entropy(q))


def categorical_jsd(real_values: np.ndarray, synthetic_values: np.ndarray,
                    n_categories: int) -> float:
    """JSD between empirical categorical histograms (Figures 20, 21, 23)."""
    real_values = np.asarray(real_values, dtype=np.int64)
    synthetic_values = np.asarray(synthetic_values, dtype=np.int64)
    for label, values in (("real", real_values),
                          ("synthetic", synthetic_values)):
        if values.size and values.min() < 0:
            raise ValueError(
                f"{label} values contain a negative category "
                f"({int(values.min())}); category labels must be "
                f"integers in [0, n_categories)")
    real_counts = np.bincount(real_values,
                              minlength=n_categories).astype(np.float64)
    syn_counts = np.bincount(synthetic_values,
                             minlength=n_categories).astype(np.float64)
    return jensen_shannon_divergence(real_counts, syn_counts)


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two discrete distributions."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    p = p / p.sum()
    q = q / q.sum()
    return float(0.5 * np.abs(p - q).sum())
