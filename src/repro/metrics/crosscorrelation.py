"""Cross-feature correlation fidelity.

GCUT and MBA have multi-dimensional features whose *inter-feature*
structure matters (CPU tracks memory; loss tracks congestion).  These
metrics compare the feature-feature Pearson correlation matrices of real
and synthetic datasets -- a multivariate companion to the per-feature
autocorrelation microbenchmark of §5.1.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TimeSeriesDataset, padding_mask

__all__ = ["feature_correlation_matrix", "cross_correlation_error"]


def feature_correlation_matrix(dataset: TimeSeriesDataset) -> np.ndarray:
    """Pearson correlations between continuous features over valid steps.

    Returns a (K, K) matrix over the continuous feature columns, computed
    on the pooled valid (unpadded) time steps of all objects.  Constant
    columns yield NaN rows/columns, mirroring numpy's corrcoef.
    """
    continuous = [i for i, f in enumerate(dataset.schema.features)
                  if not f.is_categorical]
    if len(continuous) < 1:
        raise ValueError("dataset has no continuous features")
    mask = padding_mask(dataset.lengths, dataset.schema.max_length) > 0
    columns = [dataset.features[:, :, i][mask] for i in continuous]
    stacked = np.stack(columns)
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.corrcoef(stacked)
    # corrcoef collapses a single row to a 0-d array; keep (K, K) shape.
    return np.atleast_2d(corr)


def cross_correlation_error(real: TimeSeriesDataset,
                            synthetic: TimeSeriesDataset) -> float:
    """Mean absolute error between real/synthetic correlation matrices.

    Only off-diagonal, finite entries are compared (diagonals are 1 by
    definition; NaNs arise from constant columns).  0 means the synthetic
    data reproduces every pairwise feature relationship exactly.
    """
    if real.schema != synthetic.schema:
        raise ValueError("real and synthetic schemas differ")
    real_corr = feature_correlation_matrix(real)
    syn_corr = feature_correlation_matrix(synthetic)
    k = real_corr.shape[0]
    if k == 1:
        return 0.0
    off_diagonal = ~np.eye(k, dtype=bool)
    valid = (off_diagonal & np.isfinite(real_corr)
             & np.isfinite(syn_corr))
    if not valid.any():
        raise ValueError("no comparable correlation entries")
    return float(np.abs(real_corr[valid] - syn_corr[valid]).mean())
