"""Distributional summaries used across the evaluation figures.

- length histograms (Figure 7 / 14);
- attribute histograms (Figures 8, 15-19, 22);
- per-user totals such as two-week bandwidth (Table 3 / Figure 9);
- empirical CDFs;
- a sample-diversity score used to quantify mode collapse (Figure 5).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TimeSeriesDataset, padding_mask

__all__ = ["length_histogram", "attribute_histogram", "per_object_total",
           "empirical_cdf", "diversity_score", "mode_coverage"]


def length_histogram(dataset: TimeSeriesDataset) -> np.ndarray:
    """Counts of series lengths 1..max_length (Figure 7)."""
    return np.bincount(dataset.lengths,
                       minlength=dataset.schema.max_length + 1)[1:]


def attribute_histogram(dataset: TimeSeriesDataset,
                        attribute: str) -> np.ndarray:
    """Counts per category of one categorical attribute (Figure 8)."""
    spec = dataset.schema.attribute(attribute)
    if not spec.is_categorical:
        raise ValueError(f"attribute {attribute!r} is not categorical")
    values = dataset.attribute_column(attribute).astype(np.int64)
    return np.bincount(values, minlength=spec.dimension)


def per_object_total(dataset: TimeSeriesDataset, feature: str) -> np.ndarray:
    """Sum of one feature over each object's valid steps (total bandwidth)."""
    column = dataset.feature_column(feature)
    mask = padding_mask(dataset.lengths, dataset.schema.max_length)
    return (column * mask).sum(axis=1)


def empirical_cdf(values: np.ndarray, grid: np.ndarray | None = None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Return (grid, CDF at grid); grid defaults to the sorted values."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if grid is None:
        grid = values
    cdf = np.searchsorted(values, grid, side="right") / len(values)
    return np.asarray(grid), cdf


def diversity_score(features: np.ndarray) -> float:
    """Spread of per-sample levels; near 0 indicates mode collapse (Fig 5).

    Computed as the standard deviation across samples of each sample's mean
    value, normalised by the overall standard deviation.  A generator that
    emits near-identical samples scores ~0; one matching a wide dynamic
    range scores close to the real data's value.
    """
    features = np.asarray(features, dtype=np.float64)
    per_sample_mean = features.reshape(len(features), -1).mean(axis=1)
    overall_std = features.std() + 1e-12
    return float(per_sample_mean.std() / overall_std)


def mode_coverage(real_values: np.ndarray, synthetic_values: np.ndarray,
                  n_categories: int, threshold: float = 0.2) -> int:
    """How many real categories the synthetic data covers (Figure 8).

    A category counts as covered when the synthetic frequency is at least
    ``threshold`` times the real frequency.
    """
    real_counts = np.bincount(np.asarray(real_values, dtype=np.int64),
                              minlength=n_categories).astype(float)
    syn_counts = np.bincount(np.asarray(synthetic_values, dtype=np.int64),
                             minlength=n_categories).astype(float)
    real_freq = real_counts / real_counts.sum()
    syn_freq = syn_counts / max(syn_counts.sum(), 1.0)
    covered = 0
    for r, s in zip(real_freq, syn_freq):
        if r == 0 or s >= threshold * r:
            covered += 1
    return covered
