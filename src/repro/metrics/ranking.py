"""Spearman rank correlation (Table 4): do predictor rankings transfer from
real to synthetic data?"""

from __future__ import annotations

import numpy as np

__all__ = ["rankdata", "spearman_rank_correlation"]


def rankdata(values: np.ndarray) -> np.ndarray:
    """Ranks starting at 1, with ties given their average rank."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1)
    # Average ranks within tie groups.
    sorted_vals = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def spearman_rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman's rho between two score vectors (e.g. predictor accuracies)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be equal-length 1-D arrays")
    if len(a) < 2:
        raise ValueError("need at least two scores to rank")
    ra, rb = rankdata(a), rankdata(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra * ra).sum() * (rb * rb).sum())
    if denom == 0:
        return 0.0
    return float((ra * rb).sum() / denom)
