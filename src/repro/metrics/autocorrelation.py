"""Autocorrelation metrics (Figure 1, Figure 4).

The paper's headline fidelity microbenchmark: the autocorrelation function
of each series, averaged over all samples.  DoppelGANger should capture both
the short-period (weekly) spikes and the long-period (annual) peak; the
Figure-4 ablation scores models by the mean squared error between generated
and real average ACFs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["series_autocorrelation", "average_autocorrelation",
           "autocorrelation_mse"]


def series_autocorrelation(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Sample ACF of one 1-D series for lags 0..max_lag (NaN when undefined)."""
    series = np.asarray(series, dtype=np.float64)
    n = len(series)
    out = np.full(max_lag + 1, np.nan)
    if n < 2:
        return out
    centred = series - series.mean()
    denom = float((centred * centred).sum())
    if denom <= 0:
        return out
    limit = min(max_lag, n - 1)
    for lag in range(limit + 1):
        out[lag] = float((centred[: n - lag] * centred[lag:]).sum()) / denom
    return out


def average_autocorrelation(features: np.ndarray,
                            lengths: np.ndarray | None = None,
                            max_lag: int | None = None) -> np.ndarray:
    """Per-series ACF averaged over samples (the Figure-1 curve).

    Args:
        features: (n, T) array of one feature column.
        lengths: Valid lengths per series (defaults to full T).
        max_lag: Largest lag (defaults to T - 1).
    """
    features = np.asarray(features, dtype=np.float64)
    n, tmax = features.shape
    if lengths is None:
        lengths = np.full(n, tmax, dtype=np.int64)
    if max_lag is None:
        max_lag = tmax - 1
    acfs = np.stack([
        series_autocorrelation(features[i, :lengths[i]], max_lag)
        for i in range(n)
    ])
    with np.errstate(invalid="ignore"):
        return np.nanmean(acfs, axis=0)


def autocorrelation_mse(real_acf: np.ndarray,
                        synthetic_acf: np.ndarray) -> float:
    """MSE between two average-ACF curves over their shared finite lags."""
    real_acf = np.asarray(real_acf, dtype=np.float64)
    synthetic_acf = np.asarray(synthetic_acf, dtype=np.float64)
    k = min(len(real_acf), len(synthetic_acf))
    a, b = real_acf[:k], synthetic_acf[:k]
    valid = np.isfinite(a) & np.isfinite(b)
    if not valid.any():
        raise ValueError("no overlapping finite lags to compare")
    diff = a[valid] - b[valid]
    return float((diff * diff).mean())
