"""Memorization check (§5.1 "DoppelGANger does not just memorize",
Figures 24-26): nearest-neighbour distances between generated samples and
the training set.  A memorizing model produces near-zero distances; a
generalising one does not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NearestNeighborResult", "nearest_neighbors",
           "memorization_ratio"]


@dataclass
class NearestNeighborResult:
    """Distances and indices of the top-k training neighbours per sample."""

    distances: np.ndarray  # (n_generated, k) squared errors, ascending
    indices: np.ndarray    # (n_generated, k)


def nearest_neighbors(generated: np.ndarray, training: np.ndarray,
                      k: int = 3) -> NearestNeighborResult:
    """Top-k nearest training series for each generated series.

    Both inputs are (n, T) single-feature matrices; distance is mean squared
    error over time steps (the paper's "square error").
    """
    generated = np.asarray(generated, dtype=np.float64)
    training = np.asarray(training, dtype=np.float64)
    for label, matrix in (("generated", generated), ("training", training)):
        if matrix.ndim != 2:
            raise ValueError(
                f"{label} must be a 2-D (n_samples, length) matrix, got "
                f"a {matrix.ndim}-D array of shape {matrix.shape}")
        if matrix.shape[0] == 0:
            raise ValueError(f"{label} is empty; nearest_neighbors needs "
                             f"at least one sample on each side")
    if generated.shape[1] != training.shape[1]:
        raise ValueError("generated/training series lengths differ")
    if k > len(training):
        raise ValueError("k exceeds the number of training samples")
    # (n_gen, n_train) squared distances via the expansion trick.
    gg = (generated * generated).sum(axis=1)[:, None]
    tt = (training * training).sum(axis=1)[None, :]
    cross = generated @ training.T
    d2 = np.maximum(gg + tt - 2 * cross, 0.0) / generated.shape[1]
    order = np.argsort(d2, axis=1)[:, :k]
    rows = np.arange(len(generated))[:, None]
    return NearestNeighborResult(distances=d2[rows, order], indices=order)


def memorization_ratio(generated: np.ndarray, training: np.ndarray,
                       holdout: np.ndarray) -> float:
    """Ratio of mean NN-distance to training vs to a real holdout set.

    A value near (or above) 1 means generated samples are no closer to the
    training data than fresh real data is -- i.e. no memorization.  Values
    far below 1 flag copying.
    """
    for label, matrix in (("generated", generated), ("training", training),
                          ("holdout", holdout)):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(
                f"{label} must be a 2-D (n_samples, length) matrix, got "
                f"a {matrix.ndim}-D array of shape {matrix.shape}")
        if matrix.shape[0] == 0:
            raise ValueError(f"{label} is empty; memorization_ratio needs "
                             f"at least one sample in each set")
    to_train = nearest_neighbors(generated, training, k=1).distances.mean()
    baseline = nearest_neighbors(holdout, training, k=1).distances.mean()
    return float(to_train / (baseline + 1e-12))
