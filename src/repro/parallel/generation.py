"""Sharded (multi-process) generation for DoppelGANger.

Batched generation (Figure 4 of the paper) is embarrassingly parallel
across samples: the generator is a pure function of (parameters, noise).
This module splits a generation request into the same fixed *blocks* the
serial path uses -- at most ``batch_size`` samples each -- with every
block's noise tensors drawn from the caller's generator *in plan order,
in the parent process*, before any work is dispatched.  Each worker then
receives the model as a serialized state archive plus its blocks' noise,
and the results are reassembled in plan order.

Because workers never touch an RNG, ``generate(n, workers=k)`` is
bit-identical to ``generate(n)`` for every ``k`` -- and the serial path
consumes the caller's generator exactly as a plain batched loop would, so
adding ``workers=`` changed no previously-seeded output
(docs/architecture.md, "Parallel execution").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.observability import events as obs_events
from repro.parallel.pool import ProcessPool, effective_workers

__all__ = ["BlockPlan", "plan_blocks", "generate_encoded_sharded"]


@dataclass(frozen=True)
class BlockPlan:
    """One generation block: ``size`` samples using pre-drawn ``noise``."""

    size: int
    noise: tuple  # (z_a | None, z_m, z_f) arrays, drawn in the parent
    cond: np.ndarray | None  # encoded attribute rows, or None


def plan_blocks(n: int, batch_size: int) -> list[int]:
    """Block sizes for ``n`` samples: full batches plus a remainder."""
    if n < 0:
        raise ValueError("n must be >= 0")
    sizes = [batch_size] * (n // batch_size)
    if n % batch_size:
        sizes.append(n % batch_size)
    return sizes


def _generate_shard(task) -> list[tuple]:
    """Worker entry: load the model from its state blob, run its blocks."""
    model_blob, blocks = task
    from repro.core.doppelganger import DoppelGANger

    model = DoppelGANger.load_bytes(model_blob)
    return [model._generate_block(b.size, b.noise, b.cond) for b in blocks]


def generate_encoded_sharded(model, blocks: list[BlockPlan],
                             workers: int) -> list[tuple]:
    """Run generation blocks across worker processes, in block order.

    Each worker receives the model as a serialized state archive
    (:meth:`DoppelGANger.save_bytes`) and a contiguous run of blocks;
    results are reassembled in plan order so the output is independent of
    the worker count.
    """
    workers = effective_workers(workers, len(blocks))
    groups = [list(g) for g in np.array_split(np.asarray(blocks,
                                                         dtype=object),
                                              workers) if len(g)]
    blob = model.save_bytes()
    # Shard layout depends on the requested worker count, so the event is
    # transient: it appears in the raw stream for debugging but never in
    # the canonical log, which must be worker-count invariant.
    obs_events.emit("generation.shard",
                    {}, volatile={"workers": workers,
                                  "shards": [len(g) for g in groups],
                                  "payload_bytes": len(blob)},
                    transient=True)
    tasks = [(blob, group) for group in groups]
    grouped = ProcessPool(workers).map(_generate_shard, tasks)
    return [triple for group in grouped for triple in group]
