"""Sharded (multi-process) generation for DoppelGANger.

Batched generation (Figure 4 of the paper) is embarrassingly parallel
across samples: the generator is a pure function of (parameters, noise).
This module splits a generation request into the same fixed *blocks* the
serial path uses -- at most ``batch_size`` samples each -- with every
block's noise tensors drawn from the caller's generator *in plan order,
in the parent process*, before any work is dispatched.  Each worker then
receives the model as a serialized state archive plus its blocks' noise,
and the results are reassembled in plan order.

Because workers never touch an RNG, ``generate(n, workers=k)`` is
bit-identical to ``generate(n)`` for every ``k`` -- and the serial path
consumes the caller's generator exactly as a plain batched loop would, so
adding ``workers=`` changed no previously-seeded output
(docs/architecture.md, "Parallel execution").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.observability import events as obs_events
from repro.parallel.pool import ProcessPool, effective_workers

__all__ = ["BlockPlan", "plan_blocks", "plan_request",
           "generate_encoded_sharded"]


@dataclass(frozen=True)
class BlockPlan:
    """One generation block: ``size`` samples using pre-drawn ``noise``."""

    size: int
    noise: tuple  # (z_a | None, z_m, z_f) arrays, drawn in the parent
    cond: np.ndarray | None  # encoded attribute rows, or None


def plan_blocks(n: int, batch_size: int) -> list[int]:
    """Block sizes for ``n`` samples: full batches plus a remainder."""
    if n < 0:
        raise ValueError("n must be >= 0")
    sizes = [batch_size] * (n // batch_size)
    if n % batch_size:
        sizes.append(n % batch_size)
    return sizes


def plan_request(model, n: int, rng: np.random.Generator,
                 attributes: np.ndarray | None = None,
                 block_rows: int | None = None) -> list[BlockPlan]:
    """Plan one generation request into blocks with pre-drawn noise.

    This is the single place a request is turned into model batches: the
    serial path, the sharded path, and the serving micro-batcher all plan
    through it, so "the blocks of ``generate(n, seed)``" means the same
    thing everywhere.  Noise for every block is drawn from ``rng`` here,
    in plan order, which is what makes a request's output independent of
    where (or with what else) its blocks are later executed.

    Args:
        model: A trained :class:`~repro.core.doppelganger.DoppelGANger`.
        n: Number of objects requested.
        rng: The request's randomness source, consumed in plan order.
        attributes: Optional raw attribute rows (n, m) to condition on.
        block_rows: Rows per block.  The default -- the model's configured
            ``batch_size`` -- is the only value whose rng draw order (and
            therefore output) matches :meth:`DoppelGANger.generate`;
            anything else is an explicitly degraded mode (e.g. the
            batch-size-1 serving baseline benchmarked by
            ``benchmarks/bench_serving.py``).
    """
    if attributes is not None and len(attributes) != n:
        raise ValueError("attributes must have n rows")
    sizes = plan_blocks(n, block_rows or model.config.batch_size)
    blocks, done = [], 0
    for size in sizes:
        cond = None
        if attributes is not None:
            cond = model.encoder.encode_attributes(
                attributes[done:done + size])
        blocks.append(BlockPlan(
            size=size,
            noise=model._draw_block_noise(size, rng,
                                          conditioned=cond is not None),
            cond=cond))
        done += size
    return blocks


def _generate_shard(task) -> list[tuple]:
    """Worker entry: load the model from its state blob, run its blocks."""
    model_blob, blocks = task
    from repro.core.doppelganger import DoppelGANger

    model = DoppelGANger.load_bytes(model_blob)
    return [model._generate_block(b.size, b.noise, b.cond) for b in blocks]


def generate_encoded_sharded(model, blocks: list[BlockPlan],
                             workers: int) -> list[tuple]:
    """Run generation blocks across worker processes, in block order.

    Each worker receives the model as a serialized state archive
    (:meth:`DoppelGANger.save_bytes`) and a contiguous run of blocks;
    results are reassembled in plan order so the output is independent of
    the worker count.
    """
    workers = effective_workers(workers, len(blocks))
    groups = [list(g) for g in np.array_split(np.asarray(blocks,
                                                         dtype=object),
                                              workers) if len(g)]
    blob = model.save_bytes()
    # Shard layout depends on the requested worker count, so the event is
    # transient: it appears in the raw stream for debugging but never in
    # the canonical log, which must be worker-count invariant.
    obs_events.emit("generation.shard",
                    {}, volatile={"workers": workers,
                                  "shards": [len(g) for g in groups],
                                  "payload_bytes": len(blob)},
                    transient=True)
    tasks = [(blob, group) for group in groups]
    grouped = ProcessPool(workers).map(_generate_shard, tasks)
    return [triple for group in grouped for triple in group]
