"""Process-parallel execution layer.

Three pieces, built on one :class:`~repro.parallel.pool.ProcessPool`
abstraction:

- **parallel sweeps** (:mod:`repro.parallel.sweep`): each (dataset, model,
  seed) cell of a benchmark sweep trains in a worker subprocess, with
  deterministic per-cell seed spawning, pickling-safe failure records, and
  per-cell wall/CPU timing;
- **sharded generation** (:mod:`repro.parallel.generation`): a generation
  request is split into fixed blocks whose noise is drawn up front in the
  parent, so ``generate(n, workers=k)`` is bit-identical for every ``k``;
- **result caching** (:mod:`repro.parallel.cache`): trained sweep cells
  are stored on disk keyed by (config hash, dataset fingerprint, seed), so
  repeated sweeps skip finished cells.

See docs/architecture.md ("Parallel execution") for the worker model and
the determinism contract.
"""

from repro.parallel.cache import (SweepCache, cell_cache_key,
                                  config_fingerprint, dataset_fingerprint)
from repro.parallel.generation import (BlockPlan, generate_encoded_sharded,
                                       plan_blocks)
from repro.parallel.pool import ProcessPool, effective_workers, start_method
from repro.parallel.sweep import (CellOutcome, CellTiming, SweepCell,
                                  build_cells, run_cells)

__all__ = [
    "ProcessPool", "effective_workers", "start_method",
    "SweepCache", "cell_cache_key", "config_fingerprint",
    "dataset_fingerprint",
    "BlockPlan", "plan_blocks", "generate_encoded_sharded",
    "SweepCell", "CellTiming", "CellOutcome", "build_cells", "run_cells",
]
