"""Process-parallel execution of sweep cells.

A *cell* is one (dataset, model, seed) training job.  The grid of
EXPERIMENTS.md -- 5 models x 3 datasets plus ablations -- is embarrassingly
parallel across cells, and re-training many seeds per configuration is the
dominant cost of honest GAN evaluation, so this module farms cells to
worker subprocesses via :class:`repro.parallel.pool.ProcessPool`.

Determinism contract:

- cells are enumerated in a fixed order (dataset-major, then model, then
  replica), and per-cell training seeds are derived by
  ``np.random.SeedSequence(base_seed).spawn(n_cells)`` -- decorrelated
  streams that do not depend on which worker runs which cell;
- each worker trains through the exact same
  :func:`repro.experiments.harness.get_model` code path the serial sweep
  uses, so ``workers=1`` and ``workers=N`` produce bit-identical models;
- results are reassembled in cell order, never completion order.

Failures cross the process boundary as pickling-safe
:class:`~repro.resilience.failures.FailureRecord` instances inside the
cell outcome -- a diverging model in a worker never aborts the sweep and
never surfaces as an unpicklable traceback.  Every outcome also carries a
:class:`CellTiming` with wall/CPU seconds measured inside the worker.

Telemetry rides the same plumbing: when ``run_cells`` receives a
``telemetry=(root, run_id)`` spec, each worker writes its cell's events
and metric dump to per-cell files under ``root/cells/`` (in whichever
process it runs), and the parent emits cache and dispatch events into its
own stream.  The parent's :class:`~repro.observability.TelemetryRun`
merges everything in cell-enumeration order, so the canonical log is
worker-count invariant.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.observability import events as obs_events
from repro.observability import metrics as obs_metrics
from repro.observability.telemetry import (cell_log_path,
                                           write_cell_metrics)
from repro.parallel.cache import (SweepCache, cell_cache_key,
                                  config_fingerprint, dataset_fingerprint)
from repro.parallel.pool import ProcessPool
from repro.resilience.failures import FailureRecord

__all__ = ["SweepCell", "CellTiming", "CellOutcome", "build_cells",
           "run_cells", "cell_id"]


def cell_id(label) -> str:
    """Canonical string id of a cell label (``dataset/model[/replica]``)."""
    if isinstance(label, tuple):
        return "/".join(str(part) for part in label)
    return str(label)


@dataclass(frozen=True)
class SweepCell:
    """One training job of a sweep.

    ``seed`` is the training seed override (None keeps the scale default);
    ``label`` is the key the trained model appears under in the sweep
    result: ``(dataset, model)`` for single-seed sweeps, or
    ``(dataset, model, replica)`` for multi-seed sweeps.
    """

    dataset: str
    model: str
    seed: int | None
    label: tuple


@dataclass
class CellTiming:
    """Wall/CPU accounting for one cell, measured where it ran."""

    wall: float
    cpu: float
    cached: bool = False
    failed: bool = False
    pid: int = 0

    def row(self, label: tuple) -> list:
        """Render as a row for the report's timing table."""
        status = ("cached" if self.cached
                  else "failed" if self.failed else "trained")
        seed = label[2] if len(label) > 2 else "-"
        return [label[0], label[1], seed, status,
                round(self.wall, 3), round(self.cpu, 3)]


@dataclass
class CellOutcome:
    """What one worker returns for one cell (pickled across processes)."""

    label: tuple
    model: object | None
    failure: FailureRecord | None
    timing: CellTiming


def build_cells(dataset_names, model_names, seeds,
                base_seed: int) -> list[SweepCell]:
    """Enumerate sweep cells in deterministic order with spawned seeds.

    Args:
        seeds: ``None`` -> one cell per (dataset, model) using the scale's
            default seed.  An ``int k`` -> k replicas per pair, each with a
            decorrelated seed spawned from ``SeedSequence(base_seed)``.  A
            sequence of ints -> one replica per given seed, trained with
            exactly that seed.
        base_seed: Root entropy for spawned replica seeds.
    """
    pairs = [(d, m) for d in dataset_names for m in model_names]
    if seeds is None:
        return [SweepCell(d, m, None, (d, m)) for d, m in pairs]
    if isinstance(seeds, (int, np.integer)):
        replicas = int(seeds)
        if replicas < 1:
            raise ValueError("seeds must be >= 1 replicas")
        children = np.random.SeedSequence(base_seed).spawn(
            len(pairs) * replicas)
        cells = []
        for i, (d, m) in enumerate(pairs):
            for r in range(replicas):
                child = children[i * replicas + r]
                seed = int(child.generate_state(1, dtype=np.uint32)[0])
                cells.append(SweepCell(d, m, seed, (d, m, r)))
        return cells
    explicit = [int(s) for s in seeds]
    return [SweepCell(d, m, s, (d, m, s))
            for d, m in pairs for s in explicit]


def _cell_config(cell: SweepCell, scale, config_overrides: dict) -> dict:
    """The full, fingerprintable configuration of one cell.

    Delegates to the cell's backend so every architecture -- not just
    DoppelGANger -- contributes its complete hyper-parameter set to the
    on-disk cache key.  The canonical backend name is part of the key,
    so an alias (``dg``) and its canonical form share cache entries.
    """
    from repro.backends import get_backend

    backend = get_backend(cell.model)
    config = backend.make_config(cell.dataset, scale, seed=cell.seed,
                                 **config_overrides)
    return {"backend": backend.name, "config": config}


def _run_cell(payload) -> CellOutcome:
    """Worker entry point: train one cell, catching failures structurally."""
    cell, scale, config_overrides, telemetry = payload
    from repro.experiments import harness
    from repro.resilience.faults import SimulatedKill

    if telemetry is not None:
        return _run_cell_with_telemetry(cell, scale, config_overrides,
                                        telemetry)
    wall0, cpu0 = time.perf_counter(), time.process_time()
    model, failure = None, None
    try:
        model = harness.get_model(cell.dataset, cell.model, scale,
                                  seed=cell.seed, **config_overrides)
    except (KeyboardInterrupt, SimulatedKill):
        raise
    except Exception as exc:
        records = harness.get_failures()
        if records and records[-1].dataset == cell.dataset \
                and records[-1].model == cell.model:
            failure = records[-1]
        else:
            failure = FailureRecord.from_exception(cell.dataset, cell.model,
                                                   exc)
    timing = CellTiming(wall=time.perf_counter() - wall0,
                        cpu=time.process_time() - cpu0,
                        failed=failure is not None, pid=os.getpid())
    return CellOutcome(label=cell.label, model=model, failure=failure,
                       timing=timing)


def _run_cell_with_telemetry(cell, scale, config_overrides,
                             telemetry) -> CellOutcome:
    """Run one cell inside its own event-log/metrics scope.

    The cell's stream goes to ``root/cells/<label>.jsonl`` and its metric
    dump to ``root/cells/<label>.metrics.json`` -- written wherever the
    cell runs (worker subprocess or inline), then merged by the parent.
    A fresh registry per cell keeps the dump independent of which other
    cells shared the process.
    """
    root, run_id = telemetry
    label_id = cell_id(cell.label)
    registry = obs_metrics.MetricsRegistry()
    with obs_events.EventLog(cell_log_path(root, cell.label),
                             run_id=run_id, cell=label_id) as log, \
            obs_events.capture(log), obs_metrics.use(registry):
        log.emit("cell.start", {"dataset": cell.dataset,
                                "model": cell.model,
                                "seed": cell.seed})
        wall0, cpu0 = time.perf_counter(), time.process_time()
        outcome = _run_cell((cell, scale, config_overrides, None))
        timing = outcome.timing
        if outcome.failure is not None:
            f = outcome.failure
            log.emit("cell.failure",
                     {"dataset": f.dataset, "model": f.model,
                      "exception_type": f.exception_type,
                      "message": f.message, "iteration": f.iteration,
                      "retries": f.retries},
                     volatile={"elapsed": f.elapsed})
        log.emit("cell.finish",
                 {"status": "failed" if outcome.failure is not None
                  else "trained"},
                 volatile={"wall": time.perf_counter() - wall0,
                           "cpu": time.process_time() - cpu0,
                           "pid": os.getpid()})
    write_cell_metrics(root, cell.label, registry)
    return outcome


def run_cells(cells: list[SweepCell], scale, config_overrides: dict,
              workers: int = 1, cache_dir=None,
              telemetry=None) -> list[CellOutcome]:
    """Execute cells (cache, then pool), returning outcomes in cell order.

    Cache hits are resolved in the calling process and never dispatched;
    fresh results are written back to the cache.  ``workers=1`` runs every
    cell inline through the identical worker code path.

    Args:
        telemetry: Optional ``(root, run_id)`` spec: workers write
            per-cell event/metric files under ``root/cells/`` and the
            parent emits cache hit/miss events into its current log.
    """
    cache = SweepCache(cache_dir) if cache_dir is not None else None
    keys: dict[tuple, str] = {}
    outcomes: dict[tuple, CellOutcome] = {}
    pending: list[SweepCell] = []

    if cache is not None:
        from repro.experiments.harness import get_dataset

        dataset_fps = {name: dataset_fingerprint(get_dataset(name, scale))
                       for name in {c.dataset for c in cells}}
        for cell in cells:
            key = cell_cache_key(
                cell.model,
                config_fingerprint(_cell_config(cell, scale,
                                                config_overrides)),
                dataset_fps[cell.dataset], cell.seed)
            keys[cell.label] = key
            wall0 = time.perf_counter()
            model = cache.get(key)
            if model is not None:
                obs_events.emit("cache.hit", {"cell": cell_id(cell.label)})
                outcomes[cell.label] = CellOutcome(
                    label=cell.label, model=model, failure=None,
                    timing=CellTiming(wall=time.perf_counter() - wall0,
                                      cpu=0.0, cached=True,
                                      pid=os.getpid()))
            else:
                obs_events.emit("cache.miss", {"cell": cell_id(cell.label)})
                pending.append(cell)
    else:
        pending = list(cells)

    payloads = [(cell, scale, config_overrides, telemetry)
                for cell in pending]
    for outcome in ProcessPool(workers).map(_run_cell, payloads):
        outcomes[outcome.label] = outcome
        if cache is not None and outcome.model is not None:
            cache.put(keys[outcome.label], outcome.model)
            obs_events.emit("cache.store",
                            {"cell": cell_id(outcome.label)})
    return [outcomes[cell.label] for cell in cells]
