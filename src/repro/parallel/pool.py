"""A small process-pool abstraction with deterministic result ordering.

Everything parallel in the reproduction -- sweep cells, generation shards --
funnels through :class:`ProcessPool`, which wraps
:class:`concurrent.futures.ProcessPoolExecutor` with three guarantees:

- **ordered results**: ``map`` returns results in task-submission order,
  never completion order, so parallel runs reassemble bit-identically;
- **in-process fallback**: ``workers <= 1`` (or a single task) runs the
  function inline in the calling process, keeping one code path for the
  serial and parallel cases and making single-core machines first-class;
- **picklable transport**: task functions must be module-level callables
  and their payloads/results picklable -- results carrying structured
  error records (e.g. :class:`repro.resilience.failures.FailureRecord`)
  cross the process boundary intact.

The start method defaults to ``fork`` where available (cheap on Linux, and
the only method that lets tests monkeypatch worker behaviour) and can be
overridden with the ``REPRO_MP_START`` environment variable.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

__all__ = ["ProcessPool", "effective_workers", "start_method",
           "mp_context"]


def start_method() -> str:
    """The multiprocessing start method used by :class:`ProcessPool`."""
    override = os.environ.get("REPRO_MP_START")
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def mp_context():
    """The multiprocessing context every parallel component spawns with.

    Pool workers, sharded generation, and the serving fleet's replica
    processes all come from this one context, so ``REPRO_MP_START``
    governs the whole system and tests can monkeypatch forked children.
    """
    return multiprocessing.get_context(start_method())


def effective_workers(workers: int, n_tasks: int) -> int:
    """Clamp a worker request to something useful for ``n_tasks`` tasks."""
    return max(1, min(int(workers), int(n_tasks)))


class ProcessPool:
    """Run a module-level function over payloads across worker processes.

    Args:
        workers: Requested worker processes.  ``<= 1`` means run inline.
    """

    def __init__(self, workers: int = 1):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = int(workers)

    def map(self, fn, payloads: list) -> list:
        """Apply ``fn`` to each payload; results in submission order.

        An exception raised by ``fn`` propagates to the caller (workers
        that must survive bad cells should catch internally and return a
        structured record instead).
        """
        payloads = list(payloads)
        workers = effective_workers(self.workers, len(payloads))
        if workers <= 1 or len(payloads) <= 1:
            return [fn(p) for p in payloads]
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=mp_context()) as executor:
            return list(executor.map(fn, payloads))
