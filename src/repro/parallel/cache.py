"""Disk-backed result cache for sweep cells.

Honest evaluation means re-training many models per configuration; the
cache makes repeated sweeps over the same grid free.  Each trained model is
stored under a key derived from everything that determines the training
outcome:

- the **config fingerprint** -- a canonical-JSON SHA-256 of the model's
  full configuration (DGConfig fields for DoppelGANger, constructor kwargs
  for baselines), so any hyperparameter change invalidates the entry;
- the **dataset fingerprint** -- a SHA-256 over the schema declaration and
  the raw attribute/feature/length bytes, so a different or regenerated
  dataset invalidates the entry;
- the **seed** the cell was trained with.

Entries are written atomically (temp file + ``os.replace``), and a corrupt
or unreadable entry reads as a miss (and is removed) rather than an error.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle

from repro.observability import events as obs_events

__all__ = ["SweepCache", "dataset_fingerprint", "config_fingerprint",
           "cell_cache_key"]


def _canonical_json(value) -> str:
    """Deterministic JSON for hashing (sorted keys, tuples as lists)."""
    def default(obj):
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return dataclasses.asdict(obj)
        if isinstance(obj, tuple):
            return list(obj)
        raise TypeError(f"unhashable config value: {obj!r}")
    return json.dumps(value, sort_keys=True, default=default)


def config_fingerprint(config) -> str:
    """SHA-256 fingerprint of a model configuration.

    Accepts a dataclass (e.g. :class:`repro.core.config.DGConfig`), a
    plain dict of constructor kwargs, or any JSON-serializable value.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        config = dataclasses.asdict(config)
    return hashlib.sha256(_canonical_json(config).encode()).hexdigest()


def dataset_fingerprint(dataset) -> str:
    """SHA-256 fingerprint of a raw :class:`TimeSeriesDataset`."""
    from repro.data.schema import schema_to_dict

    digest = hashlib.sha256()
    digest.update(_canonical_json(schema_to_dict(dataset.schema)).encode())
    for array in (dataset.attributes, dataset.features, dataset.lengths):
        contiguous = array if array.flags["C_CONTIGUOUS"] else \
            array.copy(order="C")
        digest.update(str(array.shape).encode())
        digest.update(contiguous.tobytes())
    return digest.hexdigest()


def cell_cache_key(model_name: str, config_fp: str, dataset_fp: str,
                   seed) -> str:
    """Key of one sweep cell: (model, config hash, dataset hash, seed)."""
    material = f"{model_name}|{config_fp}|{dataset_fp}|{seed}"
    return hashlib.sha256(material.encode()).hexdigest()


class SweepCache:
    """Filesystem store mapping cell keys to pickled trained models."""

    def __init__(self, root: str | os.PathLike):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.pkl")

    def __contains__(self, key: str) -> bool:
        # Only a completed entry counts: an orphaned ``<key>.pkl.tmp``
        # left by a crash mid-``put`` is not a hit.
        return os.path.exists(self._path(key))

    def get(self, key: str):
        """Return the cached model for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # A truncated or unpicklable entry must never poison a sweep.
            # Corruption reflects a previous run's crash, not this run's
            # config+seed, so the event is transient (raw stream only).
            obs_events.emit("cache.corrupt", {}, volatile={"key": key},
                            transient=True)
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def put(self, key: str, model) -> None:
        """Atomically store ``model`` under ``key``."""
        path = self._path(key)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(model, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def clear(self) -> int:
        """Remove every entry; returns the number removed.

        Also sweeps orphaned ``*.pkl.tmp`` files left behind by a crash
        between ``put()``'s write and its atomic ``os.replace`` -- they
        would otherwise leak forever (they are never read, and ``put``
        always writes its own fresh temp file).  Orphans do not count
        toward the returned number of removed *entries*.
        """
        removed = 0
        for name in os.listdir(self.root):
            path = os.path.join(self.root, name)
            if name.endswith(".pkl"):
                os.remove(path)
                removed += 1
            elif name.endswith(".pkl.tmp"):
                try:
                    os.remove(path)
                except OSError:
                    pass
        return removed
