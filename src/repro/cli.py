"""Command-line interface for the Figure-2 workflow.

Lets a data holder and a data consumer run the full release pipeline
without writing code:

    # data holder: simulate (or load) a dataset, train, release parameters
    python -m repro.cli simulate --dataset gcut --n 400 --out data.npz
    python -m repro.cli train --data data.npz --out model.npz \
        --iterations 400 --sample-len 4

    # data consumer: generate any quantity of synthetic data
    python -m repro.cli generate --model model.npz --n 1000 --out synth.npz

    # inspect a dataset
    python -m repro.cli inspect --data synth.npz

    # scored quality report + privacy attack battery (docs/quality.md)
    python -m repro.cli report --data data.npz --model model.npz \
        --privacy --json report.json --md report.md

    # benchmark sweep (optionally process-parallel; --workers never
    # changes the result, see docs/architecture.md "Parallel execution")
    python -m repro.cli sweep --datasets gcut --models hmm ar \
        --scale tiny --workers 2 --report report.md

    # serving (docs/serving.md): publish to a registry, serve it
    python -m repro.cli publish --model model.npz --registry reg/ \
        --name wwt
    python -m repro.cli serve --registry reg/ --port 7777

    # training-as-a-service: submit a job to a server started with
    # --jobs-dir; the supervisor survives worker crashes (auto-resume
    # from checkpoint) and auto-publishes the finished model
    python -m repro.cli serve --registry reg/ --jobs-dir jobs/ --port 7777
    python -m repro.cli jobs submit --port 7777 --data data.npz \
        --name wwt --iterations 400 --watch
    python -m repro.cli jobs status --port 7777 --job-id job-000001

Every command exits 2 with a one-line ``error: ...`` on stderr for
missing or unreadable inputs; ``--out``-style paths auto-create their
parent directories.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import zipfile

import numpy as np

from repro.core.config import DGConfig
from repro.core.doppelganger import DoppelGANger
from repro.data.dataset import TimeSeriesDataset
from repro.data.simulators import (generate_flashcrowd, generate_gcut,
                                   generate_mba, generate_regime,
                                   generate_wwt)

__all__ = ["main", "build_parser"]

_DATASET_CHOICES = ("wwt", "mba", "gcut", "flashcrowd", "regime")
_BACKEND_CHOICES = ("doppelganger", "dg", "dlgan", "hmm", "ar", "rnn",
                    "naive_gan")


class _CliError(Exception):
    """A user-facing failure: printed as one line, exit code 2."""


def _ensure_parent(path: str | None) -> str | None:
    """Create the parent directory of an output path (returns ``path``)."""
    if path:
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
    return path


def _load_dataset(path: str) -> TimeSeriesDataset:
    try:
        return TimeSeriesDataset.load(path)
    except FileNotFoundError:
        raise _CliError(f"dataset file {path!r} does not exist; create "
                        f"one with 'simulate' or 'generate'") from None
    except (OSError, EOFError, ValueError, KeyError,
            zipfile.BadZipFile) as exc:
        raise _CliError(f"cannot read dataset {path!r}: the file is not "
                        f"a dataset archive or is corrupted "
                        f"({exc})") from None


def _load_model(path: str):
    """Load a model file of any backend; returns ``(model, backend)``.

    The archive's backend is sniffed from its self-describing metadata,
    so files written before ``--backend`` existed load as DoppelGANger.
    """
    from repro.backends import load_model_file

    try:
        return load_model_file(path)
    except FileNotFoundError:
        raise _CliError(f"cannot load model {path!r}: the file does not "
                        f"exist; train one with 'train' first") from None
    except (OSError, EOFError, ValueError, KeyError,
            zipfile.BadZipFile) as exc:
        raise _CliError(f"cannot load model {path!r}: {exc}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DoppelGANger data-release workflow")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic source "
                                          "dataset (WWT/MBA/GCUT simulator)")
    sim.add_argument("--dataset", choices=_DATASET_CHOICES, required=True)
    sim.add_argument("--n", type=int, default=400)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--length", type=int, default=None,
                     help="series length (dataset-specific default)")
    sim.add_argument("--out", required=True)

    train = sub.add_parser("train", help="train a generator on a dataset "
                                         "(any registered backend)")
    train.add_argument("--data", required=True)
    train.add_argument("--out", required=True)
    train.add_argument("--backend", choices=_BACKEND_CHOICES,
                       default="doppelganger",
                       help="generator architecture (default: the "
                            "paper's DoppelGANger)")
    train.add_argument("--iterations", type=int, default=400)
    train.add_argument("--sample-len", type=int, default=None,
                       help="batching parameter S (default: auto, T/S~25)")
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--hidden", type=int, default=64)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--no-minmax", action="store_true",
                       help="disable the auto-normalisation generator")
    train.add_argument("--no-aux", action="store_true",
                       help="disable the auxiliary discriminator")
    train.add_argument("--checkpoint", default=None,
                       help="write resumable training state to this file")
    train.add_argument("--checkpoint-every", type=int, default=25,
                       help="iterations between checkpoint writes")
    train.add_argument("--resume", action="store_true",
                       help="resume from --checkpoint if it exists "
                            "(bit-identical continuation)")
    train.add_argument("--sentinel", action="store_true",
                       help="enable the divergence sentinel "
                            "(NaN/runaway detection with rollback)")
    train.add_argument("--max-retries", type=int, default=3,
                       help="sentinel rollback budget per snapshot window")
    train.add_argument("--telemetry", default=None, metavar="DIR",
                       help="collect an event log and metric dump into DIR "
                            "(deterministic; never changes the model)")

    gen = sub.add_parser("generate", help="sample a trained model")
    gen.add_argument("--model", required=True)
    gen.add_argument("--n", type=int, required=True)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--workers", type=int, default=1,
                     help="generation worker processes (any value gives "
                          "bit-identical output)")
    gen.add_argument("--telemetry", default=None, metavar="DIR",
                     help="collect an event log and metric dump into DIR")
    gen.add_argument("--out", required=True)

    ins = sub.add_parser("inspect", help="print a dataset summary")
    ins.add_argument("--data", required=True)

    sweep = sub.add_parser("sweep", help="train a (dataset x model x seed) "
                                         "grid, optionally in parallel")
    sweep.add_argument("--datasets", nargs="+", required=True,
                       choices=_DATASET_CHOICES)
    sweep.add_argument("--models", nargs="+", required=True,
                       choices=_BACKEND_CHOICES)
    sweep.add_argument("--scale", choices=("bench", "tiny"), default="bench")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (any value gives identical "
                            "models)")
    sweep.add_argument("--seeds", type=int, default=None,
                       help="replicas per cell with spawned seeds "
                            "(default: one cell at the scale's seed)")
    sweep.add_argument("--cache-dir", default=None,
                       help="on-disk result cache; repeated sweeps skip "
                            "finished cells")
    sweep.add_argument("--report", default=None,
                       help="write the deterministic sweep report "
                            "(digests + failures) to this markdown file")
    sweep.add_argument("--digest-n", type=int, default=16,
                       help="objects generated per cell for the report "
                            "digest")
    sweep.add_argument("--telemetry", default=None, metavar="DIR",
                       help="collect per-cell event logs and metric dumps "
                            "into DIR, merged into worker-count-invariant "
                            "canonical exports")
    sweep.add_argument("--quality", action="store_true",
                       help="score every trained cell with a quality "
                            "report; the sweep report ranks cells by "
                            "overall score (docs/quality.md)")
    sweep.add_argument("--quality-n", type=int, default=64,
                       help="synthetic objects generated per cell for "
                            "the quality scores")

    rep = sub.add_parser("report", help="scored quality report for a "
                                        "model vs a real dataset "
                                        "(docs/quality.md)")
    rep.add_argument("--data", required=True,
                     help="real dataset the model should match "
                          "(typically its training data)")
    rep.add_argument("--holdout", default=None,
                     help="real data NOT used for training; enables the "
                          "memorization property")
    rep.add_argument("--model", default=None,
                     help="model parameter file (any backend; sniffed)")
    rep.add_argument("--registry", default=None,
                     help="registry directory to load --spec from "
                          "instead of --model")
    rep.add_argument("--spec", default=None,
                     help="registry spec, e.g. wwt or wwt@2")
    rep.add_argument("--n", type=int, default=None,
                     help="synthetic objects to generate "
                          "(default: len of --data)")
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument("--no-downstream", action="store_true",
                     help="skip the train-on-synthetic/test-on-real "
                          "property (the slowest section)")
    rep.add_argument("--privacy", action="store_true",
                     help="also run the membership-inference battery "
                          "(splits --data in half: first half treated "
                          "as members)")
    rep.add_argument("--json", default=None, metavar="FILE",
                     help="write the canonical JSON document here")
    rep.add_argument("--md", default=None, metavar="FILE",
                     help="write the rendered markdown here")
    rep.add_argument("--attach", action="store_true",
                     help="attach the scores to the registry version "
                          "(needs --registry/--spec)")

    met = sub.add_parser("metrics", help="inspect a telemetry directory "
                                         "written by --telemetry")
    met.add_argument("action", choices=("dump", "report"),
                     help="dump: print metrics.json; report: print "
                          "report.md")
    met.add_argument("--dir", required=True,
                     help="telemetry directory of a finished run")

    pub = sub.add_parser("publish", help="publish a trained model into "
                                         "a registry (docs/serving.md)")
    pub.add_argument("--model", required=True,
                     help="model parameter file written by 'train'")
    pub.add_argument("--registry", required=True,
                     help="registry directory (created if missing)")
    pub.add_argument("--name", required=True,
                     help="model name; each publish appends a version")
    pub.add_argument("--meta", default=None,
                     help="JSON object stored with the version entry")
    pub.add_argument("--evaluate", action="store_true",
                     help="score the model against --data and attach "
                          "the scores to the published version")
    pub.add_argument("--data", default=None,
                     help="real dataset for --evaluate")
    pub.add_argument("--holdout", default=None,
                     help="held-out real data for --evaluate "
                          "(enables the memorization score)")
    pub.add_argument("--eval-n", type=int, default=None,
                     help="synthetic objects generated for --evaluate "
                          "(default: len of --data)")
    pub.add_argument("--eval-seed", type=int, default=0)

    srv = sub.add_parser("serve", help="serve registry models over a "
                                       "loopback socket")
    srv.add_argument("--registry", required=True)
    srv.add_argument("--models", nargs="*", default=None,
                     help="specs to serve, e.g. wwt@2 (default: latest "
                          "version of every published model)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=0,
                     help="0 binds an ephemeral port (printed, and "
                          "written to --port-file)")
    srv.add_argument("--batch-wait-ms", type=float, default=2.0,
                     help="micro-batch flush deadline")
    srv.add_argument("--batch-rows", type=int, default=None,
                     help="rows per execution bundle (default: the "
                          "model's batch_size -- the only value that "
                          "keeps served output byte-identical to direct "
                          "generation)")
    srv.add_argument("--queue-rows", type=int, default=4096,
                     help="admission bound; beyond it requests are shed "
                          "with a 'busy' error")
    srv.add_argument("--port-file", default=None,
                     help="write the bound port here once listening "
                          "(for scripts and tests)")
    srv.add_argument("--stop-file", default=None,
                     help="drain and exit when this file appears "
                          "(alternative to SIGINT)")
    srv.add_argument("--telemetry", default=None, metavar="DIR",
                     help="collect serving metrics into DIR on exit")
    srv.add_argument("--replicas", type=int, default=0,
                     help="serve through a fleet of N supervised "
                          "replica processes instead of in-process "
                          "batchers (deterministic routing, "
                          "byte-identical output; docs/serving.md)")
    srv.add_argument("--model-cache", type=int, default=4,
                     help="models each replica holds hot in its LRU "
                          "cache (fleet mode)")
    srv.add_argument("--quota-rps", type=float, default=None,
                     help="per-client token-bucket rate limit in "
                          "requests/second (fleet mode; default: no "
                          "quotas)")
    srv.add_argument("--quota-burst", type=int, default=None,
                     help="token-bucket depth (fleet mode; default: "
                          "--quota-rps rounded down, at least 1)")
    srv.add_argument("--jobs-dir", default=None, metavar="DIR",
                     help="enable training-as-a-service: durable job "
                          "records live here; finished models are "
                          "auto-published to --registry and served "
                          "immediately (docs/serving.md)")
    srv.add_argument("--train-workers", type=int, default=1,
                     help="concurrent training worker subprocesses")
    srv.add_argument("--job-attempts", type=int, default=3,
                     help="default worker-launch budget per job "
                          "(crashed workers auto-resume from their "
                          "latest checkpoint until it is exhausted)")

    jobs = sub.add_parser("jobs", help="manage training jobs on a "
                                       "running server (serve --jobs-dir)")
    jobs.add_argument("action", choices=("submit", "status", "cancel",
                                         "list"))
    jobs.add_argument("--host", default="127.0.0.1")
    jobs.add_argument("--port", type=int, required=True)
    jobs.add_argument("--timeout", type=float, default=60.0,
                      help="connect/read timeout in seconds")
    jobs.add_argument("--job-id", default=None,
                      help="job to inspect or cancel")
    jobs.add_argument("--data", default=None,
                      help="training dataset file (submit)")
    jobs.add_argument("--name", default=None,
                      help="registry name the finished model publishes "
                           "under (submit)")
    jobs.add_argument("--backend", choices=_BACKEND_CHOICES,
                      default="doppelganger")
    jobs.add_argument("--iterations", type=int, default=None)
    jobs.add_argument("--batch-size", type=int, default=None)
    jobs.add_argument("--hidden", type=int, default=None)
    jobs.add_argument("--sample-len", type=int, default=None)
    jobs.add_argument("--seed", type=int, default=None)
    jobs.add_argument("--checkpoint-every", type=int, default=None,
                      help="iterations between resumable checkpoint "
                           "writes (doppelganger jobs)")
    jobs.add_argument("--sentinel", action="store_true",
                      help="enable the divergence sentinel for the job")
    jobs.add_argument("--max-attempts", type=int, default=None,
                      help="worker-launch budget for this job")
    jobs.add_argument("--watch", action="store_true",
                      help="poll status until the job reaches a "
                           "terminal state (submit/status)")

    fst = sub.add_parser("fleet-status",
                         help="inspect a running fleet router: replica "
                              "health, routing totals, aliases, quotas")
    fst.add_argument("--host", default="127.0.0.1")
    fst.add_argument("--port", type=int, required=True)
    fst.add_argument("--timeout", type=float, default=10.0)
    fst.add_argument("--reload", action="store_true",
                     help="re-pin name/@latest aliases to the newest "
                          "registry versions first (zero-downtime "
                          "upgrade flip)")

    bsrv = sub.add_parser("bench-serve",
                          help="benchmark micro-batched vs batch-size-1 "
                               "serving (writes BENCH_serving.json)")
    bsrv.add_argument("--model", default=None,
                      help="trained model file (default: train a tiny "
                           "benchmark model)")
    bsrv.add_argument("--concurrency", type=int, default=8)
    bsrv.add_argument("--requests", type=int, default=8,
                      help="requests per client thread")
    bsrv.add_argument("--n", type=int, default=16,
                      help="objects per request")
    bsrv.add_argument("--output", default="BENCH_serving.json")
    bsrv.add_argument("--smoke", action="store_true",
                      help="small load for CI; still checks identity")
    bsrv.add_argument("--check-schema", default=None, metavar="REF",
                      help="fail if the result's keys drift from this "
                           "committed BENCH_serving.json")
    return parser


def _cmd_simulate(args) -> int:
    rng = np.random.default_rng(args.seed)
    if args.dataset == "wwt":
        data = generate_wwt(args.n, rng, length=args.length or 56,
                            long_period=28)
    elif args.dataset == "mba":
        data = generate_mba(args.n, rng, length=args.length or 56)
    elif args.dataset == "flashcrowd":
        data = generate_flashcrowd(args.n, rng, length=args.length or 56)
    elif args.dataset == "regime":
        data = generate_regime(args.n, rng, max_length=args.length or 48)
    else:
        data = generate_gcut(args.n, rng, max_length=args.length or 24)
    data.save(_ensure_parent(args.out))
    print(f"wrote {len(data)} objects to {args.out}")
    return 0


def _train_other_backend(args, data) -> int:
    """Train a non-DoppelGANger backend from bench-scale defaults.

    The rich training flags (checkpointing, sentinel, sample-len) are
    DoppelGANger-specific; other backends train from their bench-scale
    config with ``--iterations/--batch-size/--hidden/--seed`` applied
    where the architecture has a matching knob.
    """
    from repro.backends import get_backend
    from repro.experiments.configs import BENCH

    for flag, name in [(args.checkpoint, "--checkpoint"),
                       (args.resume, "--resume"),
                       (args.sentinel, "--sentinel"),
                       (args.sample_len, "--sample-len"),
                       (args.telemetry, "--telemetry")]:
        if flag:
            raise _CliError(f"{name} is only supported by the "
                            f"doppelganger backend")
    backend = get_backend(args.backend)
    width = args.hidden
    config = backend.make_config(
        "custom", BENCH, seed=args.seed, iterations=args.iterations,
        batch_size=args.batch_size, hidden=(width, width),
        generator_hidden=(width, width),
        discriminator_hidden=(width, width))
    model = backend.from_config(data.schema, config)
    backend.fit(model, data)
    with open(args.out, "wb") as handle:
        handle.write(backend.save_bytes(model))
    print(f"model parameters written to {args.out} "
          f"(backend {backend.name})")
    return 0


def _cmd_train(args) -> int:
    data = _load_dataset(args.data)
    _ensure_parent(args.out)
    _ensure_parent(args.checkpoint)
    if args.backend not in ("doppelganger", "dg"):
        return _train_other_backend(args, data)
    sample_len = args.sample_len or DGConfig.recommended_sample_len(
        data.schema.max_length, target_passes=25)
    width = args.hidden
    config = DGConfig(
        sample_len=sample_len,
        attribute_hidden=(width, width), minmax_hidden=(width, width),
        feature_rnn_units=max(width * 3 // 4, 8),
        feature_mlp_hidden=(width,),
        discriminator_hidden=(width, width),
        aux_discriminator_hidden=(width, width),
        batch_size=args.batch_size, iterations=args.iterations,
        seed=args.seed,
        use_minmax_generator=not args.no_minmax,
        use_auxiliary_discriminator=not args.no_aux,
    )
    model = DoppelGANger(data.schema, config)
    resume_from = None
    if args.resume:
        if not args.checkpoint:
            print("--resume requires --checkpoint", file=sys.stderr)
            return 2
        if os.path.exists(args.checkpoint):
            resume_from = args.checkpoint
            print(f"resuming from {args.checkpoint}")
    sentinel = None
    if args.sentinel:
        from repro.resilience import SentinelPolicy
        sentinel = SentinelPolicy(max_retries=args.max_retries)

    def fit():
        return model.fit(
            data, log_every=max(args.iterations // 10, 1),
            callback=lambda it, h: print(
                f"iteration {it}: d_loss={h.d_loss[-1]:.3f} "
                f"g_loss={h.g_loss[-1]:.3f}"),
            train_state_path=args.checkpoint,
            checkpoint_every=(args.checkpoint_every if args.checkpoint
                              else None),
            resume_from=resume_from, sentinel=sentinel)

    if args.telemetry:
        from repro.observability import TelemetryRun
        with TelemetryRun(args.telemetry, run_id="train") as run:
            history = fit()
        paths = run.finalize()
        print(f"telemetry written to {paths['events']}")
    else:
        history = fit()
    model.save(args.out)
    print(f"model parameters written to {args.out} (S={sample_len})")
    if history.rollbacks or history.nan_events or history.runaway_events:
        print(f"sentinel events: nan={history.nan_events} "
              f"runaway={history.runaway_events} "
              f"rollbacks={history.rollbacks} "
              f"lr_decays={history.lr_decays}")
    return 0


def _cmd_generate(args) -> int:
    model, backend = _load_model(args.model)
    _ensure_parent(args.out)
    if args.telemetry:
        from repro.observability import TelemetryRun
        with TelemetryRun(args.telemetry, run_id="generate") as run:
            synthetic = backend.generate(
                model, args.n, rng=np.random.default_rng(args.seed),
                workers=args.workers)
        paths = run.finalize()
        print(f"telemetry written to {paths['events']}")
    else:
        synthetic = backend.generate(
            model, args.n, rng=np.random.default_rng(args.seed),
            workers=args.workers)
    synthetic.save(args.out)
    print(f"wrote {args.n} synthetic objects to {args.out}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments.configs import SCALES
    from repro.experiments.harness import run_sweep
    from repro.experiments.report import render_sweep_report, timing_summary

    quality = {"n": args.quality_n} if args.quality else False
    result = run_sweep(args.datasets, args.models, scale=SCALES[args.scale],
                       workers=args.workers, seeds=args.seeds,
                       cache_dir=args.cache_dir, telemetry=args.telemetry,
                       quality=quality)
    if result.quality:
        for key in sorted(result.quality, key=str):
            label = "/".join(str(p) for p in key) \
                if isinstance(key, tuple) else str(key)
            print(f"quality {label}: "
                  f"{result.quality[key].overall:.4f}")
    summary = timing_summary(result.timings)
    if summary:
        print(summary)
    if args.report:
        report = render_sweep_report(result, n=args.digest_n)
        with open(_ensure_parent(args.report), "w") as handle:
            handle.write(report + "\n")
        print(f"sweep report written to {args.report}")
    print(f"trained {len(result.models)} cells, "
          f"{len(result.failures)} failed")
    return 1 if result.failures else 0


def _cmd_metrics(args) -> int:
    """Print the canonical exports of a finished telemetry run."""
    if args.action == "dump":
        path = os.path.join(args.dir, "metrics.json")
        try:
            with open(path, encoding="utf-8") as handle:
                sys.stdout.write(handle.read())
        except FileNotFoundError:
            print(f"no metrics dump at {path} (run with --telemetry first)",
                  file=sys.stderr)
            return 2
        return 0
    path = os.path.join(args.dir, "report.md")
    try:
        with open(path, encoding="utf-8") as handle:
            sys.stdout.write(handle.read())
        return 0
    except FileNotFoundError:
        pass
    # No rendered report: re-render from the canonical event log.
    from repro.observability import read_events, render_run_report
    events = read_events(os.path.join(args.dir, "events.jsonl"))
    if not events:
        print(f"no telemetry run found in {args.dir}", file=sys.stderr)
        return 2
    print(render_run_report(events))
    return 0


def _cmd_publish(args) -> int:
    from repro.serve import ModelRegistry, RegistryError

    model, backend = _load_model(args.model)
    meta = {}
    if args.meta:
        try:
            meta = json.loads(args.meta)
        except ValueError as exc:
            raise _CliError(f"--meta is not valid JSON: {exc}") from None
        if not isinstance(meta, dict):
            raise _CliError("--meta must be a JSON object")
    scores = None
    if args.evaluate:
        from repro.quality import evaluate_model, scores_summary

        if not args.data:
            raise _CliError("publish --evaluate needs --data (the real "
                            "dataset to score the model against)")
        data = _load_dataset(args.data)
        holdout = _load_dataset(args.holdout) if args.holdout else None
        report = evaluate_model(model, data, holdout=holdout,
                                n=args.eval_n, seed=args.eval_seed)
        scores = scores_summary(report)
    try:
        registry = ModelRegistry(args.registry)
        record = registry.publish(args.name, model, meta=meta,
                                  backend=backend.name, scores=scores)
    except RegistryError as exc:
        raise _CliError(str(exc)) from None
    print(f"published {record.spec} (backend {record.backend}, sha256 "
          f"{record.sha256[:12]}..., {record.nbytes} bytes) to "
          f"{args.registry}")
    if record.scores is not None:
        print(f"scores attached: overall "
              f"{record.scores['overall']:.4f}")
    return 0


def _cmd_report(args) -> int:
    from repro.quality import (evaluate_model, privacy_battery,
                               scores_summary)

    if bool(args.model) == bool(args.spec):
        raise _CliError("report needs exactly one of --model or "
                        "--registry/--spec")
    data = _load_dataset(args.data)
    holdout = _load_dataset(args.holdout) if args.holdout else None
    record = None
    registry = None
    if args.model:
        model, _ = _load_model(args.model)
        source = args.model
    else:
        from repro.serve import ModelRegistry, RegistryError

        if not args.registry:
            raise _CliError("--spec needs --registry")
        try:
            registry = ModelRegistry(args.registry)
            record = registry.resolve(args.spec)
            model = registry.load(record)
        except RegistryError as exc:
            raise _CliError(str(exc)) from None
        source = record.spec
    if args.attach and record is None:
        raise _CliError("--attach needs --registry/--spec (a model "
                        "file has no manifest to attach scores to)")

    report = evaluate_model(model, data, holdout=holdout, n=args.n,
                            seed=args.seed,
                            downstream=not args.no_downstream)
    battery = None
    if args.privacy:
        from repro.data.splits import make_split

        split = make_split(data, np.random.default_rng(args.seed))
        half = min(len(split.train_real), len(split.test_real))
        battery = privacy_battery(model, split.train_real[:half],
                                  split.test_real[:half],
                                  seed=args.seed)
    document = {"quality": report.to_dict()}
    if battery is not None:
        document["privacy"] = battery.to_dict()
    if args.json:
        with open(_ensure_parent(args.json), "w",
                  encoding="utf-8") as handle:
            handle.write(json.dumps(document, sort_keys=True, indent=2)
                         + "\n")
        print(f"JSON report written to {args.json}")
    markdown = report.render_markdown(title=f"Quality report: {source}")
    if battery is not None:
        markdown += "\n" + battery.render_markdown()
    if args.md:
        with open(_ensure_parent(args.md), "w",
                  encoding="utf-8") as handle:
            handle.write(markdown + "\n")
        print(f"markdown report written to {args.md}")
    if args.attach:
        registry.attach_scores(record, scores_summary(report, battery))
        print(f"scores attached to {record.spec}")
    print(f"overall quality score: {report.overall:.4f} "
          f"({len(report.properties)} properties)")
    if battery is not None:
        print(f"privacy grade: {battery.grade} (worst attacker "
              f"advantage {battery.worst_advantage:.4f})")
    return 0


def _print_job(job: dict) -> None:
    line = (f"{job['job_id']}  {job['state']:<10}  name={job['name']}  "
            f"backend={job['backend']}  attempts={job['attempts']}"
            f"/{job['max_attempts']}")
    progress = job.get("progress") or {}
    if progress.get("iteration") is not None:
        line += (f"  iter={progress['iteration']}"
                 f"/{progress.get('iterations')}"
                 f"  d_loss={progress['d_loss']:.3f}"
                 f"  g_loss={progress['g_loss']:.3f}")
        if progress.get("rollbacks"):
            line += f"  rollbacks={progress['rollbacks']}"
    if job.get("result"):
        line += (f"  published={job['result']['spec']} "
                 f"(sha256 {job['result']['sha256'][:12]}...)")
    if job.get("error"):
        line += f"  error: {job['error']}"
    print(line)


def _cmd_jobs(args) -> int:
    import time

    from repro.serve import ServeClient, ServeError

    try:
        client = ServeClient(args.host, args.port, timeout=args.timeout,
                             connect_retries=2)
    except ServeError as exc:
        raise _CliError(str(exc)) from None

    def watch(job_id: str) -> int:
        while True:
            job = client.job_status(job_id)
            _print_job(job)
            if job["state"] in ("completed", "failed", "cancelled"):
                return 0 if job["state"] == "completed" else 1
            time.sleep(0.2)

    try:
        if args.action == "list":
            rows = client.jobs()
            if not rows:
                print("no jobs")
            for job in rows:
                _print_job(job)
            return 0
        if args.action == "submit":
            if not args.data or not args.name:
                raise _CliError("jobs submit needs --data and --name")
            _load_dataset(args.data)  # fail fast on unreadable input
            train = {key: value for key, value in [
                ("iterations", args.iterations),
                ("batch_size", args.batch_size),
                ("hidden", args.hidden),
                ("sample_len", args.sample_len),
                ("seed", args.seed),
                ("checkpoint_every", args.checkpoint_every),
            ] if value is not None}
            if args.sentinel:
                train["sentinel"] = True
            job = client.submit_job(args.name, args.data,
                                    backend=args.backend, train=train,
                                    max_attempts=args.max_attempts)
            _print_job(job)
            return watch(job["job_id"]) if args.watch else 0
        if not args.job_id:
            raise _CliError(f"jobs {args.action} needs --job-id")
        if args.action == "cancel":
            _print_job(client.cancel_job(args.job_id))
            return 0
        if args.watch:
            return watch(args.job_id)
        _print_job(client.job_status(args.job_id))
        return 0
    except ServeError as exc:
        raise _CliError(str(exc)) from None
    finally:
        client.close()


def _cmd_serve(args) -> int:
    import time

    from repro.serve import (Fleet, GenerationService, ModelRegistry,
                             Server)
    from repro.serve.registry import RegistryError

    if args.replicas and args.replicas > 0:
        if args.jobs_dir:
            raise _CliError(
                "--replicas and --jobs-dir are mutually exclusive: the "
                "fleet router does not orchestrate training jobs; run "
                "a separate single server with --jobs-dir")
        if args.models:
            raise _CliError(
                "--replicas serves the whole registry (replicas "
                "lazy-load any published name@version); drop --models")
        try:
            registry = ModelRegistry(args.registry)
            service = Fleet(registry, replicas=args.replicas,
                            model_cache=args.model_cache,
                            quota_rps=args.quota_rps,
                            quota_burst=args.quota_burst,
                            max_batch_rows=args.batch_rows,
                            max_wait_ms=args.batch_wait_ms,
                            max_queue_rows=args.queue_rows)
        except RegistryError as exc:
            raise _CliError(str(exc)) from None
        print(f"fleet of {args.replicas} replicas "
              f"(model cache: {args.model_cache}/replica"
              + (f", quota: {args.quota_rps:g} req/s per client"
                 if args.quota_rps else "") + ")")
    else:
        try:
            registry = ModelRegistry(args.registry)
            service = GenerationService.from_registry(
                registry, specs=args.models or None,
                allow_empty=bool(args.jobs_dir),
                max_batch_rows=args.batch_rows,
                max_wait_ms=args.batch_wait_ms,
                max_queue_rows=args.queue_rows)
        except RegistryError as exc:
            raise _CliError(str(exc)) from None

    supervisor = None
    if args.jobs_dir:
        from repro.resilience import RetryPolicy
        from repro.serve import JobStore, JobSupervisor

        supervisor = JobSupervisor(
            JobStore(args.jobs_dir), args.registry,
            max_workers=args.train_workers,
            retry=RetryPolicy(max_attempts=max(args.job_attempts, 1),
                              base_delay=0.1, multiplier=2.0,
                              max_delay=5.0))
        service.attach_jobs(supervisor)
        requeued = supervisor.recover()
        for job_id in requeued:
            print(f"requeued interrupted job {job_id} (will resume "
                  f"from its latest checkpoint)")
        supervisor.start()
        print(f"training jobs enabled (store: {args.jobs_dir}, "
              f"workers: {args.train_workers})")

    telemetry = None
    if args.telemetry:
        from repro.observability import TelemetryRun
        telemetry = TelemetryRun(args.telemetry, run_id="serve")
        telemetry.__enter__()
    server = Server(service, host=args.host, port=args.port)
    host, port = server.address
    for row in service.describe():
        tag = "" if row.get("deterministic", True) else \
            "  [non-deterministic batch-rows override]"
        print(f"serving {row['spec']} "
              f"(aliases: {', '.join(row['aliases']) or '-'}){tag}")
    print(f"listening on {host}:{port}")
    if args.port_file:
        _ensure_parent(args.port_file)
        tmp = args.port_file + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(f"{port}\n")
        os.replace(tmp, args.port_file)
    try:
        while True:
            if args.stop_file and os.path.exists(args.stop_file):
                print(f"stop file {args.stop_file} found")
                break
            time.sleep(0.1)
    except KeyboardInterrupt:
        print("interrupt received")
    if supervisor is not None:
        print("stopping job supervisor (running jobs resume on the "
              "next start)...")
        supervisor.stop()
    print("draining in-flight requests...")
    server.shutdown(drain=True)
    if telemetry is not None:
        telemetry.__exit__(None, None, None)
        paths = telemetry.finalize()
        print(f"telemetry written to {paths['events']}")
    print("server stopped")
    return 0


def _cmd_fleet_status(args) -> int:
    from repro.serve import ServeClient, ServeError

    try:
        with ServeClient(args.host, args.port,
                         timeout=args.timeout) as client:
            if args.reload:
                aliases = client.reload_models()
                print("aliases re-pinned:")
                for alias in sorted(aliases):
                    print(f"  {alias} -> {aliases[alias]}")
            status = client.fleet_status()
    except ServeError as exc:
        raise _CliError(str(exc)) from None
    for row in status["replicas"]:
        print(f"replica {row['replica']}: {row['state']}  "
              f"pid={row['pid']} port={row['port']} "
              f"restarts={row['restarts']} routed={row['routed']}")
    totals = status["totals"]
    print(f"totals: routed={totals['routed']} "
          f"retried={totals['retried']} "
          f"respawns={totals['respawns']} "
          f"rate_limited={totals['rate_limited']}")
    quota = status.get("quota")
    print(f"quota: " + (f"{quota['rps']:g} req/s per client "
                        f"(burst {quota['burst']})" if quota
                        else "disabled"))
    for alias in sorted(status["aliases"]):
        print(f"alias {alias} -> {status['aliases'][alias]}")
    return 0


def _cmd_bench_serve(args) -> int:
    from repro.serve.bench import check_result_schema, run_serving_benchmark

    model = _load_model(args.model)[0] if args.model else None
    _ensure_parent(args.output)
    result = run_serving_benchmark(
        model, concurrency=args.concurrency,
        requests_per_client=args.requests, n=args.n,
        output=args.output, smoke=args.smoke)
    if not result["served_identical"]:
        print("error: served output drifted from direct generation",
              file=sys.stderr)
        return 1
    if args.check_schema:
        problems = check_result_schema(result, reference=args.check_schema)
        if problems:
            for problem in problems:
                print(f"error: {problem}", file=sys.stderr)
            return 1
    return 0


def _cmd_inspect(args) -> int:
    data = _load_dataset(args.data)
    schema = data.schema
    print(f"objects: {len(data)}")
    print(f"max length: {schema.max_length} "
          f"(observed {data.lengths.min()}..{data.lengths.max()})")
    print("attributes:")
    for spec in schema.attributes:
        kind = (f"categorical({spec.dimension})" if spec.is_categorical
                else "continuous")
        print(f"  - {spec.name}: {kind}")
    print("features:")
    for spec in schema.features:
        kind = (f"categorical({spec.dimension})" if spec.is_categorical
                else "continuous")
        print(f"  - {spec.name}: {kind}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"simulate": _cmd_simulate, "train": _cmd_train,
                "generate": _cmd_generate, "inspect": _cmd_inspect,
                "sweep": _cmd_sweep, "metrics": _cmd_metrics,
                "publish": _cmd_publish, "report": _cmd_report,
                "serve": _cmd_serve,
                "jobs": _cmd_jobs, "fleet-status": _cmd_fleet_status,
                "bench-serve": _cmd_bench_serve}
    try:
        return handlers[args.command](args)
    except _CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
