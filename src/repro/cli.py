"""Command-line interface for the Figure-2 workflow.

Lets a data holder and a data consumer run the full release pipeline
without writing code:

    # data holder: simulate (or load) a dataset, train, release parameters
    python -m repro.cli simulate --dataset gcut --n 400 --out data.npz
    python -m repro.cli train --data data.npz --out model.npz \
        --iterations 400 --sample-len 4

    # data consumer: generate any quantity of synthetic data
    python -m repro.cli generate --model model.npz --n 1000 --out synth.npz

    # inspect a dataset
    python -m repro.cli inspect --data synth.npz

    # benchmark sweep (optionally process-parallel; --workers never
    # changes the result, see docs/architecture.md "Parallel execution")
    python -m repro.cli sweep --datasets gcut --models hmm ar \
        --scale tiny --workers 2 --report report.md
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.core.config import DGConfig
from repro.core.doppelganger import DoppelGANger
from repro.data.dataset import TimeSeriesDataset
from repro.data.simulators import generate_gcut, generate_mba, generate_wwt

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DoppelGANger data-release workflow")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic source "
                                          "dataset (WWT/MBA/GCUT simulator)")
    sim.add_argument("--dataset", choices=("wwt", "mba", "gcut"),
                     required=True)
    sim.add_argument("--n", type=int, default=400)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--length", type=int, default=None,
                     help="series length (dataset-specific default)")
    sim.add_argument("--out", required=True)

    train = sub.add_parser("train", help="train DoppelGANger on a dataset")
    train.add_argument("--data", required=True)
    train.add_argument("--out", required=True)
    train.add_argument("--iterations", type=int, default=400)
    train.add_argument("--sample-len", type=int, default=None,
                       help="batching parameter S (default: auto, T/S~25)")
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--hidden", type=int, default=64)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--no-minmax", action="store_true",
                       help="disable the auto-normalisation generator")
    train.add_argument("--no-aux", action="store_true",
                       help="disable the auxiliary discriminator")
    train.add_argument("--checkpoint", default=None,
                       help="write resumable training state to this file")
    train.add_argument("--checkpoint-every", type=int, default=25,
                       help="iterations between checkpoint writes")
    train.add_argument("--resume", action="store_true",
                       help="resume from --checkpoint if it exists "
                            "(bit-identical continuation)")
    train.add_argument("--sentinel", action="store_true",
                       help="enable the divergence sentinel "
                            "(NaN/runaway detection with rollback)")
    train.add_argument("--max-retries", type=int, default=3,
                       help="sentinel rollback budget per snapshot window")
    train.add_argument("--telemetry", default=None, metavar="DIR",
                       help="collect an event log and metric dump into DIR "
                            "(deterministic; never changes the model)")

    gen = sub.add_parser("generate", help="sample a trained model")
    gen.add_argument("--model", required=True)
    gen.add_argument("--n", type=int, required=True)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--workers", type=int, default=1,
                     help="generation worker processes (any value gives "
                          "bit-identical output)")
    gen.add_argument("--telemetry", default=None, metavar="DIR",
                     help="collect an event log and metric dump into DIR")
    gen.add_argument("--out", required=True)

    ins = sub.add_parser("inspect", help="print a dataset summary")
    ins.add_argument("--data", required=True)

    sweep = sub.add_parser("sweep", help="train a (dataset x model x seed) "
                                         "grid, optionally in parallel")
    sweep.add_argument("--datasets", nargs="+", required=True,
                       choices=("wwt", "mba", "gcut"))
    sweep.add_argument("--models", nargs="+", required=True,
                       choices=("dg", "ar", "rnn", "hmm", "naive_gan"))
    sweep.add_argument("--scale", choices=("bench", "tiny"), default="bench")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (any value gives identical "
                            "models)")
    sweep.add_argument("--seeds", type=int, default=None,
                       help="replicas per cell with spawned seeds "
                            "(default: one cell at the scale's seed)")
    sweep.add_argument("--cache-dir", default=None,
                       help="on-disk result cache; repeated sweeps skip "
                            "finished cells")
    sweep.add_argument("--report", default=None,
                       help="write the deterministic sweep report "
                            "(digests + failures) to this markdown file")
    sweep.add_argument("--digest-n", type=int, default=16,
                       help="objects generated per cell for the report "
                            "digest")
    sweep.add_argument("--telemetry", default=None, metavar="DIR",
                       help="collect per-cell event logs and metric dumps "
                            "into DIR, merged into worker-count-invariant "
                            "canonical exports")

    met = sub.add_parser("metrics", help="inspect a telemetry directory "
                                         "written by --telemetry")
    met.add_argument("action", choices=("dump", "report"),
                     help="dump: print metrics.json; report: print "
                          "report.md")
    met.add_argument("--dir", required=True,
                     help="telemetry directory of a finished run")
    return parser


def _cmd_simulate(args) -> int:
    rng = np.random.default_rng(args.seed)
    if args.dataset == "wwt":
        data = generate_wwt(args.n, rng, length=args.length or 56,
                            long_period=28)
    elif args.dataset == "mba":
        data = generate_mba(args.n, rng, length=args.length or 56)
    else:
        data = generate_gcut(args.n, rng, max_length=args.length or 24)
    data.save(args.out)
    print(f"wrote {len(data)} objects to {args.out}")
    return 0


def _cmd_train(args) -> int:
    data = TimeSeriesDataset.load(args.data)
    sample_len = args.sample_len or DGConfig.recommended_sample_len(
        data.schema.max_length, target_passes=25)
    width = args.hidden
    config = DGConfig(
        sample_len=sample_len,
        attribute_hidden=(width, width), minmax_hidden=(width, width),
        feature_rnn_units=max(width * 3 // 4, 8),
        feature_mlp_hidden=(width,),
        discriminator_hidden=(width, width),
        aux_discriminator_hidden=(width, width),
        batch_size=args.batch_size, iterations=args.iterations,
        seed=args.seed,
        use_minmax_generator=not args.no_minmax,
        use_auxiliary_discriminator=not args.no_aux,
    )
    model = DoppelGANger(data.schema, config)
    resume_from = None
    if args.resume:
        if not args.checkpoint:
            print("--resume requires --checkpoint", file=sys.stderr)
            return 2
        if os.path.exists(args.checkpoint):
            resume_from = args.checkpoint
            print(f"resuming from {args.checkpoint}")
    sentinel = None
    if args.sentinel:
        from repro.resilience import SentinelPolicy
        sentinel = SentinelPolicy(max_retries=args.max_retries)

    def fit():
        return model.fit(
            data, log_every=max(args.iterations // 10, 1),
            callback=lambda it, h: print(
                f"iteration {it}: d_loss={h.d_loss[-1]:.3f} "
                f"g_loss={h.g_loss[-1]:.3f}"),
            train_state_path=args.checkpoint,
            checkpoint_every=(args.checkpoint_every if args.checkpoint
                              else None),
            resume_from=resume_from, sentinel=sentinel)

    if args.telemetry:
        from repro.observability import TelemetryRun
        with TelemetryRun(args.telemetry, run_id="train") as run:
            history = fit()
        paths = run.finalize()
        print(f"telemetry written to {paths['events']}")
    else:
        history = fit()
    model.save(args.out)
    print(f"model parameters written to {args.out} (S={sample_len})")
    if history.rollbacks or history.nan_events or history.runaway_events:
        print(f"sentinel events: nan={history.nan_events} "
              f"runaway={history.runaway_events} "
              f"rollbacks={history.rollbacks} "
              f"lr_decays={history.lr_decays}")
    return 0


def _cmd_generate(args) -> int:
    model = DoppelGANger.load(args.model)
    if args.telemetry:
        from repro.observability import TelemetryRun
        with TelemetryRun(args.telemetry, run_id="generate") as run:
            synthetic = model.generate(
                args.n, rng=np.random.default_rng(args.seed),
                workers=args.workers)
        paths = run.finalize()
        print(f"telemetry written to {paths['events']}")
    else:
        synthetic = model.generate(
            args.n, rng=np.random.default_rng(args.seed),
            workers=args.workers)
    synthetic.save(args.out)
    print(f"wrote {args.n} synthetic objects to {args.out}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments.configs import SCALES
    from repro.experiments.harness import run_sweep
    from repro.experiments.report import render_sweep_report, timing_summary

    result = run_sweep(args.datasets, args.models, scale=SCALES[args.scale],
                       workers=args.workers, seeds=args.seeds,
                       cache_dir=args.cache_dir, telemetry=args.telemetry)
    summary = timing_summary(result.timings)
    if summary:
        print(summary)
    if args.report:
        report = render_sweep_report(result, n=args.digest_n)
        with open(args.report, "w") as handle:
            handle.write(report + "\n")
        print(f"sweep report written to {args.report}")
    print(f"trained {len(result.models)} cells, "
          f"{len(result.failures)} failed")
    return 1 if result.failures else 0


def _cmd_metrics(args) -> int:
    """Print the canonical exports of a finished telemetry run."""
    if args.action == "dump":
        path = os.path.join(args.dir, "metrics.json")
        try:
            with open(path, encoding="utf-8") as handle:
                sys.stdout.write(handle.read())
        except FileNotFoundError:
            print(f"no metrics dump at {path} (run with --telemetry first)",
                  file=sys.stderr)
            return 2
        return 0
    path = os.path.join(args.dir, "report.md")
    try:
        with open(path, encoding="utf-8") as handle:
            sys.stdout.write(handle.read())
        return 0
    except FileNotFoundError:
        pass
    # No rendered report: re-render from the canonical event log.
    from repro.observability import read_events, render_run_report
    events = read_events(os.path.join(args.dir, "events.jsonl"))
    if not events:
        print(f"no telemetry run found in {args.dir}", file=sys.stderr)
        return 2
    print(render_run_report(events))
    return 0


def _cmd_inspect(args) -> int:
    data = TimeSeriesDataset.load(args.data)
    schema = data.schema
    print(f"objects: {len(data)}")
    print(f"max length: {schema.max_length} "
          f"(observed {data.lengths.min()}..{data.lengths.max()})")
    print("attributes:")
    for spec in schema.attributes:
        kind = (f"categorical({spec.dimension})" if spec.is_categorical
                else "continuous")
        print(f"  - {spec.name}: {kind}")
    print("features:")
    for spec in schema.features:
        kind = (f"categorical({spec.dimension})" if spec.is_categorical
                else "continuous")
        print(f"  - {spec.name}: {kind}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"simulate": _cmd_simulate, "train": _cmd_train,
                "generate": _cmd_generate, "inspect": _cmd_inspect,
                "sweep": _cmd_sweep, "metrics": _cmd_metrics}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
