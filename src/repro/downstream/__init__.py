"""Downstream predictive models and evaluation tasks (§5.1.1)."""

from repro.downstream.classifiers import (Classifier, DecisionTreeClassifier,
                                          GaussianNaiveBayes, LinearSVM,
                                          LogisticRegression, MLPClassifier,
                                          accuracy, default_classifiers)
from repro.downstream.regressors import (KernelRidgeRegressor,
                                         LinearRegressionModel, MLPRegressor,
                                         Regressor, default_regressors,
                                         r2_score)
from repro.downstream.tasks import (RankingResult, algorithm_ranking,
                                    event_prediction_features,
                                    forecasting_arrays, regression_ranking,
                                    train_real_test_real,
                                    train_synthetic_test_real)

__all__ = [
    "Classifier", "MLPClassifier", "GaussianNaiveBayes",
    "LogisticRegression", "DecisionTreeClassifier", "LinearSVM",
    "accuracy", "default_classifiers",
    "Regressor", "LinearRegressionModel", "KernelRidgeRegressor",
    "MLPRegressor", "r2_score", "default_regressors",
    "event_prediction_features", "forecasting_arrays",
    "train_synthetic_test_real", "train_real_test_real",
    "algorithm_ranking", "regression_ranking", "RankingResult",
]
