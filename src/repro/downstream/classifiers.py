"""From-scratch classifiers used in the Figure-11 / Table-4 experiments.

The paper trains five predictor families -- MLP, Naive Bayes, logistic
regression, decision tree, linear SVM -- on real or synthetic data and tests
on real data.  scikit-learn is unavailable offline, so the classifiers are
implemented here on numpy (+ the repro.nn engine for the MLP).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.nn import MLP as NNMLP
from repro.nn import Adam, Tensor, grad, no_grad
from repro.nn import functional as F

__all__ = ["Classifier", "MLPClassifier", "GaussianNaiveBayes",
           "LogisticRegression", "DecisionTreeClassifier", "LinearSVM",
           "accuracy", "default_classifiers"]


class Classifier(abc.ABC):
    """Common fit/predict interface."""

    name: str = "classifier"

    @abc.abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on features ``x`` (n, d) and integer labels ``y`` (n,)."""

    @abc.abstractmethod
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict integer labels for ``x``."""


def accuracy(model: Classifier, x: np.ndarray, y: np.ndarray) -> float:
    """Fraction of correct predictions."""
    return float((model.predict(x) == np.asarray(y)).mean())


def _standardize_fit(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    mean = x.mean(axis=0)
    std = x.std(axis=0) + 1e-9
    return mean, std


class MLPClassifier(Classifier):
    """Softmax MLP trained with Adam on cross-entropy."""

    name = "MLP"

    def __init__(self, hidden: tuple[int, ...] = (64, 64),
                 iterations: int = 300, batch_size: int = 64,
                 learning_rate: float = 1e-3, seed: int = 0):
        self.hidden = hidden
        self.iterations = iterations
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self._net: NNMLP | None = None
        self._classes: np.ndarray | None = None
        self._mean = self._std = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        rng = np.random.default_rng(self.seed)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self._classes = np.unique(y)
        index = {c: i for i, c in enumerate(self._classes)}
        labels = np.array([index[v] for v in y])
        self._mean, self._std = _standardize_fit(x)
        xs = (x - self._mean) / self._std
        self._net = NNMLP(x.shape[1], list(self.hidden),
                          len(self._classes), rng=rng)
        params = self._net.parameters()
        optimizer = Adam(params, lr=self.learning_rate,
                         betas=(0.9, 0.999))
        for _ in range(self.iterations):
            idx = rng.integers(0, len(xs), size=min(self.batch_size, len(xs)))
            loss = F.cross_entropy(self._net(Tensor(xs[idx])), labels[idx])
            optimizer.step(grad(loss, params))
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        xs = (np.asarray(x, dtype=np.float64) - self._mean) / self._std
        with no_grad():
            logits = self._net(Tensor(xs)).data
        return self._classes[logits.argmax(axis=1)]


class GaussianNaiveBayes(Classifier):
    """Gaussian Naive Bayes with per-class diagonal variances."""

    name = "NaiveBayes"

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing
        self._classes = None
        self._priors = None
        self._means = None
        self._vars = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self._classes = np.unique(y)
        k, d = len(self._classes), x.shape[1]
        self._priors = np.zeros(k)
        self._means = np.zeros((k, d))
        self._vars = np.zeros((k, d))
        floor = self.var_smoothing * max(x.var(), 1e-12)
        for i, c in enumerate(self._classes):
            rows = x[y == c]
            self._priors[i] = len(rows) / len(x)
            self._means[i] = rows.mean(axis=0)
            self._vars[i] = rows.var(axis=0) + floor
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        diff = x[:, None, :] - self._means[None, :, :]
        log_lik = -0.5 * ((diff * diff / self._vars[None]).sum(axis=2)
                          + np.log(2 * np.pi * self._vars).sum(axis=1)[None])
        scores = log_lik + np.log(self._priors)[None, :]
        return self._classes[scores.argmax(axis=1)]


class LogisticRegression(Classifier):
    """Multinomial logistic regression via full-batch gradient descent."""

    name = "LogisticRegression"

    def __init__(self, iterations: int = 300, learning_rate: float = 0.1,
                 l2: float = 1e-4):
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.l2 = l2
        self._classes = None
        self._weights = None
        self._bias = None
        self._mean = self._std = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self._classes = np.unique(y)
        index = {c: i for i, c in enumerate(self._classes)}
        labels = np.array([index[v] for v in y])
        self._mean, self._std = _standardize_fit(x)
        xs = (x - self._mean) / self._std
        n, d = xs.shape
        k = len(self._classes)
        onehot = np.eye(k)[labels]
        self._weights = np.zeros((d, k))
        self._bias = np.zeros(k)
        for _ in range(self.iterations):
            logits = xs @ self._weights + self._bias
            logits -= logits.max(axis=1, keepdims=True)
            p = np.exp(logits)
            p /= p.sum(axis=1, keepdims=True)
            grad_logits = (p - onehot) / n
            self._weights -= self.learning_rate * (
                xs.T @ grad_logits + self.l2 * self._weights)
            self._bias -= self.learning_rate * grad_logits.sum(axis=0)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        xs = (np.asarray(x, dtype=np.float64) - self._mean) / self._std
        return self._classes[(xs @ self._weights + self._bias).argmax(axis=1)]


class DecisionTreeClassifier(Classifier):
    """CART with Gini impurity and depth/leaf-size limits."""

    name = "DecisionTree"

    def __init__(self, max_depth: int = 8, min_samples_leaf: int = 5):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._tree = None
        self._classes = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self._classes = np.unique(y)
        index = {c: i for i, c in enumerate(self._classes)}
        labels = np.array([index[v] for v in y])
        self._tree = self._grow(x, labels, depth=0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int):
        counts = np.bincount(y, minlength=len(self._classes))
        majority = int(counts.argmax())
        if (depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf
                or counts.max() == len(y)):
            return ("leaf", majority)
        feature, threshold = self._best_split(x, y)
        if feature is None:
            return ("leaf", majority)
        left = x[:, feature] <= threshold
        return ("node", feature, threshold,
                self._grow(x[left], y[left], depth + 1),
                self._grow(x[~left], y[~left], depth + 1))

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        n, d = x.shape
        k = len(self._classes)
        best_gain, best = 0.0, (None, None)
        parent = _gini(np.bincount(y, minlength=k))
        for j in range(d):
            order = np.argsort(x[:, j], kind="mergesort")
            xs, ys = x[order, j], y[order]
            left_counts = np.zeros(k)
            right_counts = np.bincount(ys, minlength=k).astype(np.float64)
            for i in range(n - 1):
                left_counts[ys[i]] += 1
                right_counts[ys[i]] -= 1
                if xs[i] == xs[i + 1]:
                    continue
                n_left = i + 1
                n_right = n - n_left
                if (n_left < self.min_samples_leaf
                        or n_right < self.min_samples_leaf):
                    continue
                gain = parent - (n_left * _gini(left_counts)
                                 + n_right * _gini(right_counts)) / n
                if gain > best_gain:
                    best_gain = gain
                    best = (j, (xs[i] + xs[i + 1]) / 2.0)
        return best

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.empty(len(x), dtype=np.int64)
        for i, row in enumerate(x):
            node = self._tree
            while node[0] == "node":
                _, feature, threshold, left, right = node
                node = left if row[feature] <= threshold else right
            out[i] = node[1]
        return self._classes[out]


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


class LinearSVM(Classifier):
    """One-vs-rest linear SVM trained with hinge-loss subgradient descent."""

    name = "LinearSVM"

    def __init__(self, iterations: int = 300, learning_rate: float = 0.05,
                 l2: float = 1e-3, seed: int = 0):
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.l2 = l2
        self.seed = seed
        self._classes = None
        self._weights = None
        self._bias = None
        self._mean = self._std = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self._classes = np.unique(y)
        self._mean, self._std = _standardize_fit(x)
        xs = (x - self._mean) / self._std
        n, d = xs.shape
        k = len(self._classes)
        self._weights = np.zeros((d, k))
        self._bias = np.zeros(k)
        targets = np.where(y[:, None] == self._classes[None, :], 1.0, -1.0)
        for _ in range(self.iterations):
            margins = targets * (xs @ self._weights + self._bias)
            active = (margins < 1.0).astype(np.float64)
            grad_w = (-(xs.T @ (active * targets)) / n
                      + self.l2 * self._weights)
            grad_b = -(active * targets).sum(axis=0) / n
            self._weights -= self.learning_rate * grad_w
            self._bias -= self.learning_rate * grad_b
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        xs = (np.asarray(x, dtype=np.float64) - self._mean) / self._std
        return self._classes[(xs @ self._weights + self._bias).argmax(axis=1)]


def default_classifiers(seed: int = 0, mlp_iterations: int = 300
                        ) -> list[Classifier]:
    """The five predictor families of Figure 11, paper order."""
    return [
        MLPClassifier(seed=seed, iterations=mlp_iterations),
        GaussianNaiveBayes(),
        LogisticRegression(),
        DecisionTreeClassifier(),
        LinearSVM(seed=seed),
    ]
