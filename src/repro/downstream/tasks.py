"""Downstream evaluation tasks (§5.1.1).

- Event-type prediction on GCUT: predict the ``end_event_type`` attribute
  from the observed time series (Figure 11).
- Page-view forecasting on WWT: given the first part of a series, predict
  the remaining steps (Figure 27).
- The train-on-X/test-on-Y harness (Figure 10) and the algorithm-comparison
  rank-correlation protocol (Table 4, Figures 28-29).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import TimeSeriesDataset, padding_mask
from repro.data.splits import EvaluationSplit
from repro.downstream.classifiers import Classifier, accuracy
from repro.downstream.regressors import Regressor, r2_score
from repro.metrics.ranking import spearman_rank_correlation

__all__ = [
    "event_prediction_features", "forecasting_arrays",
    "train_synthetic_test_real", "train_real_test_real",
    "algorithm_ranking", "regression_ranking", "RankingResult",
]


def event_prediction_features(dataset: TimeSeriesDataset,
                              attribute: str = "end_event_type"
                              ) -> tuple[np.ndarray, np.ndarray]:
    """Features/labels for the Figure-11 classification task.

    Each series is summarised per feature column by mean, max, standard
    deviation, last valid value, and slope (last minus first), plus the
    normalised series length -- the kind of summary a cluster scheduler
    could compute online.
    """
    n = len(dataset)
    tmax = dataset.schema.max_length
    mask = padding_mask(dataset.lengths, tmax)
    lengths = dataset.lengths.astype(np.float64)
    columns = []
    for j in range(dataset.features.shape[2]):
        col = dataset.features[:, :, j]
        total = (col * mask).sum(axis=1)
        mean = total / lengths
        maximum = np.where(mask > 0, col, -np.inf).max(axis=1)
        centred = (col - mean[:, None]) * mask
        std = np.sqrt((centred ** 2).sum(axis=1) / lengths)
        last = col[np.arange(n), dataset.lengths - 1]
        first = col[:, 0]
        columns.extend([mean, maximum, std, last, last - first])
    columns.append(lengths / tmax)
    x = np.stack(columns, axis=1)
    y = dataset.attribute_column(attribute).astype(np.int64)
    return x, y


def forecasting_arrays(dataset: TimeSeriesDataset, feature: str,
                       history: int, horizon: int,
                       log_transform: bool = True
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Inputs/targets for the Figure-27 forecasting task.

    The first ``history`` steps are the input; the following ``horizon``
    steps are the target.  Page views are heavy-tailed, so a log1p
    transform is applied by default.
    """
    if history + horizon > dataset.schema.max_length:
        raise ValueError("history + horizon exceeds the series length")
    column = dataset.feature_column(feature)
    if log_transform:
        column = np.log1p(np.maximum(column, 0.0))
    return (column[:, :history].copy(),
            column[:, history:history + horizon].copy())


def train_synthetic_test_real(split: EvaluationSplit, model,
                              featurize) -> float:
    """Train a predictor on B, test on A' (the Figure-11 protocol).

    ``featurize`` maps a dataset to (x, y); ``model`` is a Classifier or
    Regressor.  Returns accuracy or R² accordingly.
    """
    if split.train_synthetic is None:
        raise ValueError("split has no synthetic data; call synthesize_split")
    x_train, y_train = featurize(split.train_synthetic)
    x_test, y_test = featurize(split.test_real)
    return _fit_and_score(model, x_train, y_train, x_test, y_test)


def train_real_test_real(split: EvaluationSplit, model, featurize) -> float:
    """Train on A, test on A' (the "real" bars of Figure 11)."""
    x_train, y_train = featurize(split.train_real)
    x_test, y_test = featurize(split.test_real)
    return _fit_and_score(model, x_train, y_train, x_test, y_test)


def _fit_and_score(model, x_train, y_train, x_test, y_test) -> float:
    if not isinstance(model, (Classifier, Regressor)):
        raise TypeError("model must be a Classifier or Regressor")
    model.fit(x_train, y_train)
    if isinstance(model, Classifier):
        return accuracy(model, x_test, y_test)
    return r2_score(y_test, model.predict(x_test))


@dataclass
class RankingResult:
    """Per-model scores and the Table-4 rank correlation."""

    model_names: list[str]
    real_scores: list[float]      # train on A, test on A'
    synthetic_scores: list[float]  # train on B, test on B'
    rank_correlation: float


def algorithm_ranking(split: EvaluationSplit, models: list,
                      featurize) -> RankingResult:
    """The Table-4 protocol: is the predictor ranking preserved on B/B'?

    Real ranking comes from train-A/test-A'; synthetic ranking from
    train-B/test-B'.  Returns Spearman's rho between the two score vectors.
    """
    if split.train_synthetic is None or split.test_synthetic is None:
        raise ValueError("split needs both B and B'")
    x_a, y_a = featurize(split.train_real)
    x_ap, y_ap = featurize(split.test_real)
    x_b, y_b = featurize(split.train_synthetic)
    x_bp, y_bp = featurize(split.test_synthetic)
    real_scores, synthetic_scores, names = [], [], []
    for model in models:
        names.append(model.name)
        real_scores.append(_fit_and_score(model, x_a, y_a, x_ap, y_ap))
        synthetic_scores.append(_fit_and_score(model, x_b, y_b, x_bp, y_bp))
    rho = spearman_rank_correlation(np.array(real_scores),
                                    np.array(synthetic_scores))
    return RankingResult(model_names=names, real_scores=real_scores,
                         synthetic_scores=synthetic_scores,
                         rank_correlation=rho)


# Alias used by the WWT benchmark, where models are regressors.
regression_ranking = algorithm_ranking
