"""From-scratch regressors for the WWT forecasting experiment (Figure 27).

The paper trains four regression families -- a 5-layer MLP, a 1-layer MLP,
linear regression, and RBF kernel ridge -- to forecast the next steps of a
page-view series, and scores them with the coefficient of determination R².
"""

from __future__ import annotations

import abc

import numpy as np
from scipy import linalg

from repro.nn import MLP as NNMLP
from repro.nn import Adam, Tensor, grad, no_grad
from repro.nn import functional as F

__all__ = ["Regressor", "LinearRegressionModel", "KernelRidgeRegressor",
           "MLPRegressor", "r2_score", "default_regressors"]


class Regressor(abc.ABC):
    """Common fit/predict interface for multi-output regression."""

    name: str = "regressor"

    @abc.abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray) -> "Regressor":
        """Train on features (n, d) and targets (n, q)."""

    @abc.abstractmethod
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets for ``x``."""


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination over all outputs (footnote 8)."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    residual = float(((y_true - y_pred) ** 2).sum())
    total = float(((y_true - y_true.mean()) ** 2).sum())
    if total == 0:
        return 0.0
    return 1.0 - residual / total


class LinearRegressionModel(Regressor):
    """Ordinary least squares via lstsq (with intercept)."""

    name = "LinearRegression"

    def __init__(self):
        self._coef = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegressionModel":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        design = np.concatenate([x, np.ones((len(x), 1))], axis=1)
        self._coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        design = np.concatenate([x, np.ones((len(x), 1))], axis=1)
        return design @ self._coef


class KernelRidgeRegressor(Regressor):
    """Kernel ridge regression with an RBF kernel."""

    name = "KernelRidge"

    def __init__(self, alpha: float = 1.0, gamma: float | None = None):
        self.alpha = alpha
        self.gamma = gamma
        self._x_train = None
        self._dual = None

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        gamma = self.gamma
        if gamma is None:
            gamma = 1.0 / a.shape[1]
        aa = (a * a).sum(axis=1)[:, None]
        bb = (b * b).sum(axis=1)[None, :]
        d2 = np.maximum(aa + bb - 2 * (a @ b.T), 0.0)
        return np.exp(-gamma * d2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KernelRidgeRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self._x_train = x
        k = self._kernel(x, x)
        k[np.diag_indices_from(k)] += self.alpha
        self._dual = linalg.solve(k, y, assume_a="pos")
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return self._kernel(x, self._x_train) @ self._dual


class MLPRegressor(Regressor):
    """MLP regression trained with Adam on MSE.

    ``hidden=(200,)*5`` gives the paper's "MLP (5 layers)";
    ``hidden=(100,)`` gives "MLP (1 layer)".
    """

    def __init__(self, hidden: tuple[int, ...] = (100,),
                 iterations: int = 300, batch_size: int = 64,
                 learning_rate: float = 1e-3, seed: int = 0,
                 name: str | None = None):
        self.hidden = hidden
        self.iterations = iterations
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self.name = name or f"MLP ({len(hidden)} layer{'s' * (len(hidden) > 1)})"
        self._net = None
        self._x_stats = None
        self._y_stats = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        rng = np.random.default_rng(self.seed)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self._x_stats = (x.mean(axis=0), x.std(axis=0) + 1e-9)
        self._y_stats = (y.mean(axis=0), y.std(axis=0) + 1e-9)
        xs = (x - self._x_stats[0]) / self._x_stats[1]
        ys = (y - self._y_stats[0]) / self._y_stats[1]
        self._net = NNMLP(x.shape[1], list(self.hidden), y.shape[1], rng=rng)
        params = self._net.parameters()
        optimizer = Adam(params, lr=self.learning_rate, betas=(0.9, 0.999))
        for _ in range(self.iterations):
            idx = rng.integers(0, len(xs), size=min(self.batch_size, len(xs)))
            loss = F.mse_loss(self._net(Tensor(xs[idx])), Tensor(ys[idx]))
            optimizer.step(grad(loss, params))
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        xs = ((np.asarray(x, dtype=np.float64) - self._x_stats[0])
              / self._x_stats[1])
        with no_grad():
            out = self._net(Tensor(xs)).data
        return out * self._y_stats[1] + self._y_stats[0]


def default_regressors(seed: int = 0, mlp_iterations: int = 300
                       ) -> list[Regressor]:
    """The four regression families of Figure 27."""
    return [
        KernelRidgeRegressor(),
        LinearRegressionModel(),
        MLPRegressor(hidden=(100,), seed=seed, iterations=mlp_iterations,
                     name="MLP (1 layer)"),
        MLPRegressor(hidden=(200,) * 5, seed=seed, iterations=mlp_iterations,
                     name="MLP (5 layers)"),
    ]
