"""The ``GeneratorBackend`` seam: one interface, many architectures.

The paper frames DoppelGANger as one point in a design space of
time-series generators and explicitly leaves architecture choice open
(§7).  Everything above the model layer -- the experiment harness, the
process-parallel sweep, the serving registry, and the CLI -- only needs
five capabilities from a generator:

- build a model from a (schema, config) pair,
- fit it on a :class:`~repro.data.dataset.TimeSeriesDataset`,
- sample ``n`` synthetic objects deterministically from an rng,
- serialize the fitted model to bytes, and restore it from bytes.

:class:`GeneratorBackend` names exactly that contract, and the registry
(:func:`register_backend` / :func:`get_backend`) makes architectures
addressable by name so a sweep over ``["doppelganger", "dlgan", "hmm"]``
is an architecture bake-off with no special cases.

Contract notes (see docs/backends.md for the full rules):

- ``make_config`` must return a plain JSON-serializable dict -- it is
  fingerprinted by :func:`repro.parallel.cache.config_fingerprint` to key
  the sweep result cache, so any field that changes training must appear
  in it.
- ``save_bytes``/``load_bytes`` must round-trip byte-identically:
  ``save_bytes(load_bytes(b)) == b`` for any blob the backend produced,
  and the restored model must generate bit-identically to the original
  for the same rng.  The serving registry and the sharded-generation
  workers both rely on this.
- ``generate`` must be a pure function of (model state, rng): the same
  seeded rng always yields the same dataset, on any host, in any
  process.  The sweep digests and the serving determinism battery
  enforce this.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.data.schema import DataSchema

__all__ = ["GeneratorBackend", "UnknownBackend", "register_backend",
           "get_backend", "backend_names", "backend_for_model",
           "DEFAULT_BACKEND"]

#: Tag assumed for archives published before backend tags existed.
DEFAULT_BACKEND = "doppelganger"


class UnknownBackend(ValueError):
    """No backend is registered under the requested name."""


class GeneratorBackend(abc.ABC):
    """One generative architecture behind the common five-method seam.

    A backend object is stateless: it describes *how* to build, train,
    and (de)serialize models of one architecture.  The models themselves
    carry all fitted state.
    """

    #: Canonical registry name (also the archive tag in the serving
    #: registry manifest and the ``--backend`` CLI value).
    name: str = "backend"

    #: Extra names the backend answers to (e.g. ``dg``).
    aliases: tuple[str, ...] = ()

    # -- construction ------------------------------------------------------
    @abc.abstractmethod
    def make_config(self, dataset_name: str, scale, seed: int | None = None,
                    **overrides) -> dict:
        """Bench-scale config for one dataset, as a fingerprintable dict.

        ``overrides`` that do not apply to this architecture are ignored
        (a sweep passes the same overrides to every backend).  ``seed``
        overrides the scale's training seed.
        """

    @abc.abstractmethod
    def from_config(self, schema: DataSchema, config: dict):
        """Instantiate an untrained model from a ``make_config`` dict."""

    # -- training and sampling ---------------------------------------------
    def fit(self, model, dataset: TimeSeriesDataset):
        """Train ``model`` on ``dataset`` (default: ``model.fit``)."""
        return model.fit(dataset)

    def generate(self, model, n: int,
                 rng: np.random.Generator | None = None,
                 workers: int = 1) -> TimeSeriesDataset:
        """Sample ``n`` objects; ``workers`` is advisory (ignored unless
        the architecture supports sharded generation)."""
        return model.generate(n, rng=rng)

    # -- persistence -------------------------------------------------------
    @abc.abstractmethod
    def save_bytes(self, model) -> bytes:
        """Serialize a fitted model to a self-describing archive."""

    @abc.abstractmethod
    def load_bytes(self, blob: bytes):
        """Inverse of :meth:`save_bytes`."""

    def owns_model(self, model) -> bool:
        """Whether ``model`` is an instance of this backend's model type."""
        return False

    def describe(self) -> str:
        """One-line human description (docs, CLI listings)."""
        return self.__doc__.strip().splitlines()[0] if self.__doc__ else ""


_REGISTRY: dict[str, GeneratorBackend] = {}
_CANONICAL: dict[str, GeneratorBackend] = {}


def register_backend(backend: GeneratorBackend) -> GeneratorBackend:
    """Register ``backend`` under its name and aliases.

    Re-registering the same name replaces the previous entry (so tests
    can install instrumented doubles); returns the backend for chaining.
    """
    _CANONICAL[backend.name] = backend
    for name in (backend.name, *backend.aliases):
        _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> GeneratorBackend:
    """Resolve a backend by canonical name or alias.

    Raises :class:`UnknownBackend` listing what is registered -- the
    message a user sees for a typo'd ``--backend`` or a registry archive
    tagged by a newer version of the code.
    """
    backend = _REGISTRY.get(str(name))
    if backend is None:
        known = ", ".join(sorted(_CANONICAL))
        raise UnknownBackend(
            f"no generator backend named {name!r} is registered "
            f"(available: {known})")
    return backend


def backend_names(include_aliases: bool = False) -> list[str]:
    """Registered backend names, sorted (canonical only by default)."""
    if include_aliases:
        return sorted(_REGISTRY)
    return sorted(_CANONICAL)


def backend_for_model(model) -> GeneratorBackend:
    """The backend whose model type ``model`` is an instance of.

    Raises :class:`UnknownBackend` when no registered backend claims it.
    """
    for backend in _CANONICAL.values():
        if backend.owns_model(model):
            return backend
    raise UnknownBackend(
        f"no registered backend owns models of type "
        f"{type(model).__name__!r} (available: "
        f"{', '.join(sorted(_CANONICAL))})")
