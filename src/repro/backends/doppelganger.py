"""DoppelGANger as the reference :class:`GeneratorBackend`.

The model class itself (:class:`repro.core.doppelganger.DoppelGANger`)
already implements every capability the seam needs; this adapter only
maps the interface names and keeps the bench-scale config construction
(:func:`repro.experiments.configs.make_dg_config`) addressable by
backend name.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import GeneratorBackend
from repro.core.config import DGConfig
from repro.core.doppelganger import (DoppelGANger, config_from_dict,
                                     config_to_dict)
from repro.data.schema import DataSchema

__all__ = ["DoppelGANgerBackend"]


class DoppelGANgerBackend(GeneratorBackend):
    """The paper's architecture: decoupled attribute/min-max/feature
    generators with a batched RNN and WGAN-GP training (Figure 6)."""

    name = "doppelganger"
    aliases = ("dg",)

    def make_config(self, dataset_name: str, scale, seed: int | None = None,
                    **overrides) -> dict:
        from repro.experiments.configs import make_dg_config

        if seed is not None:
            overrides = {**overrides, "seed": seed}
        return config_to_dict(make_dg_config(dataset_name, scale,
                                             **overrides))

    def from_config(self, schema: DataSchema, config) -> DoppelGANger:
        if not isinstance(config, DGConfig):
            config = config_from_dict(dict(config))
        return DoppelGANger(schema, config)

    def generate(self, model: DoppelGANger, n: int,
                 rng: np.random.Generator | None = None,
                 workers: int = 1):
        return model.generate(n, rng=rng, workers=workers)

    def save_bytes(self, model: DoppelGANger) -> bytes:
        return model.save_bytes()

    def load_bytes(self, blob: bytes) -> DoppelGANger:
        return DoppelGANger.load_bytes(blob)

    def owns_model(self, model) -> bool:
        return isinstance(model, DoppelGANger)
