"""Dual-layer discrete + continuous generator (DLGAN-style backend).

An alternative architecture in the shape of DLGAN (arXiv:2508.21340): the
series is synthesised in two stacked layers instead of one RNN pass.

**Layer 1 -- discrete pattern.**  Every continuous feature channel is
quantised into ``levels`` equal-width bins over the encoder's [0, 1]
range; categorical channels and the §4.1.1 generation flags are already
discrete.  An MLP generator adversarially learns the *joint* distribution
of ``[attributes || per-step discrete pattern]`` against an MLP critic
(WGAN-GP), so the coarse structure of the series -- level regime, length,
categorical dynamics -- is captured by a purely discrete model.

**Layer 2 -- continuous refinement.**  Conditioned on the attributes and
the (hardened) discrete pattern, a second MLP generator emits the
within-bin offset of every continuous step; a second critic judges
``[attributes || pattern || continuous values]`` jointly, so refinement
is trained adversarially against the true conditional residuals rather
than by regression (which would collapse to bin midpoints).

The final continuous value is ``(level + offset) / levels``, decoded
through the shared global [0, 1] encoder.  Both layers reuse the fused
:mod:`repro.nn` kernels (MLP forward/backward, WGAN-GP double backprop);
there is no recurrent state, so generation cost is one matmul chain per
block regardless of series length.

The model satisfies the full :class:`~repro.backends.base.GeneratorBackend`
contract: deterministic generation from a seeded rng (noise is drawn in
fixed block order, exactly ``batch_size`` samples at a time) and
byte-identical ``save_bytes``/``load_bytes`` round-trips.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from repro.backends.base import GeneratorBackend
from repro.baselines.base import make_baseline_encoder
from repro.core.generator import BlockActivation, OutputBlock
from repro.core.losses import critic_loss, generator_loss
from repro.data.dataset import TimeSeriesDataset
from repro.data.schema import DataSchema, schema_from_dict, schema_to_dict
from repro.nn import MLP, Adam, Tensor, grad, no_grad, ops

__all__ = ["DLGANConfig", "DLGAN", "DLGANBackend"]


@dataclasses.dataclass
class DLGANConfig:
    """Hyper-parameters of the dual-layer generator."""

    levels: int = 8                 # quantisation bins per continuous channel
    noise_dim: int = 16             # layer-1 pattern noise
    refine_noise_dim: int = 8       # layer-2 refinement noise
    pattern_hidden: tuple[int, ...] = (128, 128)
    refine_hidden: tuple[int, ...] = (64, 64)
    discriminator_hidden: tuple[int, ...] = (128, 128)
    iterations: int = 400           # adversarial rounds per layer
    batch_size: int = 32
    learning_rate: float = 1e-3
    gradient_penalty_weight: float = 10.0
    seed: int = 0

    def __post_init__(self):
        if self.levels < 2:
            raise ValueError("levels must be >= 2")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


def _config_to_dict(config: DLGANConfig) -> dict:
    return dataclasses.asdict(config)


def _config_from_dict(data: dict) -> DLGANConfig:
    return DLGANConfig(**{k: tuple(v) if isinstance(v, list) else v
                          for k, v in data.items()})


class DLGAN:
    """Dual-layer discrete+continuous generative model.

    Typical use mirrors the other backends::

        model = DLGAN(schema, DLGANConfig(iterations=400))
        model.fit(train_data)
        synthetic = model.generate(10_000, rng=np.random.default_rng(0))
    """

    name = "DLGAN"

    def __init__(self, schema: DataSchema, config: DLGANConfig | None = None):
        self.schema = schema
        self.config = config or DLGANConfig()
        self.encoder = make_baseline_encoder(schema)
        self._built = False
        self.loss_history: dict[str, list[float]] = {"pattern": [],
                                                     "refine": []}

    # -- layout ------------------------------------------------------------
    def _attribute_blocks(self) -> list[OutputBlock]:
        return [OutputBlock(f.dimension, "softmax" if f.is_categorical
                            else "sigmoid")
                for f in self.schema.attributes]

    def _step_blocks(self) -> list[OutputBlock]:
        """Discrete blocks of one time step: features then flags."""
        blocks = [OutputBlock(f.dimension if f.is_categorical
                              else self.config.levels, "softmax")
                  for f in self.schema.features]
        blocks.append(OutputBlock(2, "softmax"))  # generation flags
        return blocks

    @property
    def _step_dim(self) -> int:
        return sum(b.dimension for b in self._step_blocks())

    @property
    def _n_continuous(self) -> int:
        return sum(1 for f in self.schema.features if not f.is_categorical)

    # -- construction ------------------------------------------------------
    def _build(self, rng: np.random.Generator) -> None:
        cfg = self.config
        tmax = self.schema.max_length
        attr_blocks = self._attribute_blocks()
        step_blocks = self._step_blocks()
        pattern_blocks = attr_blocks + step_blocks * tmax
        self._pattern_activation = BlockActivation(pattern_blocks)
        self._attr_dim = sum(b.dimension for b in attr_blocks)
        pattern_dim = self._pattern_activation.dimension
        self.pattern_generator = MLP(cfg.noise_dim,
                                     list(cfg.pattern_hidden),
                                     pattern_dim, rng=rng)
        self.pattern_discriminator = MLP(pattern_dim,
                                         list(cfg.discriminator_hidden), 1,
                                         rng=rng)
        offsets_dim = tmax * self._n_continuous
        self._refine_activation = BlockActivation(
            [OutputBlock(max(offsets_dim, 1), "sigmoid")])
        self.refiner = MLP(pattern_dim + cfg.refine_noise_dim,
                           list(cfg.refine_hidden),
                           max(offsets_dim, 1), rng=rng)
        self.refine_discriminator = MLP(pattern_dim + offsets_dim,
                                        list(cfg.discriminator_hidden), 1,
                                        rng=rng)
        self._built = True

    # -- discretisation ----------------------------------------------------
    def _discretize(self, encoded) -> tuple[np.ndarray, np.ndarray]:
        """Split encoded features into (one-hot pattern, unit offsets).

        Returns ``pattern`` with shape (n, T * step_dim) and ``offsets``
        with shape (n, T * n_continuous) holding each continuous step's
        position inside its bin (in [0, 1)).
        """
        cfg = self.config
        n, tmax = encoded.features.shape[0], encoded.features.shape[1]
        parts, offset_parts = [], []
        channel = 0
        for spec in self.schema.features:
            block = encoded.features[:, :, channel:channel + spec.dimension]
            channel += spec.dimension
            if spec.is_categorical:
                parts.append(block)
                continue
            unit = np.clip(block[:, :, 0], 0.0, 1.0)
            scaled = unit * cfg.levels
            level = np.minimum(np.floor(scaled), cfg.levels - 1)
            one_hot = np.zeros((n, tmax, cfg.levels))
            rows = np.repeat(np.arange(n), tmax)
            cols = np.tile(np.arange(tmax), n)
            one_hot[rows, cols, level.reshape(-1).astype(np.int64)] = 1.0
            parts.append(one_hot)
            offset_parts.append(np.clip(scaled - level, 0.0, 1.0)[:, :, None])
        parts.append(encoded.features[:, :, -2:])  # generation flags
        pattern = np.concatenate(parts, axis=2).reshape(n, -1)
        offsets = (np.concatenate(offset_parts, axis=2).reshape(n, -1)
                   if offset_parts else np.zeros((n, 0)))
        return pattern, offsets

    def _harden(self, soft: np.ndarray) -> np.ndarray:
        """Snap soft per-step softmax blocks to one-hot (argmax)."""
        n = soft.shape[0]
        tmax = self.schema.max_length
        step = soft.reshape(n * tmax, self._step_dim)
        hard = np.zeros_like(step)
        offset = 0
        for block in self._step_blocks():
            piece = step[:, offset:offset + block.dimension]
            hard[np.arange(len(step)),
                 offset + piece.argmax(axis=1)] = 1.0
            offset += block.dimension
        return hard.reshape(n, tmax * self._step_dim)

    def _assemble_features(self, pattern: np.ndarray,
                           offsets: np.ndarray) -> np.ndarray:
        """Rebuild the encoder's (n, T, F+2) layout from pattern+offsets."""
        cfg = self.config
        n = pattern.shape[0]
        tmax = self.schema.max_length
        steps = pattern.reshape(n, tmax, self._step_dim)
        offs = offsets.reshape(n, tmax, self._n_continuous) \
            if self._n_continuous else np.zeros((n, tmax, 0))
        channels = []
        offset, cont = 0, 0
        for spec in self.schema.features:
            if spec.is_categorical:
                channels.append(steps[:, :, offset:offset + spec.dimension])
                offset += spec.dimension
                continue
            level = steps[:, :, offset:offset + cfg.levels].argmax(axis=2)
            offset += cfg.levels
            unit = (level + np.clip(offs[:, :, cont], 0.0, 1.0)) / cfg.levels
            channels.append(np.clip(unit, 0.0, 1.0)[:, :, None])
            cont += 1
        channels.append(steps[:, :, -2:])  # flags
        return np.concatenate(channels, axis=2)

    # -- training ----------------------------------------------------------
    def fit(self, dataset: TimeSeriesDataset) -> "DLGAN":
        if dataset.schema != self.schema:
            raise ValueError("dataset schema does not match model schema")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.encoder.fit(dataset)
        encoded = self.encoder.transform(dataset)
        if not self._built:
            self._build(rng)
        pattern_real, offsets_real = self._discretize(encoded)
        real_joint = np.concatenate([encoded.attributes, pattern_real],
                                    axis=1)
        n = len(encoded)
        batch = min(cfg.batch_size, n)

        # Layer 1: discrete pattern WGAN-GP.
        g_params = self.pattern_generator.parameters()
        d_params = self.pattern_discriminator.parameters()
        g_opt = Adam(g_params, lr=cfg.learning_rate)
        d_opt = Adam(d_params, lr=cfg.learning_rate)
        self.loss_history["pattern"] = []
        for _ in range(cfg.iterations):
            idx = rng.integers(0, n, size=batch)
            real = Tensor(real_joint[idx])
            with no_grad():
                z = Tensor(rng.normal(size=(batch, cfg.noise_dim)))
                fake_const = self._pattern_activation(
                    self.pattern_generator(z)).detach()
            d_loss = critic_loss(self.pattern_discriminator, real,
                                 fake_const, cfg.gradient_penalty_weight,
                                 rng)
            d_opt.step(grad(d_loss, d_params, allow_unused=True))
            z = Tensor(rng.normal(size=(batch, cfg.noise_dim)))
            fake = self._pattern_activation(self.pattern_generator(z))
            g_loss = generator_loss(self.pattern_discriminator, fake)
            g_opt.step(grad(g_loss, g_params, allow_unused=True))
            self.loss_history["pattern"].append(g_loss.item())

        # Layer 2: continuous refinement WGAN-GP, conditioned on the real
        # (attribute, pattern) pairs so the critic judges the joint.
        if self._n_continuous:
            r_params = self.refiner.parameters()
            rd_params = self.refine_discriminator.parameters()
            r_opt = Adam(r_params, lr=cfg.learning_rate)
            rd_opt = Adam(rd_params, lr=cfg.learning_rate)
            self.loss_history["refine"] = []
            for _ in range(cfg.iterations):
                idx = rng.integers(0, n, size=batch)
                cond_np = real_joint[idx]
                real = Tensor(np.concatenate([cond_np, offsets_real[idx]],
                                             axis=1))
                with no_grad():
                    z = rng.normal(size=(batch, cfg.refine_noise_dim))
                    offs = self._refine_activation(self.refiner(
                        Tensor(np.concatenate([cond_np, z], axis=1))))
                    fake_const = Tensor(np.concatenate(
                        [cond_np, offs.data], axis=1))
                d_loss = critic_loss(self.refine_discriminator, real,
                                     fake_const,
                                     cfg.gradient_penalty_weight, rng)
                rd_opt.step(grad(d_loss, rd_params, allow_unused=True))
                z = rng.normal(size=(batch, cfg.refine_noise_dim))
                offs = self._refine_activation(self.refiner(
                    Tensor(np.concatenate([cond_np, z], axis=1))))
                fake = ops.concat([Tensor(cond_np), offs], axis=1)
                g_loss = generator_loss(self.refine_discriminator, fake)
                r_opt.step(grad(g_loss, r_params, allow_unused=True))
                self.loss_history["refine"].append(g_loss.item())
        return self

    # -- generation --------------------------------------------------------
    def generate(self, n: int, rng: np.random.Generator | None = None,
                 **_ignored) -> TimeSeriesDataset:
        """Sample ``n`` objects (blocks of ``batch_size``, plan order)."""
        if not self._built:
            raise RuntimeError("fit() must be called before generate()")
        rng = rng if rng is not None else np.random.default_rng()
        cfg = self.config
        parts_attrs, parts_feats = [], []
        remaining = n
        while remaining > 0:
            size = min(cfg.batch_size, remaining)
            remaining -= size
            with no_grad():
                z = Tensor(rng.normal(size=(size, cfg.noise_dim)))
                joint = self._pattern_activation(
                    self.pattern_generator(z)).data
                attrs = joint[:, :self._attr_dim]
                hard = self._harden(joint[:, self._attr_dim:])
                cond = np.concatenate([attrs, hard], axis=1)
                z_r = rng.normal(size=(size, cfg.refine_noise_dim))
                if self._n_continuous:
                    offs = self._refine_activation(self.refiner(
                        Tensor(np.concatenate([cond, z_r], axis=1)))).data
                else:
                    offs = np.zeros((size, 0))
            parts_attrs.append(attrs)
            parts_feats.append(self._assemble_features(hard, offs))
        attrs = (np.concatenate(parts_attrs) if parts_attrs
                 else np.zeros((0, self._attr_dim)))
        feats = (np.concatenate(parts_feats) if parts_feats
                 else np.zeros((0, self.schema.max_length,
                                self.encoder.feature_dim)))
        return self.encoder.inverse(attrs, np.zeros((len(attrs), 0)), feats)

    # -- persistence -------------------------------------------------------
    def _named_modules(self) -> dict:
        return {
            "pattern_generator": self.pattern_generator,
            "pattern_discriminator": self.pattern_discriminator,
            "refiner": self.refiner,
            "refine_discriminator": self.refine_discriminator,
        }

    def save_bytes(self) -> bytes:
        """Serialize schema, config, encoder state, and weights to npz."""
        if not self._built:
            raise RuntimeError("fit() must be called before save_bytes()")
        from repro.nn.serialization import arrays_to_bytes

        meta = {
            "format": "repro-dlgan",
            "schema": schema_to_dict(self.schema),
            "config": _config_to_dict(self.config),
            "encoder": self.encoder.state(),
        }
        arrays = {"__meta__": np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8)}
        for prefix, module in self._named_modules().items():
            for name, value in module.state_dict().items():
                arrays[f"{prefix}::{name}"] = value
        return arrays_to_bytes(arrays)

    @classmethod
    def load_bytes(cls, blob: bytes) -> "DLGAN":
        """Inverse of :meth:`save_bytes`."""
        from repro.nn.serialization import bytes_to_arrays

        arrays = bytes_to_arrays(blob)
        if "__meta__" not in arrays:
            raise ValueError("not a DLGAN model archive (no __meta__)")
        meta = json.loads(bytes(arrays["__meta__"].tobytes()).decode())
        if meta.get("format") != "repro-dlgan":
            raise ValueError(
                f"not a DLGAN model archive "
                f"(format={meta.get('format')!r})")
        model = cls(schema_from_dict(meta["schema"]),
                    _config_from_dict(meta["config"]))
        model.encoder.load_state(meta["encoder"])
        model._build(np.random.default_rng(model.config.seed))
        for prefix, module in model._named_modules().items():
            state = {name.split("::", 1)[1]: value
                     for name, value in arrays.items()
                     if name.startswith(prefix + "::")}
            module.load_state_dict(state)
        return model


class DLGANBackend(GeneratorBackend):
    """Dual-layer discrete-pattern + continuous-refinement GAN (DLGAN
    shape, arXiv:2508.21340)."""

    name = "dlgan"

    def make_config(self, dataset_name: str, scale, seed: int | None = None,
                    **overrides) -> dict:
        width = scale.hidden_width
        config = DLGANConfig(
            pattern_hidden=(width * 2, width * 2),
            refine_hidden=(width, width),
            discriminator_hidden=(width * 2, width * 2),
            iterations=scale.baseline_iterations,
            batch_size=scale.batch_size,
            seed=scale.seed if seed is None else seed,
        )
        fields = {f.name for f in dataclasses.fields(DLGANConfig)}
        applicable = {k: v for k, v in overrides.items() if k in fields}
        if applicable:
            config = dataclasses.replace(config, **{
                k: tuple(v) if isinstance(v, list) else v
                for k, v in applicable.items()})
        return _config_to_dict(config)

    def from_config(self, schema: DataSchema, config) -> DLGAN:
        if not isinstance(config, DLGANConfig):
            config = _config_from_dict(dict(config))
        return DLGAN(schema, config)

    def save_bytes(self, model: DLGAN) -> bytes:
        return model.save_bytes()

    def load_bytes(self, blob: bytes) -> DLGAN:
        return DLGAN.load_bytes(blob)

    def owns_model(self, model) -> bool:
        return isinstance(model, DLGAN)
