"""Thin :class:`GeneratorBackend` adapters over the §5.0.1 baselines.

Each baseline already implements ``fit``/``generate``; persistence rides
the shared :func:`repro.baselines.persistence.save_baseline` npz format,
buffered through memory so the backend seam's ``save_bytes``/``load_bytes``
contract holds without touching the filesystem.
"""

from __future__ import annotations

import io

from repro.backends.base import GeneratorBackend
from repro.baselines import (ARBaseline, HMMBaseline, NaiveGANBaseline,
                             RNNBaseline, load_baseline, save_baseline)
from repro.data.schema import DataSchema

__all__ = ["BaselineBackend", "BASELINE_BACKENDS"]

_CLASSES = {
    "hmm": HMMBaseline,
    "ar": ARBaseline,
    "rnn": RNNBaseline,
    "naive_gan": NaiveGANBaseline,
}


class BaselineBackend(GeneratorBackend):
    """Adapter exposing one baseline class behind the backend seam."""

    def __init__(self, name: str):
        if name not in _CLASSES:
            raise ValueError(f"unknown baseline {name!r}")
        self.name = name
        self.model_class = _CLASSES[name]

    def make_config(self, dataset_name: str, scale, seed: int | None = None,
                    **overrides) -> dict:
        """Constructor kwargs for the baseline at this scale.

        Sweep-wide ``overrides`` target DoppelGANger-style configs; only
        keys the baseline constructor actually accepts are applied here,
        the rest are ignored (matching the pre-backend harness
        behaviour, where baselines never saw config overrides).
        """
        from repro.experiments.configs import baseline_kwargs

        kwargs = baseline_kwargs(self.name, scale)
        kwargs.update({k: v for k, v in overrides.items() if k in kwargs})
        if seed is not None:
            kwargs["seed"] = seed
        return kwargs

    def from_config(self, schema: DataSchema, config: dict):
        # Baselines learn the schema at fit() time; construction only
        # needs the hyper-parameters.
        return self.model_class(**dict(config))

    def save_bytes(self, model) -> bytes:
        buffer = io.BytesIO()
        save_baseline(model, buffer)
        return buffer.getvalue()

    def load_bytes(self, blob: bytes):
        return load_baseline(io.BytesIO(blob))

    def owns_model(self, model) -> bool:
        # Exact type match: subclasses may carry state this adapter's
        # persistence format does not cover.
        return type(model) is self.model_class


BASELINE_BACKENDS = tuple(BaselineBackend(name) for name in _CLASSES)
