"""Pluggable generator backends: DoppelGANger is one of many.

Importing this package registers the built-in architectures:

- ``doppelganger`` (alias ``dg``) -- the paper's reference model,
- ``dlgan`` -- the dual-layer discrete+continuous generator,
- ``hmm`` / ``ar`` / ``rnn`` / ``naive_gan`` -- the §5.0.1 baselines.

Third-party architectures plug in with
``register_backend(MyBackend())``; everything above the model layer
(harness, sweep, registry, CLI) dispatches by name from then on.

This module also owns *archive sniffing*: every backend's ``save_bytes``
produces a self-describing npz whose ``__meta__`` JSON reveals the
architecture, so blobs saved before backend tags existed (or files on
disk of unknown provenance) can still be routed to the right loader.
"""

from __future__ import annotations

import json
import zipfile

from repro.backends.base import (DEFAULT_BACKEND, GeneratorBackend,
                                 UnknownBackend, backend_for_model,
                                 backend_names, get_backend,
                                 register_backend)
from repro.backends.baselines import BASELINE_BACKENDS, BaselineBackend
from repro.backends.dlgan import DLGAN, DLGANBackend, DLGANConfig
from repro.backends.doppelganger import DoppelGANgerBackend

__all__ = [
    "GeneratorBackend", "UnknownBackend", "DEFAULT_BACKEND",
    "register_backend", "get_backend", "backend_names",
    "backend_for_model",
    "DoppelGANgerBackend", "DLGANBackend", "BaselineBackend",
    "DLGAN", "DLGANConfig",
    "sniff_backend", "load_model_bytes", "load_model_file",
]

register_backend(DoppelGANgerBackend())
register_backend(DLGANBackend())
for _backend in BASELINE_BACKENDS:
    register_backend(_backend)

#: ``__meta__["kind"]`` values of baseline archives -> backend names.
_KIND_TO_BACKEND = {
    "HMM": "hmm",
    "AR": "ar",
    "RNN": "rnn",
    "Naive GAN": "naive_gan",
}


def _read_meta(blob: bytes) -> dict:
    """Extract the ``__meta__`` JSON from an npz blob without loading
    the (potentially large) weight arrays."""
    import io

    import numpy as np

    try:
        with np.load(io.BytesIO(blob)) as archive:
            if "__meta__" not in archive.files:
                raise ValueError("archive has no __meta__ entry")
            return json.loads(bytes(archive["__meta__"].tobytes()).decode())
    # np.load reports non-archives in several ways: zip corruption,
    # a pickle-looking ValueError, or an OSError on truncated input.
    except zipfile.BadZipFile as exc:
        raise ValueError(f"not an npz model archive: {exc}") from exc
    except OSError as exc:
        raise ValueError(f"not an npz model archive: {exc}") from exc
    except ValueError as exc:
        if "not an npz model archive" in str(exc) or "__meta__" in str(exc):
            raise
        raise ValueError(f"not an npz model archive: {exc}") from exc


def sniff_backend(blob: bytes) -> str:
    """Infer the backend name a serialized model blob belongs to.

    Every ``save_bytes`` format is self-describing:

    - baselines carry ``{"kind": "HMM" | "AR" | ...}``,
    - DLGAN carries ``{"format": "repro-dlgan"}``,
    - DoppelGANger (the original, untagged format) carries
      ``schema`` + ``config`` keys and nothing else distinguishing.

    Raises :class:`ValueError` when the blob is not a recognisable
    model archive.
    """
    meta = _read_meta(blob)
    if meta.get("format") == "repro-dlgan":
        return "dlgan"
    kind = meta.get("kind")
    if kind is not None:
        backend = _KIND_TO_BACKEND.get(kind)
        if backend is None:
            raise ValueError(f"unknown baseline kind {kind!r} in archive")
        return backend
    if "schema" in meta and "config" in meta:
        return DEFAULT_BACKEND
    raise ValueError(
        "archive __meta__ matches no known backend format "
        f"(keys: {sorted(meta)})")


def load_model_bytes(blob: bytes):
    """Load a serialized model of any registered backend.

    Returns ``(model, backend)`` so callers that need to re-serialize or
    tag the model don't have to sniff twice.
    """
    backend = get_backend(sniff_backend(blob))
    return backend.load_bytes(blob), backend


def load_model_file(path):
    """:func:`load_model_bytes` over a filesystem path."""
    with open(path, "rb") as handle:
        return load_model_bytes(handle.read())
