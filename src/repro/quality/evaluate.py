"""Evaluate any released model against a dataset in one call.

``evaluate_model`` is the glue between the :class:`QualityReport` math
and the rest of the system: it accepts a fitted model of *any* registered
:class:`~repro.backends.GeneratorBackend` -- or the raw archive bytes a
registry blob / wire payload carries (the backend is sniffed from the
self-describing archive, exactly like :meth:`ModelRegistry.load`) --
generates a synthetic sample, and scores it.

``scores_summary`` condenses a report (and optionally a privacy battery)
into the compact dict the serve registry stores under a version's
``scores`` key, so ``publish --evaluate`` / job auto-publish attach the
same shape everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.quality.privacy import PrivacyBattery
from repro.quality.report import QualityReport

__all__ = ["evaluate_model", "scores_summary"]


def evaluate_model(model_or_bytes, dataset: TimeSeriesDataset, *,
                   holdout: TimeSeriesDataset | None = None,
                   n: int | None = None, seed: int = 0,
                   downstream: bool = True,
                   mlp_iterations: int = 300) -> QualityReport:
    """Score a model (object or archive bytes) against ``dataset``.

    Args:
        model_or_bytes: A fitted model of any registered backend, or the
            raw ``save_bytes`` archive (sniffed, like registry loads).
        dataset: The real data to compare against (typically the
            training set).
        holdout: Optional real data not used in training (enables the
            memorization property).
        n: Synthetic objects to generate (default: ``len(dataset)``).
        seed: Generation + downstream seed; the report is a
            deterministic function of it.
    """
    from repro.backends import backend_for_model, load_model_bytes

    if isinstance(model_or_bytes, (bytes, bytearray)):
        model, backend = load_model_bytes(bytes(model_or_bytes))
    else:
        model = model_or_bytes
        backend = backend_for_model(model)
    n = int(n) if n is not None else len(dataset)
    synthetic = backend.generate(model, n,
                                 rng=np.random.default_rng(seed))
    return QualityReport(dataset, synthetic, holdout=holdout, seed=seed,
                         downstream=downstream,
                         mlp_iterations=mlp_iterations)


def scores_summary(report: QualityReport,
                   battery: PrivacyBattery | None = None) -> dict:
    """The compact ``scores`` dict registry manifests carry per version.

    Keys: ``overall`` (float), ``properties`` (name -> score), ``seed``,
    and -- when a battery ran -- ``privacy`` (grade, worst advantage,
    epsilon).  Unknown keys added by future versions are preserved
    round-trip by the registry, so this shape can grow.
    """
    scores = {
        "overall": report.overall,
        "properties": report.property_scores(),
        "seed": report.seed,
    }
    if battery is not None:
        scores["privacy"] = {
            "grade": battery.grade,
            "worst_advantage": battery.worst_advantage,
            "worst_auc": battery.worst_auc,
            "epsilon": battery.epsilon,
        }
    return scores
