"""One-call scored quality report (ROADMAP item 3, SDMetrics style).

The paper evaluates synthetic data along many independent axes -- marginal
distributions (Tables 3, Figures 20-23), temporal correlations (Figure 1),
session lengths (Figure 7), attribute-feature joints (Table 3 / Figure 9),
diversity / mode coverage (Figures 5, 8), memorization (Figures 24-26),
and downstream-task transfer (Figures 10-11, 27).  A data holder deciding
whether a model is good enough to release needs all of them at once, on a
common scale.  :class:`QualityReport` computes every applicable property
as a score in ``[0, 1]`` (1 = indistinguishable from real), rolls them
into one overall score, and exports canonical JSON plus rendered markdown
under the same determinism discipline as
:func:`repro.observability.report.render_run_report`:

- every number is a pure function of ``(real, synthetic, holdout, seed)``
  -- no timestamps, no process ids;
- section wall times are measured but kept in the volatile
  :attr:`QualityReport.timings` side channel, excluded from
  :meth:`to_dict` / :meth:`to_json` / :meth:`render_markdown`;
- two runs of the same inputs produce byte-identical JSON and markdown,
  at any worker count and under either kernel dispatch (``REPRO_FUSED``)
  -- the property CI asserts with ``cmp``.

Score mappings (see docs/quality.md for the full definitions):

- continuous marginals: ``1 / (1 + W1 / std_real)``;
- categorical marginals: ``1 - JSD`` (JSD is base-2, already in [0, 1]);
- autocorrelation: ``max(0, 1 - ACF_MSE)``;
- lengths: ``max(0, 1 - W1 / max_length)``;
- attribute-feature joints: ``1 / (1 + macro_W1 / std_real_stat)``;
- cross-correlation: ``max(0, 1 - error / 2)``;
- diversity: ``min(real, syn) / max(real, syn)`` per feature plus the
  covered-category fraction per attribute;
- memorization (needs ``holdout``): ``min(1, NN-distance ratio)``;
- downstream transfer: clamped TSTR / TRTR score ratio.

Properties whose inputs are degenerate (e.g. a constant feature, too few
samples per category) are skipped with a note instead of poisoning the
mean with NaN.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.data.dataset import TimeSeriesDataset, padding_mask
from repro.metrics import (autocorrelation_mse, average_autocorrelation,
                           categorical_jsd, conditional_w1,
                           cross_correlation_error, diversity_score,
                           memorization_ratio, mode_coverage, wasserstein1)
from repro.observability import events as obs_events
from repro.observability import metrics as obs_metrics

__all__ = ["QualityReport", "PropertyScore", "clamp01"]

#: Bump when the exported JSON layout changes shape.
SCHEMA_VERSION = 1


def clamp01(value: float) -> float:
    """Clamp a raw metric mapping into the [0, 1] score range."""
    return float(min(max(value, 0.0), 1.0))


class PropertyScore:
    """One scored property: a name, a [0, 1] score, and its raw details."""

    def __init__(self, name: str, score: float, details: dict):
        self.name = name
        self.score = float(score)
        self.details = details

    def to_dict(self) -> dict:
        return {"name": self.name, "score": self.score,
                "details": self.details}


def _valid_values(dataset: TimeSeriesDataset, feature: str) -> np.ndarray:
    """Flattened feature values over valid (unpadded) timesteps."""
    column = dataset.feature_column(feature)
    mask = padding_mask(dataset.lengths, dataset.schema.max_length)
    return column[mask > 0]


def _normalise(rows: np.ndarray) -> np.ndarray:
    mean = rows.mean(axis=1, keepdims=True)
    std = rows.std(axis=1, keepdims=True) + 1e-9
    return (rows - mean) / std


def _sanitize(value):
    """Make a value canonical-JSON-safe: tuples -> lists, NaN -> None."""
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, (np.floating, float)):
        value = float(value)
        return None if (value != value or value in (float("inf"),
                                                    float("-inf"))) \
            else value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


class QualityReport:
    """Scored comparison of a synthetic dataset against the real one.

    Args:
        real: The dataset the model was trained on (or should match).
        synthetic: Generated data to evaluate, same schema.
        holdout: Optional real data *not* used for training; enables the
            memorization property.
        seed: Seed for the downstream predictors (and recorded in the
            export so reports are comparable).
        downstream: Compute the train-on-synthetic/test-on-real transfer
            property (the most expensive section; sweeps disable it by
            default).
        mlp_iterations: Iteration budget of the downstream MLPs.
        max_lag: ACF horizon (defaults to half the series length).
    """

    def __init__(self, real: TimeSeriesDataset,
                 synthetic: TimeSeriesDataset, *,
                 holdout: TimeSeriesDataset | None = None, seed: int = 0,
                 downstream: bool = True, mlp_iterations: int = 300,
                 max_lag: int | None = None):
        if real.schema != synthetic.schema:
            raise ValueError("real and synthetic schemas differ")
        if holdout is not None and holdout.schema != real.schema:
            raise ValueError("holdout schema differs from real")
        self.seed = int(seed)
        self.n_real = len(real)
        self.n_synthetic = len(synthetic)
        self.n_holdout = None if holdout is None else len(holdout)
        self.properties: list[PropertyScore] = []
        self.skipped: list[dict] = []
        #: Volatile wall time per section -- never part of the canonical
        #: exports (benchmarks read it; see benchmarks/bench_quality.py).
        self.timings: dict[str, float] = {}

        sections = [
            ("feature_marginals", self._feature_marginals),
            ("attribute_marginals", self._attribute_marginals),
            ("autocorrelation", self._autocorrelation),
            ("lengths", self._lengths),
            ("attribute_feature_joints", self._joints),
            ("cross_correlation", self._cross_correlation),
            ("diversity", self._diversity),
            ("memorization", self._memorization),
            ("downstream", self._downstream),
        ]
        args = {"real": real, "synthetic": synthetic, "holdout": holdout,
                "downstream": downstream,
                "mlp_iterations": int(mlp_iterations),
                "max_lag": max_lag or max(real.schema.max_length // 2, 1)}
        for name, section in sections:
            started = time.perf_counter()
            outcome = section(args)
            self.timings[name] = time.perf_counter() - started
            if outcome is None:
                continue
            if isinstance(outcome, PropertyScore):
                self.properties.append(outcome)
            else:  # a skip note
                self.skipped.append({"name": name, "reason": outcome})
        obs_metrics.counter("quality.reports").inc()
        obs_events.emit(
            "quality.report",
            {"n_real": self.n_real, "n_synthetic": self.n_synthetic,
             "overall": self.overall,
             "properties": [p.name for p in self.properties]},
            volatile={"timings": dict(self.timings)})

    # -- aggregate -----------------------------------------------------------
    @property
    def overall(self) -> float:
        """Mean of the property scores that were computable."""
        if not self.properties:
            return 0.0
        return float(np.mean([p.score for p in self.properties]))

    def property_scores(self) -> dict[str, float]:
        return {p.name: p.score for p in self.properties}

    # -- sections ------------------------------------------------------------
    def _feature_marginals(self, args):
        real, synthetic = args["real"], args["synthetic"]
        per_feature: dict[str, dict] = {}
        scores = []
        for spec in real.schema.features:
            values_r = _valid_values(real, spec.name)
            values_s = _valid_values(synthetic, spec.name)
            if spec.is_categorical:
                jsd = categorical_jsd(values_r.astype(np.int64),
                                      values_s.astype(np.int64),
                                      spec.dimension)
                score = clamp01(1.0 - jsd)
                per_feature[spec.name] = {"jsd": float(jsd),
                                          "score": score}
            else:
                w1 = wasserstein1(values_r, values_s)
                scale = float(values_r.std())
                if scale <= 0:
                    scale = max(abs(float(values_r.mean())), 1.0)
                score = clamp01(1.0 / (1.0 + w1 / scale))
                per_feature[spec.name] = {"w1": float(w1),
                                          "scale": scale, "score": score}
            scores.append(score)
        if not scores:
            return "dataset has no features"
        return PropertyScore("feature_marginals", float(np.mean(scores)),
                             {"per_feature": per_feature})

    def _attribute_marginals(self, args):
        real, synthetic = args["real"], args["synthetic"]
        per_attribute: dict[str, dict] = {}
        scores = []
        for spec in real.schema.attributes:
            values_r = real.attribute_column(spec.name)
            values_s = synthetic.attribute_column(spec.name)
            if spec.is_categorical:
                jsd = categorical_jsd(values_r.astype(np.int64),
                                      values_s.astype(np.int64),
                                      spec.dimension)
                score = clamp01(1.0 - jsd)
                per_attribute[spec.name] = {"jsd": float(jsd),
                                            "score": score}
            else:
                w1 = wasserstein1(values_r, values_s)
                scale = float(values_r.std())
                if scale <= 0:
                    scale = max(abs(float(values_r.mean())), 1.0)
                score = clamp01(1.0 / (1.0 + w1 / scale))
                per_attribute[spec.name] = {"w1": float(w1),
                                            "scale": scale,
                                            "score": score}
            scores.append(score)
        if not scores:
            return "dataset has no attributes"
        return PropertyScore("attribute_marginals", float(np.mean(scores)),
                             {"per_attribute": per_attribute})

    def _autocorrelation(self, args):
        real, synthetic = args["real"], args["synthetic"]
        per_feature: dict[str, dict] = {}
        scores = []
        for spec in real.schema.features:
            if spec.is_categorical:
                continue
            acf_r = average_autocorrelation(real.feature_column(spec.name),
                                            real.lengths,
                                            max_lag=args["max_lag"])
            acf_s = average_autocorrelation(
                synthetic.feature_column(spec.name), synthetic.lengths,
                max_lag=args["max_lag"])
            try:
                mse = autocorrelation_mse(acf_r, acf_s)
            except ValueError:
                continue
            if mse != mse:  # NaN: constant series on one side
                continue
            score = clamp01(1.0 - mse)
            per_feature[spec.name] = {"acf_mse": float(mse),
                                      "score": score}
            scores.append(score)
        if not scores:
            return "no continuous feature has a defined autocorrelation"
        return PropertyScore("autocorrelation", float(np.mean(scores)),
                             {"per_feature": per_feature})

    def _lengths(self, args):
        real, synthetic = args["real"], args["synthetic"]
        w1 = wasserstein1(real.lengths.astype(np.float64),
                          synthetic.lengths.astype(np.float64))
        score = clamp01(1.0 - w1 / real.schema.max_length)
        return PropertyScore("lengths",
                             score, {"w1": float(w1),
                                     "max_length": real.schema.max_length})

    def _joints(self, args):
        real, synthetic = args["real"], args["synthetic"]
        per_pair: dict[str, dict] = {}
        scores = []
        for attr in real.schema.attributes:
            if not attr.is_categorical:
                continue
            for feat in real.schema.features:
                if feat.is_categorical:
                    continue
                cond = conditional_w1(real, synthetic, attr.name,
                                      feat.name, statistic="sum")
                macro = cond["__macro__"]
                if macro != macro:  # NaN: no category had enough samples
                    continue
                from repro.metrics import per_object_statistic
                stat = per_object_statistic(real, feat.name, "sum")
                scale = float(stat.std())
                if scale <= 0:
                    scale = max(abs(float(stat.mean())), 1.0)
                score = clamp01(1.0 / (1.0 + macro / scale))
                per_pair[f"{attr.name}|{feat.name}"] = {
                    "macro_w1": float(macro), "scale": scale,
                    "score": score}
                scores.append(score)
        if not scores:
            return ("no categorical-attribute x continuous-feature pair "
                    "has enough samples per category")
        return PropertyScore("attribute_feature_joints",
                             float(np.mean(scores)),
                             {"per_pair": per_pair})

    def _cross_correlation(self, args):
        real, synthetic = args["real"], args["synthetic"]
        continuous = [f for f in real.schema.features
                      if not f.is_categorical]
        if len(continuous) < 2:
            return None  # single-feature datasets: nothing to correlate
        try:
            error = cross_correlation_error(real, synthetic)
        except ValueError as exc:
            return str(exc)
        score = clamp01(1.0 - error / 2.0)
        return PropertyScore("cross_correlation", score,
                             {"error": float(error)})

    def _diversity(self, args):
        real, synthetic = args["real"], args["synthetic"]
        details: dict[str, dict] = {}
        scores = []
        for spec in real.schema.features:
            if spec.is_categorical:
                continue
            div_r = diversity_score(real.feature_column(spec.name))
            div_s = diversity_score(synthetic.feature_column(spec.name))
            top = max(div_r, div_s)
            score = clamp01(min(div_r, div_s) / top) if top > 0 else 1.0
            details[f"feature:{spec.name}"] = {
                "real": float(div_r), "synthetic": float(div_s),
                "score": score}
            scores.append(score)
        for spec in real.schema.attributes:
            if not spec.is_categorical:
                continue
            covered = mode_coverage(
                real.attribute_column(spec.name).astype(np.int64),
                synthetic.attribute_column(spec.name).astype(np.int64),
                spec.dimension)
            score = clamp01(covered / spec.dimension)
            details[f"attribute:{spec.name}"] = {
                "covered": int(covered), "categories": spec.dimension,
                "score": score}
            scores.append(score)
        if not scores:
            return "no continuous features or categorical attributes"
        return PropertyScore("diversity", float(np.mean(scores)), details)

    def _memorization(self, args):
        real, synthetic, holdout = (args["real"], args["synthetic"],
                                    args["holdout"])
        if holdout is None:
            return None  # needs held-out real data; silently inapplicable
        per_feature: dict[str, dict] = {}
        scores = []
        for spec in real.schema.features:
            if spec.is_categorical:
                continue
            ratio = memorization_ratio(
                _normalise(synthetic.feature_column(spec.name)),
                _normalise(real.feature_column(spec.name)),
                _normalise(holdout.feature_column(spec.name)))
            score = clamp01(ratio)
            per_feature[spec.name] = {"ratio": float(ratio),
                                      "score": score}
            scores.append(score)
        if not scores:
            return "no continuous features to check for memorization"
        return PropertyScore("memorization", float(np.mean(scores)),
                             {"per_feature": per_feature})

    def _downstream(self, args):
        if not args["downstream"]:
            return None  # disabled by the caller (sweep default)
        real, synthetic, holdout = (args["real"], args["synthetic"],
                                    args["holdout"])
        test = holdout if holdout is not None else real
        categorical = [a for a in real.schema.attributes
                       if a.is_categorical]
        if categorical:
            return self._downstream_classification(
                real, synthetic, test, categorical[0].name,
                args["mlp_iterations"])
        continuous = [f for f in real.schema.features
                      if not f.is_categorical]
        if not continuous:
            return "no categorical attribute or continuous feature"
        return self._downstream_regression(real, synthetic, test,
                                           continuous[0].name,
                                           args["mlp_iterations"])

    def _downstream_classification(self, real, synthetic, test,
                                   attribute, mlp_iterations):
        from repro.downstream import (accuracy, default_classifiers,
                                      event_prediction_features)

        def featurize(dataset):
            return event_prediction_features(dataset, attribute=attribute)

        x_real, y_real = featurize(real)
        x_syn, y_syn = featurize(synthetic)
        x_test, y_test = featurize(test)
        if len(np.unique(y_syn)) < 2 or len(np.unique(y_real)) < 2:
            return (f"attribute {attribute!r} has fewer than two classes "
                    f"in the training data")
        tstr, trtr, per_model = [], [], {}
        for model_syn, model_real in zip(
                default_classifiers(seed=self.seed,
                                    mlp_iterations=mlp_iterations),
                default_classifiers(seed=self.seed,
                                    mlp_iterations=mlp_iterations)):
            syn_acc = accuracy(model_syn.fit(x_syn, y_syn), x_test, y_test)
            real_acc = accuracy(model_real.fit(x_real, y_real),
                                x_test, y_test)
            per_model[model_syn.name] = {"tstr": float(syn_acc),
                                         "trtr": float(real_acc)}
            tstr.append(syn_acc)
            trtr.append(real_acc)
        return self._transfer_score("classification", attribute,
                                    float(np.mean(tstr)),
                                    float(np.mean(trtr)), per_model)

    def _downstream_regression(self, real, synthetic, test, feature,
                               mlp_iterations):
        from repro.downstream import (default_regressors,
                                      forecasting_arrays, r2_score)

        history = max(real.schema.max_length // 2, 1)
        horizon = max(real.schema.max_length - history, 1)

        def featurize(dataset):
            return forecasting_arrays(dataset, feature, history, horizon)

        x_real, y_real = featurize(real)
        x_syn, y_syn = featurize(synthetic)
        x_test, y_test = featurize(test)
        tstr, trtr, per_model = [], [], {}
        for model_syn, model_real in zip(
                default_regressors(seed=self.seed,
                                   mlp_iterations=mlp_iterations),
                default_regressors(seed=self.seed,
                                   mlp_iterations=mlp_iterations)):
            model_syn.fit(x_syn, y_syn)
            model_real.fit(x_real, y_real)
            syn_r2 = r2_score(y_test, model_syn.predict(x_test))
            real_r2 = r2_score(y_test, model_real.predict(x_test))
            per_model[model_syn.name] = {"tstr": float(syn_r2),
                                         "trtr": float(real_r2)}
            tstr.append(clamp01(syn_r2))
            trtr.append(clamp01(real_r2))
        return self._transfer_score("regression", feature,
                                    float(np.mean(tstr)),
                                    float(np.mean(trtr)), per_model)

    def _transfer_score(self, task, target, tstr, trtr, per_model):
        # TRTR at or below zero means even real data can't solve the
        # task; synthetic data can't be blamed, so score 1 by convention.
        score = 1.0 if trtr <= 0 else clamp01(clamp01(tstr) / trtr)
        return PropertyScore("downstream", score,
                             {"task": task, "target": target,
                              "tstr": tstr, "trtr": trtr,
                              "per_model": per_model})

    # -- canonical exports ---------------------------------------------------
    def to_dict(self) -> dict:
        """Deterministic, JSON-safe dict (no timings, no NaN/Inf)."""
        return _sanitize({
            "schema_version": SCHEMA_VERSION,
            "seed": self.seed,
            "n_real": self.n_real,
            "n_synthetic": self.n_synthetic,
            "n_holdout": self.n_holdout,
            "overall": self.overall,
            "properties": [p.to_dict() for p in self.properties],
            "skipped": list(self.skipped),
        })

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, two-space indent, trailing \\n."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "QualityReport":
        """Rehydrate a persisted report without recomputing anything."""
        report = object.__new__(cls)
        report.seed = int(data.get("seed", 0))
        report.n_real = int(data.get("n_real", 0))
        report.n_synthetic = int(data.get("n_synthetic", 0))
        report.n_holdout = data.get("n_holdout")
        report.properties = [
            PropertyScore(p["name"], p["score"], dict(p.get("details", {})))
            for p in data.get("properties", [])]
        report.skipped = [dict(s) for s in data.get("skipped", [])]
        report.timings = {}
        return report

    def render_markdown(self, title: str = "Quality report") -> str:
        """Deterministic markdown card (same discipline as JSON)."""
        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.6g}"
            return str(value)

        lines = [f"# {title}", "",
                 f"- real objects: {self.n_real}",
                 f"- synthetic objects: {self.n_synthetic}"]
        if self.n_holdout is not None:
            lines.append(f"- holdout objects: {self.n_holdout}")
        lines += [f"- seed: {self.seed}", "",
                  f"**Overall score: {self.overall:.4f}** "
                  f"(mean of {len(self.properties)} properties)", "",
                  "| property | score |", "|---|---|"]
        lines += [f"| {p.name} | {p.score:.4f} |"
                  for p in self.properties]
        lines.append("")
        for prop in self.properties:
            lines += [f"## {prop.name} ({prop.score:.4f})", ""]
            rows = _detail_rows(prop.details)
            if rows:
                lines += ["| key | value |", "|---|---|"]
                lines += [f"| {key} | {fmt(value)} |"
                          for key, value in rows]
                lines.append("")
        if self.skipped:
            lines += ["## Skipped properties", ""]
            lines += [f"- {s['name']}: {s['reason']}"
                      for s in self.skipped]
            lines.append("")
        return "\n".join(lines)


def _detail_rows(details: dict, prefix: str = "") -> list[tuple[str, object]]:
    """Flatten a details dict into deterministic (dotted-key, value) rows."""
    rows: list[tuple[str, object]] = []
    for key in sorted(details, key=str):
        value = details[key]
        label = f"{prefix}{key}"
        if isinstance(value, dict):
            rows.extend(_detail_rows(value, prefix=f"{label}."))
        else:
            rows.append((label, value))
    return rows
