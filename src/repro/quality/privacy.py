"""Empirical privacy attack battery (§5.3.1, paper's open question #2).

The paper's release workflow ships the full generator parameters, so the
natural question -- "can an attacker tell whether a given user was in the
training data?" -- has both a black-box answer (the LOGAN distance attack
of Figure 12) and a white-box one (scoring candidates with the released
discriminator).  :func:`privacy_battery` runs every attack that applies
to the released model, summarises each as an AUC and an attacker
advantage, relates them to the DP-SGD ``(epsilon, delta)`` guarantee when
the model was trained with :mod:`repro.nn.dp`, and condenses the worst
case into a letter grade a registry manifest can carry.

Grades (on the worst attack's advantage = max(0, 2*success - 1)):

====== =================== ===========================================
grade  worst advantage     reading
====== =================== ===========================================
A      <= 0.05             attacks indistinguishable from guessing
B      <= 0.15             weak signal; release with care
C      <= 0.30             clear signal; subset/DP mitigation advised
D      <= 0.50             strong signal; do not release as-is
F      >  0.50             the model is close to a lookup table
====== =================== ===========================================

:class:`MemorizingBaseline` is the calibration target: a fake "model"
that generates by resampling its training rows verbatim -- the
worst-possible release.  Attacks should saturate on it (the CI smoke
asserts they beat the DP-trained model's attacks), which validates that
the battery can actually detect leakage at the scales we run.

All numbers are deterministic functions of ``(model, members,
non_members, seed)``: generation uses a fresh seeded rng and AUC ties
are resolved by average ranks (:func:`repro.metrics.rankdata`).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.metrics import rankdata
from repro.observability import metrics as obs_metrics
from repro.privacy.dp_analysis import DPPlan, epsilon_for_noise
from repro.privacy.membership_inference import (
    MembershipInferenceResult, discriminator_score_attack,
    membership_inference_attack)

__all__ = ["AttackResult", "PrivacyBattery", "MemorizingBaseline",
           "attack_auc", "privacy_battery", "privacy_grade", "GRADES"]

#: (threshold, grade) pairs on the worst attacker advantage, ascending.
GRADES = ((0.05, "A"), (0.15, "B"), (0.30, "C"), (0.50, "D"),
          (float("inf"), "F"))


class MemorizingBaseline:
    """The worst-possible release: "generates" verbatim training rows.

    Exposes the same ``generate(n, rng)`` surface as a real backend so it
    can stand in for a model anywhere the battery expects one.  Used to
    calibrate the attack battery (attacks must saturate here) and as the
    non-private reference in the DP comparison smoke.
    """

    def __init__(self, dataset: TimeSeriesDataset):
        if len(dataset) == 0:
            raise ValueError("cannot memorize an empty dataset")
        self.dataset = dataset

    def generate(self, n: int, rng: np.random.Generator | None = None
                 ) -> TimeSeriesDataset:
        rng = rng if rng is not None else np.random.default_rng(0)
        return self.dataset[rng.integers(0, len(self.dataset), size=n)]


def attack_auc(result: MembershipInferenceResult) -> float:
    """AUC of an attack's scores: P(member score > non-member score).

    Computed as the Mann-Whitney U statistic with average ranks for
    ties, so it is deterministic and exact for small candidate sets.
    0.5 is random guessing; 1.0 is perfect membership recovery.
    """
    members = np.asarray(result.member_scores, dtype=np.float64)
    non_members = np.asarray(result.non_member_scores, dtype=np.float64)
    if len(members) == 0 or len(non_members) == 0:
        raise ValueError("attack_auc needs scores on both sides")
    ranks = rankdata(np.concatenate([members, non_members]))
    n, m = len(members), len(non_members)
    u = ranks[:n].sum() - n * (n + 1) / 2.0
    return float(u / (n * m))


def privacy_grade(worst_advantage: float) -> str:
    """Letter grade of the battery's worst attacker advantage."""
    for threshold, grade in GRADES:
        if worst_advantage <= threshold:
            return grade
    return "F"  # unreachable: the last threshold is +inf


@dataclass
class AttackResult:
    """One attack's summary numbers."""

    name: str
    success_rate: float
    auc: float
    advantage: float

    def to_dict(self) -> dict:
        return {"name": self.name, "success_rate": self.success_rate,
                "auc": self.auc, "advantage": self.advantage}


@dataclass
class PrivacyBattery:
    """Outcome of :func:`privacy_battery`: attacks, DP context, grade."""

    attacks: list[AttackResult]
    worst_advantage: float
    worst_auc: float
    grade: str
    n_members: int
    n_non_members: int
    n_generated: int
    seed: int
    epsilon: float | None = None
    delta: float | None = None
    #: ``min(1, e^eps - 1 + delta)``: the DP bound on any attacker's
    #: advantage.  An empirical advantage above it would mean the
    #: accountant's assumptions were violated.
    advantage_bound: float | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def within_bound(self) -> bool | None:
        if self.advantage_bound is None:
            return None
        return self.worst_advantage <= self.advantage_bound

    def to_dict(self) -> dict:
        return {
            "schema_version": 1,
            "grade": self.grade,
            "worst_advantage": self.worst_advantage,
            "worst_auc": self.worst_auc,
            "attacks": [a.to_dict() for a in self.attacks],
            "n_members": self.n_members,
            "n_non_members": self.n_non_members,
            "n_generated": self.n_generated,
            "seed": self.seed,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "advantage_bound": self.advantage_bound,
            "within_bound": self.within_bound,
            "notes": list(self.notes),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render_markdown(self, title: str = "Privacy battery") -> str:
        lines = [f"# {title}", "",
                 f"**Grade: {self.grade}** "
                 f"(worst attacker advantage {self.worst_advantage:.4f}, "
                 f"worst AUC {self.worst_auc:.4f})", "",
                 f"- candidates: {self.n_members} members / "
                 f"{self.n_non_members} non-members",
                 f"- synthetic samples drawn: {self.n_generated}",
                 f"- seed: {self.seed}", ""]
        if self.epsilon is not None:
            verdict = ("consistent" if self.within_bound
                       else "**VIOLATED -- investigate**")
            lines += [f"- DP-SGD guarantee: epsilon={self.epsilon:.6g}, "
                      f"delta={self.delta:.6g}",
                      f"- DP advantage bound: "
                      f"{self.advantage_bound:.6g} ({verdict})", ""]
        lines += ["| attack | success rate | AUC | advantage |",
                  "|---|---|---|---|"]
        lines += [f"| {a.name} | {a.success_rate:.4f} | {a.auc:.4f} | "
                  f"{a.advantage:.4f} |" for a in self.attacks]
        lines.append("")
        if self.notes:
            lines += [f"- {note}" for note in self.notes]
            lines.append("")
        return "\n".join(lines)


def _flatten(dataset: TimeSeriesDataset) -> np.ndarray:
    return np.asarray(dataset.features,
                      dtype=np.float64).reshape(len(dataset), -1)


def privacy_battery(model, members: TimeSeriesDataset,
                    non_members: TimeSeriesDataset, *,
                    n_generated: int = 256, seed: int = 0,
                    train_size: int | None = None,
                    epsilon: float | None = None,
                    delta: float | None = None) -> PrivacyBattery:
    """Run every applicable membership-inference attack on ``model``.

    Args:
        model: Anything exposing ``generate(n, rng) ->
            TimeSeriesDataset``.  Models that also expose an ``encoder``
            and a ``discriminator`` (DoppelGANger) additionally face the
            white-box discriminator-score attack.
        members: Real samples that *were* in the model's training set.
        non_members: Equally many real samples that were not.
        n_generated: Synthetic samples the black-box attacker draws.
        seed: Generation seed (the battery is deterministic in it).
        train_size: Size of the full training set, for DP accounting
            (defaults to ``len(members)``, i.e. the candidates are the
            whole training set).
        epsilon / delta: Pin the DP guarantee explicitly.  When left
            ``None`` they are derived from ``model.config.dp`` via the
            RDP accountant (:mod:`repro.privacy.dp_analysis`) if the
            model was trained with DP-SGD, else stay ``None``.
    """
    if len(members) != len(non_members):
        raise ValueError("privacy_battery requires a balanced candidate "
                         f"set, got {len(members)} members vs "
                         f"{len(non_members)} non-members")
    if len(members) == 0:
        raise ValueError("privacy_battery needs at least one candidate "
                         "per side")
    notes: list[str] = []
    generated = model.generate(int(n_generated),
                               rng=np.random.default_rng(seed))
    attacks: list[AttackResult] = []

    distance = membership_inference_attack(_flatten(members),
                                           _flatten(non_members),
                                           _flatten(generated))
    attacks.append(AttackResult(
        name="distance", success_rate=float(distance.success_rate),
        auc=attack_auc(distance),
        advantage=max(0.0, 2.0 * float(distance.success_rate) - 1.0)))

    if hasattr(model, "discriminator") and hasattr(model, "encoder"):
        disc = discriminator_score_attack(model, members, non_members)
        attacks.append(AttackResult(
            name="discriminator", success_rate=float(disc.success_rate),
            auc=attack_auc(disc),
            advantage=max(0.0, 2.0 * float(disc.success_rate) - 1.0)))
    else:
        notes.append("discriminator attack skipped: the released model "
                     "exposes no discriminator")

    dp = getattr(getattr(model, "config", None), "dp", None)
    if epsilon is None and dp is not None:
        config = model.config
        size = int(train_size) if train_size is not None else len(members)
        try:
            plan = DPPlan(dataset_size=size,
                          batch_size=min(int(config.batch_size), size),
                          iterations=int(config.iterations),
                          delta=float(dp.delta))
            epsilon = float(epsilon_for_noise(
                plan, float(dp.noise_multiplier)))
            delta = float(dp.delta)
        except (ValueError, OverflowError) as exc:
            notes.append(f"DP accounting failed: {exc}")
    if epsilon is not None and delta is None:
        delta = 1e-5
    advantage_bound = None
    if epsilon is not None:
        advantage_bound = 1.0 if epsilon > 50 else \
            float(min(1.0, math.expm1(epsilon) + delta))

    worst = max(attacks, key=lambda a: a.advantage)
    battery = PrivacyBattery(
        attacks=attacks,
        worst_advantage=float(worst.advantage),
        worst_auc=float(max(a.auc for a in attacks)),
        grade=privacy_grade(float(worst.advantage)),
        n_members=len(members), n_non_members=len(non_members),
        n_generated=int(n_generated), seed=int(seed),
        epsilon=epsilon, delta=delta,
        advantage_bound=advantage_bound, notes=notes)
    obs_metrics.counter("quality.privacy_batteries").inc()
    return battery
