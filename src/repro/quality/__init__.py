"""repro.quality: one-call scored quality report + privacy attack battery.

The paper's two open questions -- "how good is the synthetic data?" and
"how private is it?" -- productized (docs/quality.md):

- :mod:`repro.quality.report` -- :class:`QualityReport`: every fidelity
  property of §5.1 as a [0, 1] score with one overall mean, exported as
  canonical JSON and deterministic markdown.
- :mod:`repro.quality.privacy` -- :func:`privacy_battery`: the §5.3.1
  membership-inference attacks (black-box distance + white-box
  discriminator), scored as AUC / attacker advantage against the DP-SGD
  ``(epsilon, delta)`` guarantee, condensed into a letter grade.
- :mod:`repro.quality.evaluate` -- :func:`evaluate_model` scores any
  registered backend's model (object or sniffed archive bytes), and
  :func:`scores_summary` shapes the result for registry manifests.

Wired through the stack: ``ModelRegistry.publish(..., scores=...)`` /
``attach_scores``, ``run_sweep(quality=...)`` ranking, the CLI
``report`` subcommand, ``publish --evaluate``, and job auto-publish.
"""

from repro.quality.evaluate import evaluate_model, scores_summary
from repro.quality.privacy import (AttackResult, MemorizingBaseline,
                                   PrivacyBattery, attack_auc,
                                   privacy_battery, privacy_grade)
from repro.quality.report import PropertyScore, QualityReport, clamp01

__all__ = [
    "QualityReport", "PropertyScore", "clamp01",
    "privacy_battery", "PrivacyBattery", "AttackResult",
    "MemorizingBaseline", "attack_auc", "privacy_grade",
    "evaluate_model", "scores_summary",
]
