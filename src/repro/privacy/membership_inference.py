"""Membership inference attack (§5.3.1, Figures 12 and 31).

Implements the black-box distance attack of Hayes et al. (LOGAN) as used by
the paper: the adversary holds candidate samples (half of which were in the
GAN's training set), draws a large synthetic sample from the released model,
and predicts "member" for the candidates closest to the synthetic cloud.
Overfitted models (trained on few samples -- "subsetting") place synthetic
mass near their training points, which is exactly the paper's finding that
subsetting *hurts* privacy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MembershipInferenceResult", "membership_inference_attack",
           "discriminator_score_attack", "attack_success_vs_training_size"]


@dataclass
class MembershipInferenceResult:
    """Outcome of one attack trial."""

    success_rate: float           # fraction of correct member/non-member calls
    member_scores: np.ndarray     # attack scores of true members
    non_member_scores: np.ndarray


def _nearest_distance(candidates: np.ndarray,
                      generated: np.ndarray) -> np.ndarray:
    cc = (candidates * candidates).sum(axis=1)[:, None]
    gg = (generated * generated).sum(axis=1)[None, :]
    d2 = np.maximum(cc + gg - 2 * candidates @ generated.T, 0.0)
    return d2.min(axis=1)


def membership_inference_attack(members: np.ndarray,
                                non_members: np.ndarray,
                                generated: np.ndarray
                                ) -> MembershipInferenceResult:
    """Run the distance attack on a balanced candidate set.

    Args:
        members: (n, d) flattened samples that *were* in the training set.
        non_members: (n, d) real samples that were *not*.
        generated: (m, d) synthetic samples from the released model.

    Returns:
        Success rate of the attacker who labels the half of the candidates
        closest to the synthetic data as members (random guessing = 0.5).
    """
    members = np.asarray(members, dtype=np.float64)
    non_members = np.asarray(non_members, dtype=np.float64)
    if len(members) != len(non_members):
        raise ValueError("attack requires a balanced candidate set")
    member_scores = -_nearest_distance(members, generated)
    non_member_scores = -_nearest_distance(non_members, generated)
    scores = np.concatenate([member_scores, non_member_scores])
    truth = np.concatenate([np.ones(len(members)),
                            np.zeros(len(non_members))])
    # Attacker knows half are members: label the top half by score.
    order = np.argsort(-scores, kind="mergesort")
    predicted = np.zeros(len(scores))
    predicted[order[: len(members)]] = 1.0
    success = float((predicted == truth).mean())
    return MembershipInferenceResult(success_rate=success,
                                     member_scores=member_scores,
                                     non_member_scores=non_member_scores)


def discriminator_score_attack(model, members, non_members
                               ) -> MembershipInferenceResult:
    """LOGAN's *white-box* attack: score candidates with the released
    model's own discriminator.

    An overfit critic assigns higher "realness" scores to its training
    points than to fresh data, so the attacker who obtains the full model
    parameters (the paper's release artifact includes them, Figure 2)
    labels the top-scoring half of the candidates as members.

    Args:
        model: A trained :class:`~repro.core.doppelganger.DoppelGANger`.
        members: Raw :class:`TimeSeriesDataset` drawn from the training set.
        non_members: Equally sized real dataset not used in training.
    """
    from repro.nn import Tensor, no_grad

    if len(members) != len(non_members):
        raise ValueError("attack requires a balanced candidate set")

    def scores(dataset) -> np.ndarray:
        encoded = model.encoder.transform(dataset)
        with no_grad():
            flat = model.discriminator.flatten(
                Tensor(encoded.attributes), Tensor(encoded.minmax),
                Tensor(encoded.features))
            return model.discriminator(flat).data[:, 0]

    member_scores = scores(members)
    non_member_scores = scores(non_members)
    pooled = np.concatenate([member_scores, non_member_scores])
    truth = np.concatenate([np.ones(len(members)),
                            np.zeros(len(non_members))])
    order = np.argsort(-pooled, kind="mergesort")
    predicted = np.zeros(len(pooled))
    predicted[order[: len(members)]] = 1.0
    return MembershipInferenceResult(
        success_rate=float((predicted == truth).mean()),
        member_scores=member_scores, non_member_scores=non_member_scores)


def attack_success_vs_training_size(train_and_release, dataset_flat: np.ndarray,
                                    sizes: list[int],
                                    rng: np.random.Generator,
                                    candidates_per_side: int | None = None,
                                    generated_count: int = 200
                                    ) -> list[tuple[int, float]]:
    """The Figure-12 sweep: attack success as training-set size varies.

    Args:
        train_and_release: callable ``(member_rows, rng) -> generated_rows``
            that trains a fresh model on the given flattened member rows and
            returns ``generated_count`` flattened synthetic rows.
        dataset_flat: (N, d) flattened real samples to draw members and
            non-members from.
        sizes: training-set sizes to sweep.
        candidates_per_side: how many members/non-members the attacker
            tests (defaults to min(size, available non-members)).

    Returns:
        List of (training_size, attack_success_rate).
    """
    results = []
    n_total = len(dataset_flat)
    for size in sizes:
        if 2 * size > n_total:
            raise ValueError(f"training size {size} too large for dataset "
                             f"of {n_total}")
        order = rng.permutation(n_total)
        members = dataset_flat[order[:size]]
        non_members = dataset_flat[order[size:2 * size]]
        generated = train_and_release(members, rng)
        k = candidates_per_side or size
        k = min(k, size)
        outcome = membership_inference_attack(members[:k], non_members[:k],
                                              generated)
        results.append((size, outcome.success_rate))
    return results
