"""Business-secret protection via attribute obfuscation (§5.3.2).

A data holder whose attribute distribution itself is sensitive (e.g. the mix
of hardware types in a cluster) retrains only the attribute generator to any
distribution of their choosing before release -- a perfect (ε = 0) guarantee
on the attribute marginal, stronger than differential privacy, as the paper
notes.
"""

from __future__ import annotations

import numpy as np

from repro.core.doppelganger import DoppelGANger

__all__ = ["sample_attribute_rows", "obfuscate_attribute"]


def sample_attribute_rows(model: DoppelGANger, n: int,
                          rng: np.random.Generator,
                          overrides: dict[str, np.ndarray] | None = None
                          ) -> np.ndarray:
    """Draw raw attribute rows from the model, optionally overriding fields.

    ``overrides`` maps attribute names to a probability vector over that
    attribute's categories; overridden columns are re-sampled independently
    from the given distribution.
    """
    generated = model.generate(n, rng=rng)
    rows = generated.attributes.copy()
    names = [f.name for f in model.schema.attributes]
    for name, probs in (overrides or {}).items():
        spec = model.schema.attribute(name)
        probs = np.asarray(probs, dtype=np.float64)
        if len(probs) != spec.dimension:
            raise ValueError(f"override for {name!r} has wrong support size")
        probs = probs / probs.sum()
        rows[:, names.index(name)] = rng.choice(spec.dimension, size=n,
                                                p=probs)
    return rows


def obfuscate_attribute(model: DoppelGANger, attribute: str,
                        target_probs: np.ndarray, rng: np.random.Generator,
                        n_target_samples: int = 500,
                        iterations: int = 200) -> list[float]:
    """Retrain the attribute generator so ``attribute`` follows
    ``target_probs`` while other attributes keep their generated joint.

    Returns the retraining loss trace.
    """
    targets = sample_attribute_rows(model, n_target_samples, rng,
                                    overrides={attribute: target_probs})
    return model.retrain_attribute_generator(targets, iterations=iterations,
                                             rng=rng)
