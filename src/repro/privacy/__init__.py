"""Privacy evaluations: membership inference, DP accounting, obfuscation."""

from repro.privacy.attribute_obfuscation import (obfuscate_attribute,
                                                 sample_attribute_rows)
from repro.privacy.dp_analysis import (DPPlan, epsilon_for_noise,
                                       noise_for_epsilon)
from repro.privacy.membership_inference import (
    MembershipInferenceResult, attack_success_vs_training_size,
    discriminator_score_attack, membership_inference_attack)

__all__ = [
    "MembershipInferenceResult", "membership_inference_attack",
    "discriminator_score_attack", "attack_success_vs_training_size",
    "DPPlan", "epsilon_for_noise", "noise_for_epsilon",
    "obfuscate_attribute", "sample_attribute_rows",
]
