"""DP training analysis helpers (§5.3.1, Figure 13).

Thin conveniences over the RDP accountant in :mod:`repro.nn.dp` for planning
the paper's ε sweep: given a training plan (dataset size, batch size,
iterations, δ) map noise multipliers to ε and back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.dp import compute_epsilon, noise_multiplier_for_epsilon

__all__ = ["DPPlan", "epsilon_for_noise", "noise_for_epsilon"]


@dataclass(frozen=True)
class DPPlan:
    """A DP-SGD training plan for accounting purposes."""

    dataset_size: int
    batch_size: int
    iterations: int
    delta: float = 1e-5

    def __post_init__(self):
        if self.batch_size > self.dataset_size:
            raise ValueError("batch_size cannot exceed dataset_size")

    @property
    def sampling_probability(self) -> float:
        return self.batch_size / self.dataset_size


def epsilon_for_noise(plan: DPPlan, noise_multiplier: float) -> float:
    """ε achieved by the plan at a given noise multiplier."""
    return compute_epsilon(plan.sampling_probability, noise_multiplier,
                           plan.iterations, plan.delta)


def noise_for_epsilon(plan: DPPlan, target_epsilon: float) -> float:
    """Noise multiplier needed to achieve a target ε under the plan."""
    return noise_multiplier_for_epsilon(plan.sampling_probability,
                                        plan.iterations, plan.delta,
                                        target_epsilon)
