"""On-disk, versioned, content-addressed model registry.

The paper's release workflow (Figure 2) ends with "the data holder ships
the parameter file"; a serving deployment needs a step between training
and the request path that makes that shipment *named*, *versioned*, and
*tamper-evident*.  The registry is a plain directory::

    ROOT/
      blobs/<sha256>.npz        # content-addressed model archives
      models/<name>.json        # per-model manifest: ordered version list

Design points:

- **Content addressing**: a blob is stored under the sha256 of its
  backend's ``save_bytes`` archive.  Republishing identical bytes is a
  no-op (the latest version is returned), and two names pointing at the
  same parameters share one blob.
- **Backend tags**: every version entry records which generator backend
  (:mod:`repro.backends`) produced the blob, so ``load`` dispatches to
  the right decoder.  Entries written before tags existed default to
  ``doppelganger``.
- **Atomic publish**: blobs and manifests are written with the same
  tmp + ``fsync`` + ``os.replace`` discipline as
  :mod:`repro.resilience.checkpoint`, so a crash mid-publish leaves
  either the previous registry state or the new one -- never a torn
  manifest or a half-written blob.
- **Verified loads**: :meth:`ModelRegistry.load` re-hashes the blob and
  refuses to deserialize on mismatch, so disk corruption surfaces as a
  clear :class:`CorruptModelBlob` ("re-publish the model") instead of a
  numpy error deep inside the archive reader -- or worse, silently wrong
  synthetic data.
- **Resolution**: ``name``, ``name@latest``, and ``name@<version>`` all
  resolve through :meth:`ModelRegistry.resolve`; unknown names/versions
  raise :class:`ModelNotFound` listing what exists.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field

from repro.observability import metrics as obs_metrics
from repro.resilience.retry import RetryPolicy, retry_call

__all__ = ["ModelRegistry", "ModelRecord", "RegistryError",
           "ModelNotFound", "CorruptModelBlob"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


class RegistryError(ValueError):
    """Base class for registry failures."""


class ModelNotFound(RegistryError):
    """The requested name or version does not exist in the registry."""


class CorruptModelBlob(RegistryError):
    """A stored blob is missing or fails its content-hash check."""


@dataclass(frozen=True, eq=True)
class ModelRecord:
    """One published (name, version) -> blob binding.

    ``backend`` is the generator-backend tag the blob decodes through;
    manifests written before backend tags existed have no entry and
    default to ``doppelganger`` (the only architecture back then).
    """

    name: str
    version: int
    sha256: str
    nbytes: int
    backend: str = "doppelganger"
    meta: dict = field(default_factory=dict, compare=False)
    #: Optional quality/privacy scores (repro.quality.scores_summary).
    #: ``None`` for versions published without evaluation; manifests
    #: written before this field existed have no entry and load as
    #: ``None`` byte-identically.
    scores: dict | None = field(default=None, compare=False)

    @property
    def spec(self) -> str:
        """The canonical ``name@version`` request string."""
        return f"{self.name}@{self.version}"


def _write_atomic(path: str, data: bytes) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class ModelRegistry:
    """A directory of published models, safe for concurrent readers.

    Typical use::

        registry = ModelRegistry("registry/")
        record = registry.publish("wwt-dg", model)     # -> wwt-dg@1
        model = registry.load("wwt-dg@latest")
    """

    def __init__(self, root: str | os.PathLike):
        self.root = os.fspath(root)
        os.makedirs(os.path.join(self.root, "blobs"), exist_ok=True)
        os.makedirs(os.path.join(self.root, "models"), exist_ok=True)

    # -- paths ---------------------------------------------------------------
    def _blob_path(self, sha256: str) -> str:
        return os.path.join(self.root, "blobs", f"{sha256}.npz")

    def _manifest_path(self, name: str) -> str:
        return os.path.join(self.root, "models", f"{name}.json")

    # -- manifests -----------------------------------------------------------

    #: Manifest reads ride out a concurrent writer on filesystems where
    #: ``os.replace`` is not atomic (network mounts) with a short,
    #: deterministic retry; a genuinely corrupt manifest still fails in
    #: well under a tenth of a second.
    _MANIFEST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01,
                                  multiplier=2.0, max_delay=0.05)

    def _read_manifest(self, name: str) -> dict | None:
        def read() -> dict | None:
            try:
                with open(self._manifest_path(name),
                          encoding="utf-8") as fh:
                    return json.load(fh)
            except FileNotFoundError:
                return None  # unpublished name: not retryable

        try:
            manifest = retry_call(read, retry_on=(OSError, ValueError),
                                  policy=self._MANIFEST_RETRY)
        except (OSError, ValueError) as exc:
            raise RegistryError(
                f"manifest for model {name!r} in registry {self.root!r} is "
                f"unreadable or corrupt ({exc}); restore it or re-publish "
                f"the model under a new name") from exc
        if manifest is None:
            return None
        if not isinstance(manifest.get("versions"), list):
            raise RegistryError(
                f"manifest for model {name!r} in registry {self.root!r} "
                f"has no version list; restore it or re-publish")
        return manifest

    def _record(self, name: str, entry: dict) -> ModelRecord:
        scores = entry.get("scores")
        return ModelRecord(name=name, version=int(entry["version"]),
                           sha256=str(entry["sha256"]),
                           nbytes=int(entry["nbytes"]),
                           backend=str(entry.get("backend",
                                                 "doppelganger")),
                           meta=dict(entry.get("meta", {})),
                           scores=(dict(scores)
                                   if isinstance(scores, dict) else None))

    # -- publishing ----------------------------------------------------------
    def publish(self, name: str, model, meta: dict | None = None,
                backend: str | None = None,
                scores: dict | None = None) -> ModelRecord:
        """Publish ``model`` (a fitted model of any registered backend,
        or raw archive bytes).

        Returns the new :class:`ModelRecord` -- or the existing latest
        record when the bytes are identical to it (idempotent
        republish).  ``meta`` is an optional JSON-serializable dict
        stored alongside the version entry.  ``backend`` pins the
        backend tag explicitly; by default it is inferred from the model
        object (or sniffed from raw bytes, falling back to the default
        tag for opaque blobs -- undecodable bytes then surface at
        :meth:`load` time, not here).  ``scores`` is an optional
        quality/privacy summary (:func:`repro.quality.scores_summary`);
        versions published without one carry no ``scores`` key at all,
        so unscored manifests stay byte-identical to pre-scores ones.
        An idempotent republish of identical bytes *with* scores
        attaches them to the existing latest version.
        """
        from repro.backends import (DEFAULT_BACKEND, backend_for_model,
                                    get_backend, sniff_backend)

        if not _NAME_RE.match(name):
            raise RegistryError(
                f"invalid model name {name!r}: use letters, digits, "
                f"'.', '_', '-' (must not start with a separator)")
        if isinstance(model, (bytes, bytearray)):
            blob = bytes(model)
            if backend is None:
                try:
                    backend = sniff_backend(blob)
                except ValueError:
                    backend = DEFAULT_BACKEND
        else:
            model_backend = (get_backend(backend) if backend is not None
                             else backend_for_model(model))
            backend = model_backend.name
            blob = model_backend.save_bytes(model)
        backend = get_backend(backend).name  # normalize aliases
        sha256 = hashlib.sha256(blob).hexdigest()

        manifest = self._read_manifest(name) or {"name": name,
                                                 "versions": []}
        versions = manifest["versions"]
        if versions and versions[-1]["sha256"] == sha256:
            if scores is not None:
                versions[-1]["scores"] = dict(scores)
                self._write_manifest(name, manifest)
                obs_metrics.counter("registry.attach_scores").inc()
            return self._record(name, versions[-1])

        blob_path = self._blob_path(sha256)
        if not os.path.exists(blob_path):
            _write_atomic(blob_path, blob)
        entry = {
            "version": (int(versions[-1]["version"]) + 1 if versions
                        else 1),
            "sha256": sha256,
            "nbytes": len(blob),
            "backend": backend,
            "meta": dict(meta or {}),
        }
        if scores is not None:
            entry["scores"] = dict(scores)
        versions.append(entry)
        self._write_manifest(name, manifest)
        obs_metrics.counter("registry.publish").inc()
        return self._record(name, entry)

    def _write_manifest(self, name: str, manifest: dict) -> None:
        _write_atomic(self._manifest_path(name),
                      (json.dumps(manifest, sort_keys=True, indent=2)
                       + "\n").encode("utf-8"))

    def attach_scores(self, spec: str | ModelRecord,
                      scores: dict) -> ModelRecord:
        """Attach (or replace) the ``scores`` dict of one version.

        Evaluation happens after publishing (the job worker publishes
        first, then scores), so the manifest rewrite is atomic and
        leaves every other key of the entry untouched -- including
        unknown keys written by newer code.
        """
        record = spec if isinstance(spec, ModelRecord) \
            else self.resolve(spec)
        manifest = self._read_manifest(record.name)
        if manifest is None:
            raise ModelNotFound(
                f"no model named {record.name!r} in registry "
                f"{self.root!r}")
        for entry in manifest["versions"]:
            if int(entry["version"]) == record.version:
                entry["scores"] = dict(scores)
                self._write_manifest(record.name, manifest)
                obs_metrics.counter("registry.attach_scores").inc()
                return self._record(record.name, entry)
        raise ModelNotFound(
            f"model {record.name!r} has no version {record.version}")

    # -- resolution and loading ----------------------------------------------
    def resolve(self, spec: str) -> ModelRecord:
        """Resolve ``name``, ``name@latest``, or ``name@<version>``."""
        name, _, version = str(spec).partition("@")
        manifest = self._read_manifest(name)
        if manifest is None or not manifest["versions"]:
            known = ", ".join(self.models()) or "<empty registry>"
            raise ModelNotFound(
                f"no model named {name!r} in registry {self.root!r} "
                f"(published models: {known})")
        versions = manifest["versions"]
        if version in ("", "latest"):
            return self._record(name, versions[-1])
        try:
            wanted = int(version)
        except ValueError:
            raise ModelNotFound(
                f"bad version {version!r} in spec {spec!r}: use an "
                f"integer or 'latest'") from None
        for entry in versions:
            if int(entry["version"]) == wanted:
                return self._record(name, entry)
        available = [int(e["version"]) for e in versions]
        raise ModelNotFound(
            f"model {name!r} has no version {wanted} "
            f"(available: {available})")

    def open_bytes(self, record: ModelRecord) -> bytes:
        """Read and hash-verify the blob behind ``record``."""
        path = self._blob_path(record.sha256)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError as exc:
            raise CorruptModelBlob(
                f"blob for {record.spec} is missing from {path!r} ({exc}); "
                f"the registry is damaged -- re-publish the model") from exc
        actual = hashlib.sha256(blob).hexdigest()
        if actual != record.sha256:
            raise CorruptModelBlob(
                f"blob for {record.spec} fails its content check "
                f"(expected sha256 {record.sha256[:12]}..., file hashes "
                f"to {actual[:12]}...); the file was corrupted on disk -- "
                f"re-publish the model")
        return blob

    def load(self, spec: str | ModelRecord):
        """Load the model behind ``spec`` (hash-verified).

        The archive is decoded through the backend named by the
        record's tag; archives published before backend tags existed
        decode as DoppelGANger.  An unregistered tag raises
        :class:`RegistryError` naming it, a tagged blob that fails to
        decode raises :class:`CorruptModelBlob`.
        """
        from repro.backends import UnknownBackend, get_backend

        record = spec if isinstance(spec, ModelRecord) \
            else self.resolve(spec)
        blob = self.open_bytes(record)
        try:
            backend = get_backend(record.backend)
        except UnknownBackend as exc:
            raise RegistryError(
                f"model {record.spec} is tagged with backend "
                f"{record.backend!r}, which is not registered in this "
                f"process ({exc}); install/register that backend or "
                f"re-publish the model from a supported one") from exc
        try:
            model = backend.load_bytes(blob)
        except (ValueError, KeyError) as exc:
            raise CorruptModelBlob(
                f"blob for {record.spec} (backend {record.backend!r}) "
                f"passes its hash check but does not decode as a model "
                f"({exc}); it was published from a bad archive -- "
                f"re-publish the model") from exc
        obs_metrics.counter("registry.load").inc()
        return model

    # -- listing -------------------------------------------------------------
    def models(self) -> list[str]:
        """Published model names, sorted."""
        names = []
        directory = os.path.join(self.root, "models")
        for entry in sorted(os.listdir(directory)):
            if entry.endswith(".json"):
                names.append(entry[:-len(".json")])
        return names

    def versions(self, name: str) -> list[ModelRecord]:
        """All records of ``name``, oldest first."""
        manifest = self._read_manifest(name)
        if manifest is None:
            raise ModelNotFound(
                f"no model named {name!r} in registry {self.root!r}")
        return [self._record(name, entry)
                for entry in manifest["versions"]]
