"""Crash-recoverable training jobs: durable records + a supervisor.

The paper's data-holder workflow -- train a GAN on private traces, then
share the generator -- assumes a long, failure-prone WGAN-GP run
completes reliably.  :mod:`repro.resilience` made a *single* training
loop survive kills and divergence; this module supervises the whole job
lifecycle so training can run as a service::

    submit -> queued -> running -> completed (auto-published)
                          |-> crashed -> queued (auto-resume, bounded)
                          |-> cancelled / failed

Three pieces:

- :class:`JobStore` -- one directory per job holding a ``job.json``
  record plus the job's dataset, checkpoint, model archive, per-attempt
  telemetry event logs, and the publish receipt.  Every record update is
  an atomic tmp + ``fsync`` + ``os.replace`` write (the same discipline
  as checkpoints and registry manifests), so a crash at any instant
  leaves either the old record or the new one -- and ``status`` keeps
  working after the supervising process itself is restarted.
- :class:`JobSupervisor` -- a background thread that launches one worker
  subprocess per runnable job (``python -m repro.serve.worker``),
  detects worker death (crash, SIGKILL, injected
  :mod:`repro.resilience.faults`), and requeues the job with bounded
  retries on a deterministic exponential backoff
  (:class:`~repro.resilience.retry.RetryPolicy`).  Because the worker
  checkpoints through :mod:`repro.resilience.checkpoint` and publishes
  through the content-addressed registry, a resumed job publishes a
  model **byte-identical** to an uninterrupted run of the same
  config/seed -- the PR 2 kill/resume guarantee, extended from one
  training loop to the full submit->publish lifecycle.
- :func:`job_progress` -- live progress (iteration, losses, sentinel
  rollbacks) streamed out of the worker's telemetry event log
  (:mod:`repro.observability.events`), merged with the durable record
  for the ``status`` protocol verb.

Supervisor restart semantics: jobs found ``running`` at startup lost
their supervisor, so they are requeued and resume from their latest
checkpoint.  An orphaned worker that somehow survived double-runs
harmlessly: checkpoints are atomic, the model archive write is atomic,
and publishing identical bytes into the content-addressed registry is an
idempotent no-op.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.observability import events as obs_events
from repro.observability import metrics as obs_metrics
from repro.resilience.retry import RetryPolicy
from repro.serve.registry import _write_atomic

__all__ = ["JobError", "UnknownJob", "JobRecord", "JobStore",
           "JobSupervisor", "job_progress", "JOB_STATES",
           "TRAIN_KEYS", "validate_train_overrides",
           "EVALUATE_KEYS", "validate_evaluate_options"]

#: The job lifecycle state machine (docs/robustness.md).
JOB_STATES = ("queued", "running", "completed", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("completed", "failed", "cancelled")

#: Training overrides a submission may carry; everything else is a
#: ``bad_request`` at the protocol boundary, not a silent ignore.
TRAIN_KEYS = {
    "iterations": int, "batch_size": int, "hidden": int,
    "sample_len": int, "seed": int, "checkpoint_every": int,
    "max_retries": int, "sentinel": bool,
}

#: Auto-evaluation options a submission may carry (``evaluate``); the
#: worker scores the published model against the job's own training
#: dataset and attaches the scores to the registry version.
EVALUATE_KEYS = {"n": int, "seed": int, "downstream": bool}

_JOB_ID_RE = re.compile(r"^job-(\d{6})$")


class JobError(RuntimeError):
    """A job-orchestration failure with a user-facing message."""


class UnknownJob(JobError):
    """No job record exists under the requested id."""


def validate_train_overrides(train: dict | None) -> dict:
    """Check a submission's training overrides; returns a clean copy.

    Raises :class:`JobError` naming the offending key so the protocol
    layer can forward it as a ``bad_request``.
    """
    clean: dict = {}
    for key, value in dict(train or {}).items():
        expected = TRAIN_KEYS.get(key)
        if expected is None:
            raise JobError(
                f"unknown training option {key!r} "
                f"(supported: {', '.join(sorted(TRAIN_KEYS))})")
        if expected is bool:
            if not isinstance(value, bool):
                raise JobError(f"training option {key!r} must be a "
                               f"boolean, got {value!r}")
        elif not isinstance(value, int) or isinstance(value, bool):
            raise JobError(f"training option {key!r} must be an "
                           f"integer, got {value!r}")
        clean[key] = value
    return clean


def validate_evaluate_options(evaluate: dict | None) -> dict:
    """Check a submission's auto-evaluation options; returns a clean copy.

    Mirrors :func:`validate_train_overrides`: an unknown or mistyped key
    is a :class:`JobError` (-> ``bad_request``), never a silent ignore.
    """
    clean: dict = {}
    for key, value in dict(evaluate or {}).items():
        expected = EVALUATE_KEYS.get(key)
        if expected is None:
            raise JobError(
                f"unknown evaluate option {key!r} "
                f"(supported: {', '.join(sorted(EVALUATE_KEYS))})")
        if expected is bool:
            if not isinstance(value, bool):
                raise JobError(f"evaluate option {key!r} must be a "
                               f"boolean, got {value!r}")
        elif not isinstance(value, int) or isinstance(value, bool):
            raise JobError(f"evaluate option {key!r} must be an "
                           f"integer, got {value!r}")
        clean[key] = value
    return clean


@dataclass
class JobRecord:
    """The durable facts of one training job (``job.json``).

    ``attempts`` counts worker launches (1 on the first run); ``result``
    is the publish receipt once the job completes.  ``faults`` is a
    test-only list of :mod:`repro.resilience.faults` specs the worker
    arms for a given attempt -- production submissions leave it empty.
    """

    job_id: str
    name: str
    backend: str
    train: dict = field(default_factory=dict)
    evaluate: dict = field(default_factory=dict)
    state: str = "queued"
    attempts: int = 0
    max_attempts: int = 3
    cancel_requested: bool = False
    error: str | None = None
    result: dict | None = None
    faults: list = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "JobRecord":
        record = json.loads(text)
        return cls(**{key: record[key] for key in
                      cls.__dataclass_fields__ if key in record})

    def public(self) -> dict:
        """The protocol/CLI view of this record."""
        return {"job_id": self.job_id, "name": self.name,
                "backend": self.backend, "state": self.state,
                "attempts": self.attempts,
                "max_attempts": self.max_attempts,
                "error": self.error, "result": self.result,
                "train": dict(self.train),
                "evaluate": dict(self.evaluate)}


class JobStore:
    """A directory of job records with atomic state transitions.

    Layout (one subdirectory per job)::

        ROOT/job-000001/
          job.json            # durable JobRecord (atomic replace)
          data.npz            # the submitted training dataset
          checkpoint.npz      # resumable training state (worker-owned)
          model.npz           # finished model archive (atomic)
          result.json         # publish receipt (atomic; completion marker)
          events-<k>.jsonl    # attempt-k telemetry event log
          worker.log          # worker stdout/stderr (debugging only)
    """

    def __init__(self, root: str | os.PathLike):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()

    # -- paths ---------------------------------------------------------------
    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.root, job_id)

    def record_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "job.json")

    def data_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "data.npz")

    def checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "checkpoint.npz")

    def model_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "model.npz")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "result.json")

    def events_path(self, job_id: str, attempt: int) -> str:
        return os.path.join(self.job_dir(job_id),
                            f"events-{int(attempt)}.jsonl")

    def log_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "worker.log")

    # -- records -------------------------------------------------------------
    def create(self, name: str, backend: str, data_bytes: bytes,
               train: dict | None = None, max_attempts: int = 3,
               faults: list | None = None,
               evaluate: dict | None = None) -> JobRecord:
        """Persist a new queued job; ids are dense and ordered."""
        with self._lock:
            job_id = f"job-{self._next_index():06d}"
            record = JobRecord(job_id=job_id, name=str(name),
                               backend=str(backend),
                               train=validate_train_overrides(train),
                               evaluate=validate_evaluate_options(evaluate),
                               max_attempts=int(max_attempts),
                               faults=list(faults or []))
            os.makedirs(self.job_dir(job_id), exist_ok=True)
            _write_atomic(self.data_path(job_id), bytes(data_bytes))
            self._write(record)
        obs_metrics.counter("jobs.submitted").inc()
        obs_events.emit("jobs.submit",
                        {"job_id": job_id, "name": record.name,
                         "backend": record.backend},
                        transient=True)
        return record

    def _next_index(self) -> int:
        highest = 0
        for entry in os.listdir(self.root):
            match = _JOB_ID_RE.match(entry)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest + 1

    def _write(self, record: JobRecord) -> None:
        _write_atomic(self.record_path(record.job_id),
                      record.to_json().encode("utf-8"))

    def update(self, record: JobRecord) -> JobRecord:
        """Atomically persist ``record`` (tmp + fsync + replace)."""
        with self._lock:
            self._write(record)
        return record

    def get(self, job_id: str) -> JobRecord:
        try:
            with open(self.record_path(job_id), encoding="utf-8") as fh:
                return JobRecord.from_json(fh.read())
        except FileNotFoundError:
            known = ", ".join(self.job_ids()) or "<none>"
            raise UnknownJob(f"no job {job_id!r} in store {self.root!r} "
                             f"(jobs: {known})") from None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise JobError(f"job record for {job_id!r} is unreadable "
                           f"({exc})") from exc

    def job_ids(self) -> list[str]:
        """All job ids in the store, in submission order."""
        return sorted(entry for entry in os.listdir(self.root)
                      if _JOB_ID_RE.match(entry))

    def list(self) -> list[JobRecord]:
        return [self.get(job_id) for job_id in self.job_ids()]

    def read_result(self, job_id: str) -> dict | None:
        """The worker's publish receipt, or None before completion."""
        try:
            with open(self.result_path(job_id), encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise JobError(f"publish receipt for {job_id!r} is "
                           f"unreadable ({exc})") from exc


# -- progress from telemetry -------------------------------------------------

def job_progress(store: JobStore, record: JobRecord) -> dict:
    """Live progress of ``record`` from its latest attempt's event log.

    The worker streams ``train.start`` / ``train.iteration`` /
    ``sentinel.rollback`` events (the PR 4 instrumentation) into a
    per-attempt JSONL file; this distils them into the ``status`` view.
    Returns zeros before the first iteration lands.
    """
    progress = {"iteration": None, "iterations": None, "d_loss": None,
                "g_loss": None, "rollbacks": 0, "resumed_from": None}
    attempt = max(record.attempts, 1)
    events = obs_events.read_events(store.events_path(record.job_id,
                                                      attempt))
    for event in events:
        if event.kind == "train.start":
            progress["iterations"] = event.payload.get("iterations")
            start = event.payload.get("start_iteration", 0)
            if start:
                progress["resumed_from"] = start
        elif event.kind == "train.iteration":
            progress["iteration"] = event.payload.get("iteration")
            progress["d_loss"] = event.payload.get("d_loss")
            progress["g_loss"] = event.payload.get("g_loss")
        elif event.kind == "sentinel.rollback":
            progress["rollbacks"] += 1
    return progress


# -- the supervisor ----------------------------------------------------------

class JobSupervisor:
    """Run queued jobs in worker subprocesses; resume the ones that die.

    Args:
        store: The durable job store (shared with ``status`` readers).
        registry_root: Registry directory workers publish into.
        max_workers: Concurrent worker subprocesses.
        retry: Backoff schedule between relaunches of a crashed job
            (deterministic; see :class:`~repro.resilience.retry.RetryPolicy`).
            A job's total launch budget is its record's ``max_attempts``.
        poll_interval: Supervisor loop cadence in seconds.
        on_publish: Optional ``on_publish(record)`` hook fired after a
            job completes, with the publish receipt already on the
            record -- the serving layer uses it to hot-load the new
            model so ``generate`` picks it up immediately.
    """

    def __init__(self, store: JobStore, registry_root: str | os.PathLike,
                 *, max_workers: int = 1,
                 retry: RetryPolicy | None = None,
                 poll_interval: float = 0.05, on_publish=None):
        self.store = store
        self.registry_root = os.fspath(registry_root)
        self.max_workers = int(max_workers)
        self.retry = retry or RetryPolicy(max_attempts=3, base_delay=0.1,
                                          multiplier=2.0, max_delay=5.0)
        self.poll_interval = float(poll_interval)
        self.on_publish = on_publish
        self._procs: dict[str, subprocess.Popen] = {}
        self._logs: dict[str, object] = {}
        self._backoff_until: dict[str, float] = {}
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "JobSupervisor":
        """Recover the store, then start the supervision thread."""
        self.recover()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-jobs-supervisor",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, kill_workers: bool = True,
             timeout: float = 10.0) -> None:
        """Stop supervising.  Running workers are killed by default --
        their jobs stay ``running`` on disk and a later supervisor's
        :meth:`recover` requeues them (resume from checkpoint)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        with self._lock:
            procs = dict(self._procs)
        for job_id, proc in procs.items():
            if kill_workers and proc.poll() is None:
                proc.kill()
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                pass
            self._close_log(job_id)

    def recover(self) -> list[str]:
        """Requeue jobs found ``running`` with no live worker.

        Called at startup: a ``running`` record whose supervisor died
        means the worker is gone (or orphaned -- harmless, see module
        docstring); the job resumes from its latest checkpoint.
        Returns the requeued job ids.
        """
        requeued = []
        for record in self.store.list():
            if record.state != "running" or record.job_id in self._procs:
                continue
            result = self.store.read_result(record.job_id)
            if result is not None:
                # The worker finished but the old supervisor never saw
                # it; complete the job rather than re-running it.
                self._complete(record, result)
                continue
            record.state = "queued"
            self.store.update(record)
            requeued.append(record.job_id)
            obs_metrics.counter("jobs.recovered").inc()
        return requeued

    def __enter__(self) -> "JobSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- public operations ---------------------------------------------------
    def submit(self, name: str, backend: str, data_bytes: bytes,
               train: dict | None = None, max_attempts: int | None = None,
               faults: list | None = None,
               evaluate: dict | None = None) -> JobRecord:
        """Persist and queue a new job; the loop picks it up."""
        budget = (self.retry.max_attempts if max_attempts is None
                  else int(max_attempts))
        return self.store.create(name, backend, data_bytes, train=train,
                                 max_attempts=max(budget, 1),
                                 faults=faults, evaluate=evaluate)

    def status(self, job_id: str) -> dict:
        """The durable record merged with live telemetry progress."""
        record = self.store.get(job_id)
        view = record.public()
        view["progress"] = job_progress(self.store, record)
        return view

    def cancel(self, job_id: str) -> dict:
        """Cancel a job; a running worker is killed, a queued job never
        starts.  Cancelling a terminal job is a no-op."""
        with self._lock:
            record = self.store.get(job_id)
            if record.state in TERMINAL_STATES:
                return record.public()
            record.cancel_requested = True
            if record.state == "queued":
                record.state = "cancelled"
                self.store.update(record)
                self._backoff_until.pop(job_id, None)
            else:
                self.store.update(record)
                proc = self._procs.get(job_id)
                if proc is not None and proc.poll() is None:
                    proc.kill()
            obs_metrics.counter("jobs.cancelled").inc()
            return record.public()

    def jobs(self) -> list[dict]:
        """One public row per job, in submission order."""
        return [record.public() for record in self.store.list()]

    # -- the loop ------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.tick()
            except Exception:
                # The supervisor must outlive any single bad record;
                # errors surface on the affected job, not the loop.
                pass
            self._stop.wait(self.poll_interval)

    def tick(self, now: float | None = None) -> None:
        """One supervision round: reap exits, launch runnable jobs.

        Exposed (with an injectable clock) so tests can drive the state
        machine deterministically without the background thread.
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            self._reap()
            self._launch_runnable(now)

    def _reap(self) -> None:
        for job_id, proc in list(self._procs.items()):
            returncode = proc.poll()
            if returncode is None:
                continue
            del self._procs[job_id]
            self._close_log(job_id)
            record = self.store.get(job_id)
            result = self.store.read_result(job_id)
            if result is not None:
                self._complete(record, result)
            elif record.cancel_requested:
                record.state = "cancelled"
                self.store.update(record)
            elif record.attempts >= record.max_attempts:
                record.state = "failed"
                record.error = (
                    f"worker exited with code {returncode} on attempt "
                    f"{record.attempts}/{record.max_attempts}; retry "
                    f"budget exhausted")
                self.store.update(record)
                obs_metrics.counter("jobs.failed").inc()
            else:
                # Crash -> requeue with deterministic backoff; the next
                # attempt resumes from the latest checkpoint.
                record.state = "queued"
                record.error = (f"worker exited with code {returncode} "
                                f"on attempt {record.attempts}; "
                                f"resuming")
                self.store.update(record)
                self._backoff_until[job_id] = (
                    time.monotonic()
                    + self.retry.delay(record.attempts))
                obs_metrics.counter("jobs.resumes").inc()

    def _launch_runnable(self, now: float) -> None:
        if len(self._procs) >= self.max_workers:
            return
        for record in self.store.list():
            if len(self._procs) >= self.max_workers:
                return
            if record.state != "queued" or record.job_id in self._procs:
                continue
            deadline = self._backoff_until.get(record.job_id)
            if deadline is not None and now < deadline:
                continue
            self._backoff_until.pop(record.job_id, None)
            self._launch(record)

    def _launch(self, record: JobRecord) -> None:
        record.attempts += 1
        record.state = "running"
        self.store.update(record)
        log = open(self.store.log_path(record.job_id), "ab")
        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__import__("repro").__file__)))
        env["PYTHONPATH"] = package_root + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.worker",
             "--job-dir", self.store.job_dir(record.job_id),
             "--registry", self.registry_root],
            stdout=log, stderr=subprocess.STDOUT, env=env)
        self._procs[record.job_id] = proc
        self._logs[record.job_id] = log
        obs_metrics.counter("jobs.launched").inc()

    def _complete(self, record: JobRecord, result: dict) -> None:
        record.state = "completed"
        record.result = dict(result)
        record.error = None
        self.store.update(record)
        obs_metrics.counter("jobs.completed").inc()
        if self.on_publish is not None:
            try:
                self.on_publish(record)
            except Exception:
                # Serving hot-load is best-effort; the registry holds
                # the published model either way.
                pass

    def _close_log(self, job_id: str) -> None:
        log = self._logs.pop(job_id, None)
        if log is not None:
            try:
                log.close()
            except OSError:
                pass

    # -- introspection -------------------------------------------------------
    def running(self) -> list[str]:
        """Job ids with a live worker right now."""
        with self._lock:
            return sorted(job_id for job_id, proc in self._procs.items()
                          if proc.poll() is None)
