"""Length-prefixed JSON + npz framing for the serving loopback protocol.

One frame carries a JSON *header* and an optional binary *payload*::

    +------+---------+----------------+----------------+--------+---------+
    | RSRV | version | header length  | payload length | header | payload |
    | 4 B  |   1 B   |  4 B big-end.  |  8 B big-end.  | JSON   |  bytes  |
    +------+---------+----------------+----------------+--------+---------+

Headers are small structured facts (op, model spec, n, seed, status,
error code); payloads are npz archives -- a generated
:class:`~repro.data.dataset.TimeSeriesDataset` serialized with its own
``save``/``load`` format, so a consumer needs nothing serving-specific to
read what it receives.  Both directions use the same framing.

Malformed input (bad magic, oversized lengths, truncation, non-JSON
header) raises :class:`ProtocolError`; servers drop the connection,
clients surface the error.  Error *responses* are well-formed frames with
``status="error"`` and a machine-readable ``code``:

- ``busy`` -- admission queue full; the request was shed (backpressure).
- ``shutting_down`` -- server is draining; retry against a new server.
- ``model_not_found`` -- unknown model spec.
- ``job_not_found`` -- unknown job id (``status``/``cancel``).
- ``jobs_disabled`` -- the server was started without a job store.
- ``rate_limited`` -- the client's token bucket is empty; the fleet
  router shed the request before routing it (quota, not capacity).
- ``bad_request`` -- malformed op/arguments.
- ``internal`` -- unexpected server-side failure.

Two additional codes never cross the wire; clients synthesize them when
the *transport* fails so callers always see a :class:`ServeError` with a
machine-readable code instead of a raw socket exception:

- ``timeout`` -- connect or read exceeded the client's timeout.
- ``connection`` -- the connection was refused, reset, or closed
  mid-request.
"""

from __future__ import annotations

import io
import json
import struct

from repro.data.dataset import TimeSeriesDataset

__all__ = ["MAGIC", "VERSION", "MAX_HEADER_BYTES", "MAX_PAYLOAD_BYTES",
           "ProtocolError", "write_message", "read_message",
           "dataset_to_bytes", "dataset_from_bytes",
           "ERR_BUSY", "ERR_SHUTTING_DOWN", "ERR_MODEL_NOT_FOUND",
           "ERR_BAD_REQUEST", "ERR_INTERNAL", "ERR_JOB_NOT_FOUND",
           "ERR_JOBS_DISABLED", "ERR_RATE_LIMITED", "ERR_TIMEOUT",
           "ERR_CONNECTION"]

MAGIC = b"RSRV"
VERSION = 1
_PREFIX = struct.Struct(">4sBIQ")

MAX_HEADER_BYTES = 1 << 20  # 1 MiB of JSON is already absurd
MAX_PAYLOAD_BYTES = 1 << 33  # 8 GiB hard cap per frame

ERR_BUSY = "busy"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_MODEL_NOT_FOUND = "model_not_found"
ERR_JOB_NOT_FOUND = "job_not_found"
ERR_JOBS_DISABLED = "jobs_disabled"
ERR_RATE_LIMITED = "rate_limited"
ERR_BAD_REQUEST = "bad_request"
ERR_INTERNAL = "internal"

# Client-side transport codes (never sent by a server).
ERR_TIMEOUT = "timeout"
ERR_CONNECTION = "connection"


class ProtocolError(ValueError):
    """The byte stream does not follow the framing above."""


def write_message(wfile, header: dict, payload: bytes = b"") -> None:
    """Frame and write one message to a binary file-like object."""
    head = json.dumps(header, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header of {len(head)} bytes exceeds the "
                            f"{MAX_HEADER_BYTES}-byte cap")
    wfile.write(_PREFIX.pack(MAGIC, VERSION, len(head), len(payload)))
    wfile.write(head)
    if payload:
        wfile.write(payload)
    wfile.flush()


def _read_exact(rfile, n: int, what: str) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = rfile.read(remaining)
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame while reading {what} "
                f"({n - remaining}/{n} bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(rfile) -> tuple[dict, bytes]:
    """Read one frame; returns ``(header, payload)``.

    Raises :class:`EOFError` on a clean end-of-stream before any byte of
    a frame, and :class:`ProtocolError` on anything malformed.
    """
    first = rfile.read(1)
    if not first:
        raise EOFError("end of stream")
    prefix = first + _read_exact(rfile, _PREFIX.size - 1, "frame prefix")
    magic, version, head_len, payload_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} "
                            f"(expected {MAGIC!r})")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version} "
                            f"(this side speaks {VERSION})")
    if head_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"declared header of {head_len} bytes exceeds "
                            f"the {MAX_HEADER_BYTES}-byte cap")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"declared payload of {payload_len} bytes "
                            f"exceeds the {MAX_PAYLOAD_BYTES}-byte cap")
    head = _read_exact(rfile, head_len, "header")
    try:
        header = json.loads(head.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"header is not valid JSON ({exc})") from exc
    if not isinstance(header, dict):
        raise ProtocolError("header must be a JSON object")
    payload = _read_exact(rfile, payload_len, "payload") \
        if payload_len else b""
    return header, payload


# -- payload codecs ----------------------------------------------------------

def dataset_to_bytes(dataset: TimeSeriesDataset) -> bytes:
    """Serialize a dataset to npz bytes (the generate-response payload)."""
    buffer = io.BytesIO()
    dataset.save(buffer)
    return buffer.getvalue()


def dataset_from_bytes(blob: bytes) -> TimeSeriesDataset:
    """Inverse of :func:`dataset_to_bytes`."""
    try:
        return TimeSeriesDataset.load(io.BytesIO(blob))
    except (OSError, EOFError, ValueError, KeyError) as exc:
        raise ProtocolError(
            f"response payload does not decode as a dataset "
            f"({exc})") from exc
