"""The generation service and its threaded loopback-socket server.

Two layers, deliberately separable:

- :class:`GenerationService` is transport-independent: a mapping of model
  specs to :class:`~repro.serve.batcher.MicroBatcher` instances plus a
  ``handle(header, payload) -> (header, payload)`` request dispatcher.
  Tests and the in-process client
  (:class:`repro.serve.client.InProcessClient`) call it directly; the
  socket server is a thin framing shim over it.  With a
  :class:`~repro.serve.jobs.JobSupervisor` attached the service also
  speaks the training-job verbs (``submit`` / ``status`` / ``cancel`` /
  ``jobs``) and hot-loads each auto-published model the moment its job
  completes, so ``generate`` picks it up without a restart.
- :class:`Server` owns a listening socket, an accept thread, and one
  handler thread per connection.  Handler threads block on their
  request's Future while the batcher worker executes -- concurrency is
  bounded by the batcher's admission queue, so a flooded server *sheds*
  (``busy`` responses) instead of accumulating unbounded work.

Shutdown contract (``Server.shutdown(drain=True)``): stop accepting, stop
admitting, complete every already-admitted request and write its
response, then close connections and the listening socket.  Requests that
arrive during the drain get a well-formed ``shutting_down`` error.
"""

from __future__ import annotations

import socket
import threading

from repro.observability import metrics as obs_metrics
from repro.serve import protocol
from repro.serve.batcher import BatcherClosed, MicroBatcher, QueueFull
from repro.serve.registry import (ModelNotFound, ModelRegistry,
                                  RegistryError)

__all__ = ["GenerationService", "Server", "DEFAULT_MAX_REQUEST_N"]

# A single request may ask for at most this many objects; bigger asks get
# a bad_request telling the caller to split (keeps one client from
# monopolising the admission queue).
DEFAULT_MAX_REQUEST_N = 1 << 20


class GenerationService:
    """Named models behind micro-batchers, plus request dispatch.

    Args:
        models: Mapping of spec -> trained DoppelGANger.  Specs are the
            strings clients send (conventionally ``name@version``).
        aliases: Optional extra spec -> canonical-spec mapping (e.g.
            ``{"wwt": "wwt@3", "wwt@latest": "wwt@3"}``).
        max_batch_rows / max_wait_ms / max_queue_rows: Batcher knobs,
            shared by every model (see :class:`MicroBatcher`).
        max_request_n: Per-request object cap (``bad_request`` beyond).
    """

    def __init__(self, models: dict, aliases: dict | None = None, *,
                 max_batch_rows: int | None = None,
                 max_wait_ms: float = 2.0, max_queue_rows: int = 4096,
                 max_request_n: int = DEFAULT_MAX_REQUEST_N,
                 registry: ModelRegistry | None = None):
        self._batcher_kwargs = dict(max_batch_rows=max_batch_rows,
                                    max_wait_ms=max_wait_ms,
                                    max_queue_rows=max_queue_rows)
        self.batchers: dict[str, MicroBatcher] = {
            spec: MicroBatcher(model, name=spec, **self._batcher_kwargs)
            for spec, model in models.items()
        }
        self.aliases = dict(aliases or {})
        self.max_request_n = int(max_request_n)
        self.registry = registry
        self.jobs = None  # a JobSupervisor, via attach_jobs()
        self._newest: dict[str, int] = {}
        for spec in self.batchers:
            name, _, version = spec.partition("@")
            if version.isdigit():
                self._newest[name] = max(self._newest.get(name, 0),
                                         int(version))
        self._models_lock = threading.Lock()
        self._closed = False

    @classmethod
    def from_registry(cls, registry: ModelRegistry,
                      specs: list[str] | None = None,
                      allow_empty: bool = False,
                      **kwargs) -> "GenerationService":
        """Load models out of a registry and alias bare/latest specs.

        ``specs=None`` serves the latest version of every published
        model.  Each resolved model is served under its canonical
        ``name@version`` spec; ``name`` and ``name@latest`` alias to the
        newest resolved version of that name.  ``allow_empty`` permits
        starting with no published models (a jobs-only server whose
        first models arrive by training).
        """
        specs = list(specs) if specs else registry.models()
        if not specs and not allow_empty:
            raise ModelNotFound(
                f"registry {registry.root!r} has no published models")
        records = [registry.resolve(spec) for spec in specs]
        models: dict = {}
        newest: dict[str, int] = {}
        for record in records:
            if record.spec not in models:
                models[record.spec] = registry.load(record)
            newest[record.name] = max(newest.get(record.name, 0),
                                      record.version)
        aliases = {}
        for name, version in newest.items():
            aliases[name] = f"{name}@{version}"
            aliases[f"{name}@latest"] = f"{name}@{version}"
        return cls(models, aliases, registry=registry, **kwargs)

    # -- dynamic model management -------------------------------------------
    def add_model(self, spec: str, model) -> None:
        """Start serving ``model`` under canonical ``name@version``.

        Newer versions steal the bare-``name`` and ``name@latest``
        aliases; older ones are served under their pinned spec only.
        Adding an already-served spec is a no-op (content addressing
        means the model bytes are the same).
        """
        name, _, version = str(spec).partition("@")
        if not version.isdigit():
            raise ValueError(f"add_model needs a canonical name@version "
                             f"spec, got {spec!r}")
        with self._models_lock:
            if self._closed or spec in self.batchers:
                return
            self.batchers[spec] = MicroBatcher(model, name=spec,
                                               **self._batcher_kwargs)
            if int(version) >= self._newest.get(name, 0):
                self._newest[name] = int(version)
                self.aliases[name] = spec
                self.aliases[f"{name}@latest"] = spec
        obs_metrics.counter("serve.models_loaded").inc()

    def attach_jobs(self, supervisor) -> None:
        """Enable the job verbs and hot-load models the jobs publish."""
        self.jobs = supervisor
        supervisor.on_publish = self._on_job_publish

    def _on_job_publish(self, record) -> None:
        """Supervisor hook: load the freshly published model and serve
        it immediately (``record.result`` is the publish receipt)."""
        if self.registry is None or not record.result:
            return
        spec = record.result["spec"]
        self.add_model(spec, self.registry.load(spec))

    # -- dispatch ------------------------------------------------------------
    def _error(self, code: str, message: str) -> tuple[dict, bytes]:
        obs_metrics.counter(f"serve.errors.{code}").inc()
        return {"status": "error", "code": code, "error": message}, b""

    def lookup(self, spec) -> MicroBatcher:
        """The batcher serving ``spec`` (aliases resolved)."""
        spec = str(spec)
        batcher = self.batchers.get(self.aliases.get(spec, spec))
        if batcher is None:
            raise ModelNotFound(
                f"no model {spec!r} is being served "
                f"(serving: {sorted(self.batchers)})")
        return batcher

    def cache_stats(self) -> dict | None:
        """Model-cache counters for the ``stats`` op.

        The base service holds every model pinned, so there is no cache;
        :class:`repro.serve.fleet.ReplicaService` overrides this with
        its LRU hit/miss/eviction counts.
        """
        return None

    def describe(self) -> list[dict]:
        """One row per served model, for the ``models`` op."""
        rows = []
        for spec in sorted(self.batchers):
            batcher = self.batchers[spec]
            rows.append({"spec": spec,
                         "batch_rows": batcher.max_batch_rows,
                         "deterministic": batcher.deterministic,
                         "aliases": sorted(a for a, c in
                                           self.aliases.items()
                                           if c == spec)})
        return rows

    def handle(self, header: dict, payload: bytes = b""
               ) -> tuple[dict, bytes]:
        """Serve one request; returns ``(header, payload)``.

        Never raises for request-level problems -- they become
        well-formed error responses.  This is the single entry point for
        every transport (sockets, in-process).  ``payload`` carries the
        training dataset of a ``submit``; every other op ignores it.
        """
        op = header.get("op")
        if op == "ping":
            return {"status": "ok"}, b""
        if op == "models":
            return {"status": "ok", "models": self.describe()}, b""
        if op == "stats":
            info = {"status": "ok", "models": self.describe()}
            cache = self.cache_stats()
            if cache is not None:
                info["cache"] = cache
            if obs_metrics.enabled():
                info["metrics"] = obs_metrics.current().dump()
            return info, b""
        if op in ("submit", "status", "cancel", "jobs"):
            return self._handle_job_op(op, header, payload)
        if op != "generate":
            return self._error(protocol.ERR_BAD_REQUEST,
                               f"unknown op {op!r} (expected ping, "
                               f"models, generate, stats, submit, "
                               f"status, cancel, or jobs)")

        spec = header.get("model")
        n, seed = header.get("n"), header.get("seed", 0)
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            return self._error(protocol.ERR_BAD_REQUEST,
                               f"n must be a non-negative integer, "
                               f"got {n!r}")
        if n > self.max_request_n:
            return self._error(protocol.ERR_BAD_REQUEST,
                               f"n={n} exceeds the per-request cap of "
                               f"{self.max_request_n}; split the request")
        if not isinstance(seed, int) or isinstance(seed, bool):
            return self._error(protocol.ERR_BAD_REQUEST,
                               f"seed must be an integer, got {seed!r}")
        # lookup + submit retries: a lazily-loading service (the fleet's
        # ReplicaService) may evict-and-close the looked-up batcher from
        # another thread between lookup and submit; re-looking-up
        # reloads the model.  The base service never evicts, so the
        # loop runs once.
        future = None
        for _ in range(3):
            try:
                batcher = self.lookup(spec)
            except ModelNotFound as exc:
                return self._error(protocol.ERR_MODEL_NOT_FOUND, str(exc))
            except RegistryError as exc:
                return self._error(protocol.ERR_INTERNAL,
                                   f"model load failed: {exc}")
            try:
                future = batcher.submit(n, seed)
                break
            except QueueFull as exc:
                return self._error(protocol.ERR_BUSY, str(exc))
            except BatcherClosed as exc:
                if self._closed:
                    return self._error(protocol.ERR_SHUTTING_DOWN,
                                       str(exc))
        if future is None:
            return self._error(protocol.ERR_INTERNAL,
                               f"model {spec!r} kept closing during "
                               f"admission (eviction thrash)")
        try:
            dataset = future.result()
        except BatcherClosed as exc:
            return self._error(protocol.ERR_SHUTTING_DOWN, str(exc))
        except Exception as exc:
            return self._error(protocol.ERR_INTERNAL,
                               f"generation failed: {exc}")
        payload = protocol.dataset_to_bytes(dataset)
        return {"status": "ok", "n": n, "seed": seed,
                "model": self.aliases.get(str(spec), str(spec)),
                "payload_bytes": len(payload)}, payload

    # -- job verbs -----------------------------------------------------------
    def _handle_job_op(self, op: str, header: dict, payload: bytes
                       ) -> tuple[dict, bytes]:
        from repro.serve.jobs import (JobError, UnknownJob,
                                      validate_train_overrides)

        if self.jobs is None:
            return self._error(
                protocol.ERR_JOBS_DISABLED,
                f"this server has no job orchestration (op {op!r}); "
                f"start it with a job store (--jobs-dir)")
        if op == "jobs":
            return {"status": "ok", "jobs": self.jobs.jobs()}, b""
        if op == "submit":
            return self._handle_submit(header, payload,
                                       validate_train_overrides,
                                       JobError)
        job_id = header.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            return self._error(protocol.ERR_BAD_REQUEST,
                               f"op {op!r} needs a job_id string, "
                               f"got {job_id!r}")
        try:
            if op == "status":
                return {"status": "ok",
                        "job": self.jobs.status(job_id)}, b""
            return {"status": "ok", "job": self.jobs.cancel(job_id)}, b""
        except UnknownJob as exc:
            return self._error(protocol.ERR_JOB_NOT_FOUND, str(exc))
        except JobError as exc:
            return self._error(protocol.ERR_INTERNAL, str(exc))

    def _handle_submit(self, header: dict, payload: bytes,
                       validate_train_overrides, job_error
                       ) -> tuple[dict, bytes]:
        from repro.backends import UnknownBackend, get_backend
        from repro.serve.jobs import validate_evaluate_options
        from repro.serve.registry import _NAME_RE

        name = header.get("name")
        if not isinstance(name, str) or not _NAME_RE.match(name or ""):
            return self._error(protocol.ERR_BAD_REQUEST,
                               f"submit needs a valid model name "
                               f"(letters, digits, '.', '_', '-'), "
                               f"got {name!r}")
        backend_name = header.get("backend", "doppelganger")
        try:
            backend = get_backend(backend_name)
        except UnknownBackend as exc:
            return self._error(protocol.ERR_BAD_REQUEST, str(exc))
        train = header.get("train") or {}
        if not isinstance(train, dict):
            return self._error(protocol.ERR_BAD_REQUEST,
                               f"train must be a JSON object, "
                               f"got {train!r}")
        try:
            train = validate_train_overrides(train)
        except job_error as exc:
            return self._error(protocol.ERR_BAD_REQUEST, str(exc))
        if not payload:
            return self._error(protocol.ERR_BAD_REQUEST,
                               "submit needs the training dataset as "
                               "the request payload (npz bytes)")
        try:
            protocol.dataset_from_bytes(payload)
        except protocol.ProtocolError as exc:
            return self._error(protocol.ERR_BAD_REQUEST,
                               f"submit payload is not a dataset "
                               f"archive: {exc}")
        evaluate = header.get("evaluate") or {}
        if not isinstance(evaluate, dict):
            return self._error(protocol.ERR_BAD_REQUEST,
                               f"evaluate must be a JSON object, "
                               f"got {evaluate!r}")
        try:
            evaluate = validate_evaluate_options(evaluate)
        except job_error as exc:
            return self._error(protocol.ERR_BAD_REQUEST, str(exc))
        faults_spec = header.get("faults") or []
        if not isinstance(faults_spec, list):
            return self._error(protocol.ERR_BAD_REQUEST,
                               "faults must be a list of fault specs")
        max_attempts = header.get("max_attempts")
        if max_attempts is not None and (
                not isinstance(max_attempts, int)
                or isinstance(max_attempts, bool) or max_attempts < 1):
            return self._error(protocol.ERR_BAD_REQUEST,
                               f"max_attempts must be a positive "
                               f"integer, got {max_attempts!r}")
        record = self.jobs.submit(name, backend.name, payload,
                                  train=train, max_attempts=max_attempts,
                                  faults=faults_spec, evaluate=evaluate)
        return {"status": "ok", "job": record.public()}, b""

    # -- lifecycle -----------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop admission on every batcher; with ``drain``, finish all."""
        with self._models_lock:
            if self._closed:
                return
            self._closed = True  # also blocks late add_model calls
            batchers = list(self.batchers.values())
        for batcher in batchers:
            batcher.close(drain=drain)


class Server:
    """Threaded loopback-socket front end for a :class:`GenerationService`.

    ``port=0`` binds an ephemeral port; the bound address is available as
    :attr:`address` immediately after construction.
    """

    def __init__(self, service: GenerationService,
                 host: str = "127.0.0.1", port: int = 0,
                 backlog: int = 64):
        self.service = service
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._closing = False
        self._conn_lock = threading.Lock()
        self._conns: dict[int, socket.socket] = {}
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept",
            daemon=True)
        self._accept_thread.start()

    # -- connection handling -------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:  # listener closed -> shutdown
                return
            with self._conn_lock:
                if self._closing:
                    conn.close()
                    continue
                self._conns[conn.fileno()] = conn
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    name=f"repro-serve-conn-{conn.fileno()}", daemon=True)
                self._threads.append(thread)
            obs_metrics.counter("serve.connections").inc()
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        key = conn.fileno()
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        try:
            while True:
                try:
                    header, request_payload = protocol.read_message(rfile)
                except EOFError:
                    return
                except (protocol.ProtocolError, OSError):
                    return  # drop malformed/broken connections
                if self._closing:
                    response, payload = (
                        {"status": "error",
                         "code": protocol.ERR_SHUTTING_DOWN,
                         "error": "server is draining"}, b"")
                else:
                    response, payload = self.service.handle(
                        header, request_payload)
                try:
                    protocol.write_message(wfile, response, payload)
                except (OSError, ValueError):
                    return  # peer went away mid-response
        finally:
            for handle in (rfile, wfile):
                try:
                    handle.close()
                except OSError:
                    pass
            try:
                conn.close()
            except OSError:
                pass
            with self._conn_lock:
                self._conns.pop(key, None)

    # -- lifecycle -----------------------------------------------------------
    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful stop: drain admitted work, then close the socket.

        Order matters: (1) refuse new connections, (2) mark draining so
        freshly read requests get ``shutting_down``, (3) close the
        service -- with ``drain=True`` this blocks until every admitted
        request has completed and its handler can write the response,
        (4) nudge idle connections closed and join handler threads.
        """
        with self._conn_lock:
            if self._closing:
                return
            self._closing = True
        # close() alone does not wake a thread blocked in accept() on
        # Linux; shutting the socket down first makes accept() return.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._listener.close()
        self._accept_thread.join(timeout=timeout)
        self.service.close(drain=drain)
        # Handlers blocked in read_message on idle connections never see
        # the flag; shutting down the read side unblocks them.  Handlers
        # mid-response finish their write first (SHUT_RD leaves the write
        # side open).
        with self._conn_lock:
            conns = list(self._conns.values())
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RD)
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=timeout)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
