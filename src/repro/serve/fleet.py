"""Multi-replica serving fleet: a router over N replica worker processes.

One :class:`Fleet` owns N replica processes, each running a full
:class:`~repro.serve.server.Server` over a :class:`ReplicaService` -- a
:class:`~repro.serve.server.GenerationService` that loads registry
models *lazily* through a per-worker LRU :class:`ModelCache`, so one
fleet serves every ``name@version`` in the registry without pinning them
all in every worker's memory.  The router itself is transport-agnostic:
it exposes the same ``handle(header, payload)`` / ``close(drain)``
surface as ``GenerationService``, so the existing :class:`Server` is its
socket front end unchanged (``Server(Fleet(...))``) and the existing
:class:`~repro.serve.client.ServeClient` talks to a fleet without
knowing it.

Determinism contract (the point of the whole design):

- Generation is a pure function of ``(model bytes, n, seed)`` -- the
  registry content-addresses the bytes and the batcher coalesces at
  block level without repacking rows -- so **any** replica returns the
  same bytes for the same request.
- Routing is therefore free to be a pure function of the request:
  ``crc32(f"{spec}|{n}|{seed}") % replicas`` picks the preferred
  replica; an unhealthy replica shifts the request to the next healthy
  index.  Health changes where a request *runs*, never what it
  *returns*, so fleet output is byte-identical to a single
  ``GenerationService`` for every replica count and under any kill
  schedule.

Failure handling: the router marks a replica *suspect* on any transport
failure and retries the in-flight request on the next healthy replica
before the client sees anything; a background supervisor probes suspect
replicas, reaps dead ones, and respawns them on a bounded deterministic
backoff (:class:`~repro.resilience.retry.RetryPolicy`), the same
machinery as :mod:`repro.serve.jobs`.  Per-client token-bucket quotas
(``rate_limited`` error code) shed abusive clients before any routing
work happens.  ``reload`` re-resolves ``name`` / ``name@latest``
aliases against the registry -- a zero-downtime ``@latest`` flip,
because replicas lazy-load the newly-pinned version on first use and
LRU-evict the old one.
"""

from __future__ import annotations

import collections
import json
import os
import shutil
import signal
import tempfile
import threading
import time
import zlib

from repro.observability import events as obs_events
from repro.observability import metrics as obs_metrics
from repro.parallel.pool import mp_context
from repro.resilience.retry import RetryPolicy
from repro.serve import protocol
from repro.serve.batcher import MicroBatcher
from repro.serve.client import ServeClient, ServeError
from repro.serve.registry import (ModelNotFound, ModelRegistry,
                                  _write_atomic)
from repro.serve.server import (DEFAULT_MAX_REQUEST_N, GenerationService,
                                Server)

__all__ = ["TokenBucket", "ClientQuotas", "ModelCache", "ReplicaService",
           "ReplicaHandle", "Fleet", "route_index", "replica_main"]

#: Transport-level client codes and the replica's own drain code are the
#: retryable outcomes: the request never produced (or can no longer
#: produce) a response on that replica, so replaying it elsewhere is
#: safe and invisible to the client.
_RETRYABLE_CODES = frozenset({protocol.ERR_TIMEOUT,
                              protocol.ERR_CONNECTION,
                              protocol.ERR_SHUTTING_DOWN})


def route_index(spec: str, n: int, seed: int, replicas: int) -> int:
    """The preferred replica for a generate request.

    A pure function of the request and the replica count -- ``crc32``
    rather than ``hash()`` because Python salts string hashes per
    process, which would make routing differ between router restarts.
    """
    key = f"{spec}|{int(n)}|{int(seed)}".encode("utf-8")
    return zlib.crc32(key) % int(replicas)


# -- client quotas -----------------------------------------------------------

class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` deep.

    ``clock`` is injectable (monotonic seconds) so quota behaviour is
    testable without wall-clock sleeps.
    """

    def __init__(self, rate: float, burst: int,
                 clock=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/second")
        if burst < 1:
            raise ValueError("burst must be >= 1 token")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_take(self) -> bool:
        """Take one token if available; never blocks."""
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._stamp)
                               * self.rate)
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


class ClientQuotas:
    """Per-client token buckets keyed by the request's ``client`` field.

    ``rate=None`` disables quotas entirely (the default -- a fleet
    without quotas is byte-for-byte a bigger single server).  Clients
    that send no ``client`` id share the ``"anonymous"`` bucket.
    """

    def __init__(self, rate: float | None, burst: int | None = None,
                 clock=time.monotonic):
        self.rate = None if rate is None else float(rate)
        self.burst = (max(1, int(burst if burst is not None
                                 else (rate or 1))))
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def allow(self, client: str | None) -> bool:
        """Admit one request for ``client``; ``True`` when within quota."""
        if self.rate is None:
            return True
        key = str(client) if client else "anonymous"
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst,
                                     clock=self._clock)
                self._buckets[key] = bucket
        return bucket.try_take()


# -- per-worker model cache --------------------------------------------------

class ModelCache:
    """An LRU of :class:`MicroBatcher` instances over registry models.

    Keys are canonical ``name@version`` specs (aliases resolve through
    the registry on every ``get``, so an ``@latest`` flip is picked up
    without invalidation).  Evicting an entry drains its batcher, and
    because the registry is content-addressed, reloading the model later
    reproduces it -- and its generations -- byte-identically.
    """

    def __init__(self, registry: ModelRegistry, capacity: int = 4,
                 batcher_kwargs: dict | None = None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1 model")
        self.registry = registry
        self.capacity = int(capacity)
        self._batcher_kwargs = dict(batcher_kwargs or {})
        self._entries: "collections.OrderedDict[str, MicroBatcher]" = \
            collections.OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, spec: str) -> MicroBatcher:
        """The batcher serving ``spec``, loading and evicting as needed.

        Raises :class:`ModelNotFound` for unpublished specs and other
        :class:`RegistryError` subclasses for damaged registries --
        callers (``GenerationService.handle``) map those to protocol
        error codes.
        """
        record = self.registry.resolve(spec)
        evicted: list[MicroBatcher] = []
        with self._lock:
            batcher = self._entries.get(record.spec)
            if batcher is not None:
                self._entries.move_to_end(record.spec)
                self.hits += 1
                obs_metrics.counter("serve.cache.hits").inc()
                return batcher
            self.misses += 1
            obs_metrics.counter("serve.cache.misses").inc()
            model = self.registry.load(record)
            batcher = MicroBatcher(model, name=record.spec,
                                   **self._batcher_kwargs)
            self._entries[record.spec] = batcher
            while len(self._entries) > self.capacity:
                _, old = self._entries.popitem(last=False)
                evicted.append(old)
                self.evictions += 1
                obs_metrics.counter("serve.cache.evictions").inc()
        # Draining the evicted batcher outside the lock keeps other
        # lookups responsive; a racing submit on the evicted batcher
        # sees BatcherClosed and the service's lookup retry reloads.
        for old in evicted:
            old.close(drain=True)
        return batcher

    def specs(self) -> list[str]:
        """Currently cached canonical specs, least-recent first."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {"capacity": self.capacity,
                    "cached": len(self._entries),
                    "specs": list(self._entries),
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}

    def close(self, drain: bool = True) -> None:
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for batcher in entries:
            batcher.close(drain=drain)


class ReplicaService(GenerationService):
    """A generation service that lazy-loads registry models via LRU.

    Unlike the base service (which pins an explicit model dict at
    construction), a replica starts empty and materialises batchers on
    first request for any spec the registry can resolve -- ``name``,
    ``name@latest``, or ``name@<version>``.  The dispatch logic,
    validation, and error mapping are all inherited.
    """

    def __init__(self, registry: ModelRegistry, *, model_cache: int = 4,
                 **kwargs):
        super().__init__({}, registry=registry, **kwargs)
        self.cache = ModelCache(registry, capacity=model_cache,
                                batcher_kwargs=self._batcher_kwargs)

    def lookup(self, spec) -> MicroBatcher:
        return self.cache.get(str(spec))

    def cache_stats(self) -> dict:
        return self.cache.stats()

    def describe(self) -> list[dict]:
        """One row per *cached* model (the working set, not the registry)."""
        rows = []
        for spec in sorted(self.cache.specs()):
            rows.append({"spec": spec, "cached": True})
        return rows

    def close(self, drain: bool = True) -> None:
        with self._models_lock:
            if self._closed:
                return
            self._closed = True
        self.cache.close(drain=drain)


# -- replica process ---------------------------------------------------------

def replica_main(index: int, registry_root: str, port_path: str,
                 options: dict) -> None:
    """Entry point of one replica worker process (module-level: spawn-safe).

    Builds a :class:`ReplicaService` over the registry, serves it on an
    ephemeral loopback port, publishes ``{"port", "pid"}`` atomically to
    ``port_path``, then waits for SIGTERM (graceful drain) or the death
    of its parent router (orphan exit).
    """
    # Under the spawn start method the child imports everything fresh,
    # so re-apply the kernel dispatch choice from the environment (fork
    # children inherit it as live state and this is a no-op).
    fused = os.environ.get("REPRO_FUSED")
    if fused is not None:
        from repro.nn.kernels import set_fused
        set_fused(fused.strip().lower() not in ("0", "false", ""))
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # router owns shutdown
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())

    with obs_metrics.use(obs_metrics.MetricsRegistry()):
        registry = ModelRegistry(registry_root)
        service = ReplicaService(registry, **dict(options))
        server = Server(service)
        payload = json.dumps({"port": server.address[1],
                              "pid": os.getpid(),
                              "replica": int(index)},
                             sort_keys=True).encode("utf-8")
        _write_atomic(port_path, payload)
        parent = os.getppid()
        while not stop.wait(0.2):
            if os.getppid() != parent:
                break  # router died without SIGTERMing us
        server.shutdown(drain=True)


# -- router ------------------------------------------------------------------

class ReplicaHandle:
    """The router's view of one replica: process, port, health, clients.

    States: ``starting`` (spawned, port not yet published), ``healthy``
    (serving), ``suspect`` (a forward failed; awaiting probe), ``dead``
    (process exited; awaiting respawn backoff).  Socket clients to the
    replica are pooled per handle and discarded wholesale whenever the
    replica is suspected or replaced.
    """

    def __init__(self, index: int):
        self.index = int(index)
        self.process = None
        self.port_path = None
        self.port: int | None = None
        self.pid: int | None = None
        self.state = "starting"
        self.restarts = 0
        self.routed = 0
        self.failures = 0          # consecutive ready-failures (backoff)
        self.probes = 0            # failed probes while suspect
        self.respawn_due = 0.0     # monotonic deadline for next respawn
        self._clients: list[ServeClient] = []
        self._lock = threading.Lock()

    # -- client pool ---------------------------------------------------------
    def borrow(self, timeout: float) -> ServeClient:
        with self._lock:
            if self._clients:
                return self._clients.pop()
            port = self.port
        if port is None:
            raise ServeError(protocol.ERR_CONNECTION,
                             f"replica {self.index} has no port yet")
        return ServeClient("127.0.0.1", port, timeout=timeout,
                           connect_retries=2)

    def give_back(self, client: ServeClient) -> None:
        with self._lock:
            self._clients.append(client)

    def discard_clients(self) -> None:
        with self._lock:
            clients, self._clients = self._clients, []
        for client in clients:
            client.close()

    def alive(self) -> bool:
        return self.process is not None and self.process.exitcode is None

    def status_row(self) -> dict:
        return {"replica": self.index, "pid": self.pid,
                "port": self.port, "state": self.state,
                "restarts": self.restarts, "routed": self.routed}


class Fleet:
    """Router + supervisor over N replica processes.

    Exposes ``handle(header, payload) -> (header, payload)`` and
    ``close(drain)``, so :class:`~repro.serve.server.Server` serves a
    fleet exactly as it serves a single ``GenerationService``.

    Args:
        registry: A :class:`ModelRegistry` or its root path.  Replicas
            open their own registry instance over the same directory.
        replicas: Worker process count (>= 1).
        model_cache: Per-replica LRU capacity (models held hot).
        quota_rps / quota_burst: Per-client token-bucket rate limit;
            ``quota_rps=None`` (default) disables quotas.
        request_timeout: Seconds the router waits on one replica for
            one forwarded request before suspecting it.
        max_batch_rows / max_wait_ms / max_queue_rows / max_request_n:
            Passed through to every replica's service.
        respawn_policy: Backoff schedule for respawning dead replicas.
        clock: Injectable monotonic clock (quota + backoff tests).
    """

    def __init__(self, registry, *, replicas: int = 2,
                 model_cache: int = 4,
                 quota_rps: float | None = None,
                 quota_burst: int | None = None,
                 request_timeout: float = 60.0,
                 max_batch_rows: int | None = None,
                 max_wait_ms: float = 2.0,
                 max_queue_rows: int = 4096,
                 max_request_n: int = DEFAULT_MAX_REQUEST_N,
                 respawn_policy: RetryPolicy | None = None,
                 clock=time.monotonic):
        if replicas < 1:
            raise ValueError("a fleet needs at least 1 replica")
        self.registry = (registry if isinstance(registry, ModelRegistry)
                         else ModelRegistry(registry))
        self.replicas = int(replicas)
        self.request_timeout = float(request_timeout)
        self.max_request_n = int(max_request_n)
        self.quotas = ClientQuotas(quota_rps, quota_burst, clock=clock)
        self.respawn_policy = respawn_policy or RetryPolicy(
            max_attempts=8, base_delay=0.1, multiplier=2.0, max_delay=5.0)
        self._clock = clock
        self._replica_options = {
            "model_cache": int(model_cache),
            "max_batch_rows": max_batch_rows,
            "max_wait_ms": float(max_wait_ms),
            "max_queue_rows": int(max_queue_rows),
            "max_request_n": int(max_request_n),
        }
        self.aliases: dict[str, str] = {}
        self._resolve_cache: dict[str, str] = {}
        self._alias_lock = threading.Lock()
        self._refresh_aliases()

        self._state_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        self._handles = [ReplicaHandle(i) for i in range(self.replicas)]
        self._closing = False
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self.totals = {"routed": 0, "retried": 0, "respawns": 0,
                       "rate_limited": 0}
        self._totals_lock = threading.Lock()

        for handle in self._handles:
            self._spawn(handle)
        deadline = time.monotonic() + 60.0
        for handle in self._handles:
            if not self._await_ready(handle, deadline):
                # Leave it to the supervisor's respawn loop.
                handle.state = "dead"
                handle.respawn_due = time.monotonic()

        self._supervisor_stop = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-fleet-supervisor",
            daemon=True)
        self._supervisor.start()

    # -- alias management ----------------------------------------------------
    def _refresh_aliases(self) -> None:
        """Pin ``name`` / ``name@latest`` to the newest published version.

        Called at construction and by the ``reload`` op -- the
        ``@latest`` flip.  Pinning happens at the router so every
        replica (and every retry of one request) resolves an alias to
        the *same* version even while a publish is racing.
        """
        aliases: dict[str, str] = {}
        for name in self.registry.models():
            record = self.registry.resolve(name)
            aliases[name] = record.spec
            aliases[f"{name}@latest"] = record.spec
        with self._alias_lock:
            self.aliases = aliases
            self._resolve_cache = dict(aliases)

    def _canonical_spec(self, spec: str) -> str:
        """Resolve a request spec to a canonical ``name@version``."""
        spec = str(spec)
        with self._alias_lock:
            cached = self._resolve_cache.get(spec)
        if cached is not None:
            return cached
        canonical = self.registry.resolve(spec).spec
        with self._alias_lock:
            self._resolve_cache[spec] = canonical
        return canonical

    # -- replica lifecycle ---------------------------------------------------
    def _spawn(self, handle: ReplicaHandle) -> None:
        handle.port_path = os.path.join(
            self._state_dir,
            f"replica-{handle.index}-{handle.restarts}.json")
        handle.port = None
        handle.pid = None
        handle.probes = 0
        handle.state = "starting"
        handle.discard_clients()
        context = mp_context()
        handle.process = context.Process(
            target=replica_main,
            args=(handle.index, self.registry.root, handle.port_path,
                  self._replica_options),
            name=f"repro-fleet-replica-{handle.index}", daemon=True)
        handle.process.start()

    def _await_ready(self, handle: ReplicaHandle,
                     deadline: float) -> bool:
        """Wait for the replica's port file, then a successful ping."""
        stop = getattr(self, "_supervisor_stop", None)
        while time.monotonic() < deadline:
            if stop is not None and stop.is_set():
                return False  # fleet is closing; don't block it
            if not handle.alive():
                return False
            if os.path.exists(handle.port_path):
                try:
                    with open(handle.port_path, encoding="utf-8") as fh:
                        info = json.load(fh)
                except (OSError, ValueError):
                    time.sleep(0.01)
                    continue
                handle.port = int(info["port"])
                handle.pid = int(info["pid"])
                try:
                    client = handle.borrow(timeout=5.0)
                except ServeError:
                    return False
                try:
                    ok = client.ping()
                except ServeError:
                    client.close()
                    return False
                handle.give_back(client)
                if ok:
                    handle.state = "healthy"
                    handle.failures = 0
                    return True
                return False
            time.sleep(0.01)
        return False

    def _mark_suspect(self, handle: ReplicaHandle) -> None:
        if handle.state == "healthy":
            handle.state = "suspect"
        handle.discard_clients()

    def _respawn(self, handle: ReplicaHandle) -> None:
        handle.restarts += 1
        handle.failures += 1
        with self._totals_lock:
            self.totals["respawns"] += 1
        obs_metrics.counter("fleet.respawns").inc()
        obs_events.emit("fleet.respawn",
                        {"replica": handle.index,
                         "restarts": handle.restarts}, transient=True)
        self._spawn(handle)
        if self._await_ready(handle, time.monotonic() + 30.0):
            return
        # Still not up: reap and schedule the next attempt.
        if handle.process is not None and handle.alive():
            handle.process.terminate()
            handle.process.join(timeout=5.0)
        handle.state = "dead"
        attempt = min(handle.failures, self.respawn_policy.max_attempts)
        handle.respawn_due = (time.monotonic()
                              + self.respawn_policy.delay(attempt))

    def _supervise(self) -> None:
        """Background health loop: reap dead replicas, probe suspects,
        respawn on a bounded deterministic backoff."""
        while not self._supervisor_stop.wait(0.05):
            for handle in self._handles:
                if self._supervisor_stop.is_set():
                    return
                if handle.state in ("healthy", "suspect") \
                        and not handle.alive():
                    handle.state = "dead"
                    handle.respawn_due = time.monotonic()
                    handle.discard_clients()
                if handle.state == "suspect":
                    self._probe(handle)
                if handle.state == "dead" \
                        and time.monotonic() >= handle.respawn_due:
                    self._respawn(handle)

    def _probe(self, handle: ReplicaHandle) -> None:
        ok = False
        client = None
        try:
            client = handle.borrow(timeout=2.0)
            ok = client.ping()
        except ServeError:
            ok = False
        if client is not None:
            if ok:
                handle.give_back(client)
            else:
                client.close()
        if ok:
            handle.state = "healthy"
            handle.probes = 0
            handle.failures = 0
            return
        handle.probes += 1
        if handle.probes >= 3 and handle.alive():
            # Alive but unresponsive (hung): replace it.
            handle.process.terminate()
            handle.process.join(timeout=5.0)
            if handle.alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)
            handle.state = "dead"
            handle.respawn_due = time.monotonic()

    # -- request routing -----------------------------------------------------
    def _healthy_order(self, preferred: int) -> list[ReplicaHandle]:
        """Healthy replicas starting at ``preferred``, wrapping forward."""
        ordered = []
        for offset in range(self.replicas):
            handle = self._handles[(preferred + offset) % self.replicas]
            if handle.state == "healthy":
                ordered.append(handle)
        return ordered

    def _forward(self, handle: ReplicaHandle, header: dict,
                 payload: bytes) -> tuple[dict, bytes]:
        """One attempt on one replica; raises ServeError on transport
        failure (the caller suspects the replica and retries)."""
        client = handle.borrow(timeout=self.request_timeout)
        try:
            response, body = client._call(header, payload)
        except ServeError:
            client.close()
            raise
        handle.give_back(client)
        return response, body

    def _route_generate(self, header: dict) -> tuple[dict, bytes]:
        spec = header.get("model")
        n, seed = header.get("n"), header.get("seed", 0)
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            return self._error(protocol.ERR_BAD_REQUEST,
                               f"n must be a non-negative integer, "
                               f"got {n!r}")
        if n > self.max_request_n:
            return self._error(protocol.ERR_BAD_REQUEST,
                               f"n={n} exceeds the per-request cap of "
                               f"{self.max_request_n}; split the request")
        if not isinstance(seed, int) or isinstance(seed, bool):
            return self._error(protocol.ERR_BAD_REQUEST,
                               f"seed must be an integer, got {seed!r}")
        if not self.quotas.allow(header.get("client")):
            with self._totals_lock:
                self.totals["rate_limited"] += 1
            obs_metrics.counter("fleet.rate_limited").inc()
            return self._error(
                protocol.ERR_RATE_LIMITED,
                f"client {header.get('client') or 'anonymous'!r} is over "
                f"its {self.quotas.rate:g} req/s quota "
                f"(burst {self.quotas.burst}); back off and retry")
        try:
            canonical = self._canonical_spec(spec)
        except ModelNotFound as exc:
            return self._error(protocol.ERR_MODEL_NOT_FOUND, str(exc))

        forwarded = {"op": "generate", "model": canonical,
                     "n": int(n), "seed": int(seed)}
        preferred = route_index(canonical, n, seed, self.replicas)
        last_error = "no healthy replica"
        for attempt in range(1, self.respawn_policy.max_attempts + 1):
            for handle in self._healthy_order(preferred):
                try:
                    response, body = self._forward(handle, forwarded,
                                                   b"")
                except ServeError as exc:
                    self._mark_suspect(handle)
                    self._note_retry(handle, exc.code)
                    last_error = str(exc)
                    continue
                if response.get("code") in _RETRYABLE_CODES:
                    # The replica is draining; it produced no result.
                    self._note_retry(handle, response.get("code"))
                    last_error = response.get("error", "replica draining")
                    continue
                handle.routed += 1
                with self._totals_lock:
                    self.totals["routed"] += 1
                obs_metrics.counter("fleet.routed").inc()
                return response, body
            # No healthy replica produced an answer this pass; give the
            # supervisor a deterministic beat to respawn one.
            time.sleep(self.respawn_policy.delay(attempt))
        return self._error(protocol.ERR_INTERNAL,
                           f"no healthy replica could serve the request "
                           f"after {self.respawn_policy.max_attempts} "
                           f"passes (last: {last_error})")

    def _note_retry(self, handle: ReplicaHandle, code) -> None:
        with self._totals_lock:
            self.totals["retried"] += 1
        obs_metrics.counter("fleet.retries").inc()
        obs_events.emit("fleet.retry",
                        {"replica": handle.index, "code": code},
                        transient=True)

    # -- dispatch ------------------------------------------------------------
    def _error(self, code: str, message: str) -> tuple[dict, bytes]:
        obs_metrics.counter(f"serve.errors.{code}").inc()
        return {"status": "error", "code": code, "error": message}, b""

    def describe(self) -> list[dict]:
        """One row per pinned alias target (the ``models`` op)."""
        with self._alias_lock:
            aliases = dict(self.aliases)
        rows: dict[str, dict] = {}
        for alias, canonical in aliases.items():
            row = rows.setdefault(canonical,
                                  {"spec": canonical, "aliases": []})
            row["aliases"].append(alias)
        for row in rows.values():
            row["aliases"].sort()
            row["replicas"] = sum(1 for h in self._handles
                                  if h.state == "healthy")
        return [rows[spec] for spec in sorted(rows)]

    def fleet_status(self) -> dict:
        with self._alias_lock:
            aliases = dict(self.aliases)
        with self._totals_lock:
            totals = dict(self.totals)
        return {
            "replicas": [h.status_row() for h in self._handles],
            "totals": totals,
            "aliases": aliases,
            "quota": ({"rps": self.quotas.rate,
                       "burst": self.quotas.burst}
                      if self.quotas.enabled else None),
        }

    def reload(self) -> dict:
        """Re-pin aliases against the registry (zero-downtime upgrade).

        After a new version is published, ``reload`` flips ``name`` and
        ``name@latest`` to it; replicas lazy-load the new version on
        first request and LRU-evict the old one.  No process restarts,
        no dropped requests.
        """
        self._refresh_aliases()
        obs_events.emit("fleet.reload", transient=True)
        with self._alias_lock:
            return dict(self.aliases)

    def handle(self, header: dict, payload: bytes = b""
               ) -> tuple[dict, bytes]:
        """Serve one request (the same contract as GenerationService)."""
        with self._inflight_cv:
            if self._closing:
                return self._error(protocol.ERR_SHUTTING_DOWN,
                                   "fleet is draining")
            self._inflight += 1
        try:
            return self._dispatch(header, payload)
        finally:
            with self._inflight_cv:
                self._inflight -= 1
                self._inflight_cv.notify_all()

    def _dispatch(self, header: dict, payload: bytes
                  ) -> tuple[dict, bytes]:
        op = header.get("op")
        if op == "ping":
            return {"status": "ok"}, b""
        if op == "models":
            return {"status": "ok", "models": self.describe()}, b""
        if op in ("stats", "fleet_status"):
            return {"status": "ok", "fleet": self.fleet_status()}, b""
        if op == "reload":
            return {"status": "ok", "aliases": self.reload()}, b""
        if op == "generate":
            return self._route_generate(header)
        if op in ("submit", "status", "cancel", "jobs"):
            return self._error(
                protocol.ERR_JOBS_DISABLED,
                f"the fleet router does not orchestrate training jobs "
                f"(op {op!r}); submit to a single server with --jobs-dir")
        return self._error(protocol.ERR_BAD_REQUEST,
                           f"unknown op {op!r} (expected ping, models, "
                           f"generate, stats, fleet_status, or reload)")

    # -- lifecycle -----------------------------------------------------------
    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain in-flight requests, then stop replicas and clean up.

        Ordering matters: requests already inside :meth:`handle` must
        finish their replica round-trips *before* replicas get SIGTERM,
        otherwise a drain would kill the very backends serving it.
        """
        with self._inflight_cv:
            if self._closing:
                return
            self._closing = True
            if drain:
                deadline = time.monotonic() + timeout
                while self._inflight > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._inflight_cv.wait(remaining)
        self._supervisor_stop.set()
        self._supervisor.join(timeout=timeout)
        for handle in self._handles:
            handle.discard_clients()
            if handle.process is not None and handle.alive():
                handle.process.terminate()  # SIGTERM -> graceful drain
        for handle in self._handles:
            if handle.process is not None:
                handle.process.join(timeout=timeout)
                if handle.alive():
                    handle.process.kill()
                    handle.process.join(timeout=5.0)
            handle.state = "dead"
        shutil.rmtree(self._state_dir, ignore_errors=True)

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
