"""Serving benchmark: micro-batching on vs off, plus the identity check.

Measures request throughput and tail latency of the socket server under
concurrent load in two modes:

- **batched** -- the default :class:`MicroBatcher` planning
  (``max_batch_rows = model batch_size``): each request runs as
  batch-size-row model passes and concurrent requests' blocks share
  worker wake-ups.
- **unbatched** -- ``max_batch_rows=1``: every sample is its own model
  pass, i.e. batch-size-1 per-request serving.  This is the baseline the
  ``>=2x`` acceptance target compares against; on the numpy substrate a
  forward pass costs nearly the same for 1 row as for ``batch_size``
  rows, so the batched mode wins on Python graph overhead alone (no
  multi-core requirement -- the note in the JSON records ``cpu_count``
  for honesty, as ``BENCH_parallel.json`` does).

The run also replays one served response against direct
:meth:`DoppelGANger.generate` with the same seed and records whether the
bytes matched (``served_identical`` -- the determinism contract CI
enforces separately through ``benchmarks/serving_smoke.py``).

Results land in ``BENCH_serving.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.core import DoppelGANger
from repro.serve.client import ServeClient, run_load
from repro.serve.server import GenerationService, Server

__all__ = ["run_serving_benchmark", "train_tiny_model",
           "check_result_schema", "DEFAULT_OUTPUT", "RESULT_KEYS"]

DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "BENCH_serving.json"

# The committed BENCH_serving.json must carry exactly these top-level
# keys; the CI bench smoke fails on drift so the schema cannot rot
# silently under downstream consumers.
RESULT_KEYS = frozenset({
    "model", "cpu_count", "concurrency", "requests_per_client",
    "request_n", "max_wait_ms", "batched", "unbatched",
    "throughput_speedup", "served_identical", "fleet", "note",
})

_MODE_KEYS = frozenset({
    "max_batch_rows", "concurrency", "requests", "ok", "shed", "errors",
    "wall_seconds", "throughput_rps", "p50_ms", "p99_ms",
})

_FLEET_ROW_KEYS = (_MODE_KEYS - {"max_batch_rows"}) | {
    "replicas", "served_identical"}


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def train_tiny_model(seed: int = 7) -> DoppelGANger:
    """Train the benchmark model: TINY-scale DoppelGANger on GCUT."""
    from repro.core import DGConfig
    from repro.data.simulators import generate_gcut

    data = generate_gcut(80, np.random.default_rng(3), max_length=16)
    config = DGConfig(
        sample_len=4, batch_size=16, iterations=40,
        attribute_hidden=(24, 24), minmax_hidden=(24, 24),
        feature_rnn_units=24, feature_mlp_hidden=(24,),
        discriminator_hidden=(32, 32), aux_discriminator_hidden=(32, 32),
        seed=seed,
    )
    model = DoppelGANger(data.schema, config)
    model.fit(data)
    return model


def _measure_mode(model, spec: str, *, max_batch_rows: int | None,
                  max_wait_ms: float, concurrency: int,
                  requests_per_client: int, n: int) -> dict:
    service = GenerationService({spec: model},
                                max_batch_rows=max_batch_rows,
                                max_wait_ms=max_wait_ms,
                                max_queue_rows=1 << 20)
    with Server(service) as server:
        host, port = server.address
        report = run_load(lambda: ServeClient(host, port), model=spec,
                          concurrency=concurrency,
                          requests_per_client=requests_per_client, n=n)
    summary = report.summary()
    summary["max_batch_rows"] = (max_batch_rows if max_batch_rows
                                 else int(model.config.batch_size))
    return summary


def _measure_fleet(model, *, replica_counts, concurrency: int,
                   requests_per_client: int, n: int,
                   max_wait_ms: float) -> dict:
    """Throughput per replica count through a real multi-process fleet.

    One registry publish, then one fleet per count; each run also
    byte-compares one served response against direct generation, so the
    fleet rows carry the same identity evidence as the single-server
    modes.
    """
    import tempfile

    from repro.serve.fleet import Fleet
    from repro.serve.registry import ModelRegistry

    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as root:
        registry = ModelRegistry(root)
        spec = registry.publish("bench", model).spec
        seed_check = 20200902
        direct = model.generate(n, rng=np.random.default_rng(seed_check))
        for replicas in replica_counts:
            fleet = Fleet(registry, replicas=replicas, model_cache=2,
                          max_wait_ms=max_wait_ms,
                          max_queue_rows=1 << 20)
            try:
                with Server(fleet) as server:
                    host, port = server.address
                    report = run_load(
                        lambda: ServeClient(host, port, timeout=300),
                        model=spec, concurrency=concurrency,
                        requests_per_client=requests_per_client, n=n)
                    with ServeClient(host, port, timeout=300) as client:
                        served = client.generate(spec, n, seed_check)
            finally:
                fleet.close()
            row = report.summary()
            row["replicas"] = int(replicas)
            row["served_identical"] = bool(
                np.array_equal(served.attributes, direct.attributes)
                and np.array_equal(served.features, direct.features)
                and np.array_equal(served.lengths, direct.lengths))
            rows.append(row)
    return {
        "concurrency": concurrency,
        "requests_per_client": requests_per_client,
        "request_n": n,
        "per_replica_count": rows,
        "note": ("replica processes share the host's cores, so "
                 "throughput scales with replica count only when "
                 "cpu_count >= replicas; on a 1-core host the fleet "
                 "rows demonstrate identity and stability under "
                 "concurrency, not speedup (same caveat as "
                 "BENCH_parallel.json)"),
    }


def _identity_check(model, spec: str, n: int, seed: int) -> bool:
    """One served request, byte-compared against direct generation."""
    service = GenerationService({spec: model})
    with Server(service) as server:
        host, port = server.address
        with ServeClient(host, port) as client:
            served = client.generate(spec, n, seed)
    direct = model.generate(n, rng=np.random.default_rng(seed))
    return (np.array_equal(served.attributes, direct.attributes)
            and np.array_equal(served.features, direct.features)
            and np.array_equal(served.lengths, direct.lengths))


def run_serving_benchmark(model: DoppelGANger | None = None, *,
                          concurrency: int = 8,
                          requests_per_client: int = 8,
                          n: int = 16, max_wait_ms: float = 2.0,
                          fleet_concurrency: int = 32,
                          fleet_replica_counts=(1, 2, 4),
                          output: Path | str | None = DEFAULT_OUTPUT,
                          smoke: bool = False) -> dict:
    """Benchmark batched vs unbatched serving; write BENCH_serving.json.

    The result always carries a ``fleet`` section: multi-replica rows
    measured at ``fleet_concurrency`` (>= 32 by default, per the
    scaling acceptance bar) for each count in ``fleet_replica_counts``.
    ``smoke=True`` shrinks the load (fewer, smaller requests, fewer
    replica counts) for CI; schema and identity checks are exercised
    identically.  ``output=None`` skips writing.
    """
    if concurrency < 1 or requests_per_client < 1 or n < 1:
        raise ValueError("concurrency, requests_per_client, n must be "
                         ">= 1")
    fleet_requests = requests_per_client
    if smoke:
        requests_per_client = min(requests_per_client, 2)
        n = min(n, 8)
        fleet_concurrency = min(fleet_concurrency, 8)
        fleet_requests = 1
        fleet_replica_counts = tuple(fleet_replica_counts)[:2]
    if model is None:
        model = train_tiny_model()
    spec = "bench@1"

    batched = _measure_mode(
        model, spec, max_batch_rows=None, max_wait_ms=max_wait_ms,
        concurrency=concurrency, requests_per_client=requests_per_client,
        n=n)
    unbatched = _measure_mode(
        model, spec, max_batch_rows=1, max_wait_ms=max_wait_ms,
        concurrency=concurrency, requests_per_client=requests_per_client,
        n=n)
    identical = _identity_check(model, spec, n, seed=20200901)
    fleet = _measure_fleet(model, replica_counts=fleet_replica_counts,
                           concurrency=fleet_concurrency,
                           requests_per_client=fleet_requests, n=n,
                           max_wait_ms=max_wait_ms)

    speedup = (batched["throughput_rps"] / unbatched["throughput_rps"]
               if unbatched["throughput_rps"] else float("inf"))
    result = {
        "model": {"scale": "tiny-gcut",
                  "batch_size": int(model.config.batch_size)},
        "cpu_count": _cpu_count(),
        "concurrency": concurrency,
        "requests_per_client": requests_per_client,
        "request_n": n,
        "max_wait_ms": max_wait_ms,
        "batched": batched,
        "unbatched": unbatched,
        "throughput_speedup": speedup,
        "served_identical": identical,
        "fleet": fleet,
        "note": ("unbatched = max_batch_rows=1 (every sample its own "
                 "model pass, i.e. batch-size-1 per-request serving); "
                 "the >=2x target comes from the batch dimension of the "
                 "forward pass, not from cores, so it applies at any "
                 "cpu_count (recorded for honesty)"),
    }
    if output is not None:
        Path(output).write_text(json.dumps(result, indent=2) + "\n")
    print(f"[bench_serving] concurrency={concurrency} n={n} on "
          f"{result['cpu_count']} core(s)")
    print(f"[bench_serving] batched:   "
          f"{batched['throughput_rps']:.1f} req/s  "
          f"(p50 {batched['p50_ms']:.1f}ms, p99 {batched['p99_ms']:.1f}ms)")
    print(f"[bench_serving] unbatched: "
          f"{unbatched['throughput_rps']:.1f} req/s  "
          f"(p50 {unbatched['p50_ms']:.1f}ms, "
          f"p99 {unbatched['p99_ms']:.1f}ms)")
    for row in fleet["per_replica_count"]:
        print(f"[bench_serving] fleet x{row['replicas']}: "
              f"{row['throughput_rps']:.1f} req/s at concurrency "
              f"{fleet['concurrency']}  (p50 {row['p50_ms']:.1f}ms, "
              f"identical={row['served_identical']})")
    print(f"[bench_serving] speedup {speedup:.2f}x, "
          f"served_identical={identical}"
          + (f" -> {output}" if output is not None else ""))
    return result


def check_result_schema(result: dict,
                        reference: Path | str | None = None) -> list[str]:
    """Schema-drift guard: returns a list of problems (empty = ok).

    Compares ``result``'s key structure against :data:`RESULT_KEYS` and,
    when ``reference`` (a committed BENCH_serving.json) is given, against
    that file's keys too.
    """
    problems = []
    missing = RESULT_KEYS - set(result)
    extra = set(result) - RESULT_KEYS
    if missing:
        problems.append(f"missing top-level keys: {sorted(missing)}")
    if extra:
        problems.append(f"unexpected top-level keys: {sorted(extra)}")
    for mode in ("batched", "unbatched"):
        summary = result.get(mode)
        if not isinstance(summary, dict):
            problems.append(f"{mode!r} is not an object")
            continue
        mode_missing = _MODE_KEYS - set(summary)
        if mode_missing:
            problems.append(f"{mode!r} misses keys: "
                            f"{sorted(mode_missing)}")
    fleet = result.get("fleet")
    if not isinstance(fleet, dict) \
            or not isinstance(fleet.get("per_replica_count"), list) \
            or not fleet["per_replica_count"]:
        problems.append("'fleet' must be an object with a non-empty "
                        "per_replica_count list")
    else:
        for row in fleet["per_replica_count"]:
            row_missing = _FLEET_ROW_KEYS - set(row)
            if row_missing:
                problems.append(
                    f"fleet row (replicas={row.get('replicas')}) misses "
                    f"keys: {sorted(row_missing)}")
    if reference is not None:
        try:
            committed = json.loads(Path(reference).read_text())
        except (OSError, ValueError) as exc:
            problems.append(f"committed reference {reference} unreadable: "
                            f"{exc}")
        else:
            drift = set(committed) ^ set(result)
            if drift:
                problems.append(
                    f"keys drifted vs committed {reference}: "
                    f"{sorted(drift)}")
    return problems
