"""Micro-batching request scheduler for online generation.

Concurrent ``generate(n, seed)`` requests are coalesced into bounded
execution *bundles* that a single worker thread drains through the model,
instead of each request paying its own scheduling round-trip.  Three
properties drive the design:

**Determinism by construction.**  A served request must be byte-identical
to a direct :meth:`DoppelGANger.generate` call with the same seed, no
matter how many other requests it was coalesced with (the contract CI
enforces).  That rules out the obvious trick -- concatenating rows from
several requests into one forward pass -- because BLAS gemm results
depend on the row count of the pass: on this substrate a ``(8,16)@(16,2)``
product and the same rows computed in a ``(3,16)@(16,2)`` product differ
in the last ulp (OpenBLAS dispatches different kernels by shape; measured
in ``docs/serving.md``).  So the batcher never repacks rows: each request
is planned into exactly the blocks direct generation would run
(:func:`repro.parallel.generation.plan_request`, noise drawn from the
request's own seeded rng in plan order), and coalescing happens at the
*block* level -- many requests' blocks execute back-to-back in one worker
wake-up, on one thread, against one model.

**Deadline-based flush.**  The worker assembles a bundle of up to
``max_batch_rows`` queued rows; when fewer are waiting it holds the
bundle open for at most ``max_wait_ms`` (measured from the oldest queued
block) before flushing what it has, so light traffic pays bounded latency
and heavy traffic gets full bundles.

**Bounded admission.**  ``submit`` rejects with :class:`QueueFull` once
``max_queue_rows`` rows are queued -- requests are shed at the door with
an explicit error, never parked on an unbounded queue (the server maps
this to the ``busy`` protocol code).  ``close(drain=True)`` stops
admission and completes everything already queued before returning.

The throughput win over batch-size-1 serving comes from the batch
dimension itself: on the numpy substrate a forward pass costs nearly the
same for 1 row as for ``batch_size`` rows (Python graph overhead
dominates), so serving a 16-object request as one 16-row block instead of
16 single-row passes is ~an order of magnitude cheaper
(``benchmarks/bench_serving.py``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.observability import metrics as obs_metrics
from repro.observability.metrics import LATENCY_BUCKETS
from repro.parallel.generation import plan_request

__all__ = ["MicroBatcher", "QueueFull", "BatcherClosed"]


class QueueFull(RuntimeError):
    """Admission queue is at capacity; the request was shed, not queued."""

    code = "busy"


class BatcherClosed(RuntimeError):
    """The batcher is shutting down and no longer accepts requests."""

    code = "shutting_down"


@dataclass
class _Pending:
    """One admitted request and its partially filled output."""

    n: int
    future: Future
    parts: list  # (attrs, minmax, features) triple per block, plan order
    remaining: int  # blocks still to execute
    enqueued: float  # monotonic admission time
    rows_done: int = 0


@dataclass
class _Block:
    """One executable unit: a planned block of a pending request."""

    pending: _Pending
    index: int
    size: int
    noise: tuple
    cond: object = None


@dataclass
class _Bundle:
    blocks: list = field(default_factory=list)
    rows: int = 0


class MicroBatcher:
    """Coalesce concurrent generation requests against one model.

    Args:
        model: A trained model of any registered backend.  Models with
            DoppelGANger's block API (``_draw_block_noise`` /
            ``_generate_block``) get block-level coalescing; any other
            model runs in *opaque* mode, where each request executes as
            one ``generate(n, rng)`` call (trivially byte-identical to
            direct generation, coalescing only across requests).
        max_batch_rows: Target rows per execution bundle *and* the block
            size requests are planned with (clamped to the model's
            ``batch_size``).  The default (``None``) uses the model's
            configured ``batch_size`` -- the only planning that keeps the
            served-equals-direct determinism contract.  ``1`` is the
            degraded per-sample mode benchmarked as "batching off".
        max_wait_ms: Deadline for flushing a partial bundle, measured
            from the oldest queued block's admission.
        max_queue_rows: Admission bound; ``submit`` beyond it raises
            :class:`QueueFull`.
        name: Label used in thread names and error messages.
    """

    #: Rows per bundle for models without block-level generation.
    OPAQUE_BATCH_ROWS = 64

    def __init__(self, model, *, max_batch_rows: int | None = None,
                 max_wait_ms: float = 2.0, max_queue_rows: int = 4096,
                 name: str = "model"):
        if max_batch_rows is not None and max_batch_rows < 1:
            raise ValueError("max_batch_rows must be >= 1")
        if max_queue_rows < 1:
            raise ValueError("max_queue_rows must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.model = model
        self.name = str(name)
        # Models exposing DoppelGANger's block API get block-level
        # coalescing; any other backend's model falls back to *opaque*
        # requests -- each request runs as one model.generate(n, rng)
        # call with its own seeded rng, which is byte-identical to
        # direct generation by construction (no repacking to undo).
        self._block_mode = (hasattr(model, "_generate_block")
                            and hasattr(model, "_draw_block_noise"))
        if self._block_mode:
            model_batch = int(model.config.batch_size)
            self.max_batch_rows = int(max_batch_rows or model_batch)
            self.plan_rows = min(self.max_batch_rows, model_batch)
        else:
            self.max_batch_rows = int(max_batch_rows
                                      or self.OPAQUE_BATCH_ROWS)
            self.plan_rows = self.max_batch_rows
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue_rows = int(max_queue_rows)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: deque[_Block] = deque()
        self._queued_rows = 0
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name=f"repro-serve-batcher-{self.name}",
            daemon=True)
        self._worker.start()

    @property
    def deterministic(self) -> bool:
        """Whether served output matches direct ``generate()`` byte-wise."""
        if not self._block_mode:
            return True  # whole-request execution, nothing is repacked
        return self.plan_rows == int(self.model.config.batch_size)

    # -- admission -----------------------------------------------------------
    def submit(self, n: int, seed: int) -> Future:
        """Admit a ``generate(n, seed)`` request; returns its Future.

        The Future resolves to a
        :class:`~repro.data.dataset.TimeSeriesDataset`.  Raises
        :class:`QueueFull` when admission would exceed
        ``max_queue_rows`` and :class:`BatcherClosed` after
        :meth:`close`.
        """
        n = int(n)
        if n < 0:
            raise ValueError("n must be >= 0")
        if self._block_mode:
            # Plan (and draw noise) outside the lock: rng work per
            # request is independent, only queue accounting needs
            # exclusion.
            rng = np.random.default_rng(int(seed))
            plan = plan_request(self.model, n, rng,
                                block_rows=self.plan_rows)
            blocks = [(b.size, b.noise, b.cond) for b in plan]
        else:
            # Opaque mode: the whole request is one executable unit,
            # carrying its seed instead of pre-drawn noise.
            blocks = [(n, (int(seed),), None)] if n else []
        future: Future = Future()
        pending = _Pending(n=n, future=future,
                           parts=[None] * len(blocks),
                           remaining=len(blocks),
                           enqueued=time.monotonic())
        with self._lock:
            if self._closed:
                raise BatcherClosed(
                    f"batcher {self.name!r} is shutting down")
            if self._queued_rows + n > self.max_queue_rows:
                obs_metrics.counter("serve.shed").inc()
                raise QueueFull(
                    f"admission queue of batcher {self.name!r} is full "
                    f"({self._queued_rows}/{self.max_queue_rows} rows "
                    f"queued, request adds {n}); retry later")
            obs_metrics.counter("serve.requests").inc()
            if not blocks:
                # n == 0: nothing to execute, complete immediately.
                future.set_result(self._assemble(pending))
                return future
            for index, (size, noise, cond) in enumerate(blocks):
                self._queue.append(_Block(pending=pending, index=index,
                                          size=size, noise=noise,
                                          cond=cond))
            self._queued_rows += n
            obs_metrics.gauge("serve.queue_rows").set(self._queued_rows)
            self._work.notify()
        return future

    # -- worker --------------------------------------------------------------
    def _take_bundle(self) -> _Bundle | None:
        """Wait for work, honour the flush deadline, pop one bundle.

        Returns ``None`` when closed and fully drained.
        """
        with self._lock:
            while not self._queue:
                if self._closed:
                    return None
                self._work.wait()
            # Deadline flush: hold a partial bundle open (up to
            # max_wait_ms from the oldest block's admission) to let
            # concurrent requests coalesce into the same wake-up.
            if self.max_wait_ms > 0 and not self._closed:
                while (self._queued_rows < self.max_batch_rows
                       and not self._closed):
                    # Re-derive the deadline from the *current* queue head
                    # every iteration: a spurious wakeup (or any notify
                    # that does not fill the bundle) must not reset the
                    # clock, and the head block's admission time bounds
                    # how long any queued request can be held.
                    deadline = (self._queue[0].pending.enqueued
                                + self.max_wait_ms / 1000.0)
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._work.wait(timeout=remaining)
            bundle = _Bundle()
            while self._queue and (not bundle.blocks
                                   or bundle.rows + self._queue[0].size
                                   <= self.max_batch_rows):
                block = self._queue.popleft()
                bundle.blocks.append(block)
                bundle.rows += block.size
            return bundle

    def _assemble(self, pending: _Pending):
        """Concatenate a finished request's blocks and decode.

        Decoding happens on the full ``(n, ...)`` arrays, exactly as
        :meth:`DoppelGANger.generate` does after its own block loop.
        In opaque mode the single part already *is* the decoded dataset.
        """
        encoder = self.model.encoder
        if not self._block_mode and pending.parts:
            return pending.parts[0]
        if pending.parts:
            attrs, minmax, features = (
                np.concatenate([part[i] for part in pending.parts])
                for i in range(3))
        else:
            attrs = np.zeros((0, encoder.attribute_dim))
            minmax = np.zeros((0, encoder.minmax_dim))
            features = np.zeros((0, self.model.schema.max_length,
                                 encoder.feature_dim))
        return encoder.inverse(attrs, minmax, features)

    @staticmethod
    def _settle(future: Future, result=None, exc=None) -> None:
        """Resolve a future, tolerating a concurrent cancel."""
        try:
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(result)
        except Exception:  # already cancelled/settled: result is dropped
            pass

    def _run(self) -> None:
        while True:
            bundle = self._take_bundle()
            if bundle is None:
                return
            finished: list[_Pending] = []
            for block in bundle.blocks:
                pending = block.pending
                if pending.future.done():  # failed or cancelled earlier
                    continue
                try:
                    if self._block_mode:
                        part = self.model._generate_block(block.size,
                                                          block.noise,
                                                          block.cond)
                    else:
                        part = self.model.generate(
                            block.size,
                            rng=np.random.default_rng(block.noise[0]))
                except BaseException as exc:  # surface, don't kill worker
                    self._settle(pending.future, exc=exc)
                    continue
                pending.parts[block.index] = part
                pending.rows_done += block.size
                pending.remaining -= 1
                if pending.remaining == 0:
                    finished.append(pending)
            now = time.monotonic()
            for pending in finished:
                try:
                    result = self._assemble(pending)
                except BaseException as exc:
                    self._settle(pending.future, exc=exc)
                else:
                    self._settle(pending.future, result=result)
            with self._lock:
                self._queued_rows -= bundle.rows
                obs_metrics.gauge("serve.queue_rows").set(
                    self._queued_rows)
                obs_metrics.counter("serve.batches").inc()
                obs_metrics.counter("serve.model_passes").inc(
                    len(bundle.blocks))
                obs_metrics.counter("serve.samples").inc(bundle.rows)
                obs_metrics.counter("serve.completed").inc(len(finished))
                latency = obs_metrics.histogram("serve.latency_seconds",
                                                LATENCY_BUCKETS)
                for pending in finished:
                    latency.observe(now - pending.enqueued)

    # -- shutdown ------------------------------------------------------------
    def close(self, drain: bool = True, timeout: float | None = None
              ) -> None:
        """Stop admission; optionally finish everything already queued.

        With ``drain=True`` (the default) every admitted request
        completes before the worker exits.  With ``drain=False`` queued
        requests fail with :class:`BatcherClosed`; the block currently
        executing (if any) still completes.
        """
        with self._lock:
            if not self._closed:
                self._closed = True
                if not drain:
                    dropped = {id(b.pending): b.pending
                               for b in self._queue}
                    self._queued_rows -= sum(b.size for b in self._queue)
                    self._queue.clear()
                    for pending in dropped.values():
                        self._settle(pending.future, exc=BatcherClosed(
                            f"batcher {self.name!r} shut down before "
                            f"this request ran"))
            self._work.notify_all()
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
