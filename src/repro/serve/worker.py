"""The supervised training worker (``python -m repro.serve.worker``).

One invocation executes one *attempt* of a job directory written by
:class:`repro.serve.jobs.JobStore`: train (resuming from the latest
checkpoint when one exists), write the model archive atomically, publish
it into the content-addressed registry with the correct backend tag, and
drop an atomic ``result.json`` receipt that the supervisor treats as the
completion marker.

Every step is idempotent, so the worker can die *anywhere* and a relaunch
converges on the same bytes:

- killed mid-training -> the next attempt resumes from ``checkpoint.npz``
  (bit-identical continuation, PR 2's guarantee);
- killed between the model write and the publish -> the next attempt
  skips training and just publishes (content addressing makes a double
  publish of identical bytes a no-op);
- killed between the publish and the receipt -> the next attempt
  republishes (no-op) and rewrites the receipt.

Backends without resumable checkpoints (everything except DoppelGANger)
retrain from scratch on each attempt; their training is a pure function
of (config, seed, data), so the final bytes are identical anyway.

Fault injection: a job record may carry test-only fault specs
(:mod:`repro.resilience.faults`) scoped to an attempt number; a ``kill``
action exits the process via ``os._exit`` -- no cleanup, no buffered
flushes -- the closest in-process stand-in for SIGKILL.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.backends import get_backend
from repro.data.dataset import TimeSeriesDataset
from repro.observability import events as obs_events
from repro.resilience import faults
from repro.serve.jobs import JobRecord, JobStore
from repro.serve.registry import ModelRegistry, _write_atomic

__all__ = ["run_job", "main"]

#: Exit code of a simulated kill (mirrors 128 + SIGKILL).
KILL_EXIT_CODE = 137


def _arm_faults(record: JobRecord) -> None:
    """Install the record's fault specs that target this attempt."""
    armed = []
    for spec in record.faults:
        if int(spec.get("attempt", 1)) != record.attempts:
            continue
        armed.append(faults.Fault(site=str(spec["site"]),
                                  action=str(spec["action"]),
                                  step=spec.get("step"),
                                  times=int(spec.get("times", 1))))
    if armed:
        faults.install(*armed)


def _train_doppelganger(record: JobRecord, data: TimeSeriesDataset,
                        checkpoint: str):
    """Fit the paper's model with checkpoint/resume and the sentinel."""
    from repro.core.config import DGConfig
    from repro.core.doppelganger import DoppelGANger

    train = record.train
    width = int(train.get("hidden", 32))
    sample_len = train.get("sample_len") or \
        DGConfig.recommended_sample_len(data.schema.max_length,
                                        target_passes=25)
    config = DGConfig(
        sample_len=sample_len,
        attribute_hidden=(width, width), minmax_hidden=(width, width),
        feature_rnn_units=max(width * 3 // 4, 8),
        feature_mlp_hidden=(width,),
        discriminator_hidden=(width, width),
        aux_discriminator_hidden=(width, width),
        batch_size=int(train.get("batch_size", 32)),
        iterations=int(train.get("iterations", 400)),
        seed=int(train.get("seed", 0)),
    )
    model = DoppelGANger(data.schema, config)
    sentinel = None
    if train.get("sentinel"):
        from repro.resilience import SentinelPolicy
        sentinel = SentinelPolicy(
            max_retries=int(train.get("max_retries", 3)))
    resume_from = checkpoint if os.path.exists(checkpoint) else None
    model.fit(data, train_state_path=checkpoint,
              checkpoint_every=int(train.get("checkpoint_every", 25)),
              resume_from=resume_from, sentinel=sentinel)
    return model


def _train_generic(record: JobRecord, data: TimeSeriesDataset):
    """Fit any other registered backend from bench-scale defaults."""
    from repro.experiments.configs import BENCH

    backend = get_backend(record.backend)
    train = record.train
    width = int(train.get("hidden", 32))
    config = backend.make_config(
        "custom", BENCH, seed=int(train.get("seed", 0)),
        iterations=int(train.get("iterations", 400)),
        batch_size=int(train.get("batch_size", 32)),
        hidden=(width, width), generator_hidden=(width, width),
        discriminator_hidden=(width, width))
    model = backend.from_config(data.schema, config)
    backend.fit(model, data)
    return model


def _attach_scores(record: JobRecord, store: JobStore,
                   registry: ModelRegistry, published, blob: bytes):
    """Evaluate the published model and attach its quality scores."""
    from repro.quality import evaluate_model, scores_summary

    opts = record.evaluate
    data = TimeSeriesDataset.load(store.data_path(record.job_id))
    report = evaluate_model(
        blob, data,
        n=int(opts.get("n", min(len(data), 64))),
        seed=int(opts.get("seed", 0)),
        downstream=bool(opts.get("downstream", False)))
    return registry.attach_scores(published, scores_summary(report))


def run_job(job_dir: str, registry_root: str) -> int:
    """Execute one attempt of the job in ``job_dir``; returns exit code."""
    store = JobStore(os.path.dirname(os.path.abspath(job_dir)))
    job_id = os.path.basename(os.path.normpath(job_dir))
    record = store.get(job_id)
    _arm_faults(record)

    if store.read_result(job_id) is not None:
        return 0  # a previous attempt already finished everything

    backend = get_backend(record.backend)
    model_path = store.model_path(job_id)
    if not os.path.exists(model_path):
        data = TimeSeriesDataset.load(store.data_path(job_id))
        events_path = store.events_path(job_id, max(record.attempts, 1))
        with obs_events.capture(obs_events.EventLog(events_path,
                                                    run_id=job_id)):
            if backend.name == "doppelganger":
                model = _train_doppelganger(
                    record, data, store.checkpoint_path(job_id))
            else:
                model = _train_generic(record, data)
        _write_atomic(model_path, backend.save_bytes(model))

    # Publish boundary: a kill here leaves the finished model archive on
    # disk; the relaunch takes the publish-only path above.
    faults.fire("jobs.pre_publish")
    with open(model_path, "rb") as handle:
        blob = handle.read()
    registry = ModelRegistry(registry_root)
    published = registry.publish(record.name, blob,
                                 backend=backend.name,
                                 meta={"job_id": job_id})
    if record.evaluate:
        # Score the published version against the job's own training
        # dataset.  Evaluation is a pure function of (model bytes, data,
        # options), so a crash-and-relaunch re-attaches identical scores
        # -- the step is idempotent like everything else here.
        published = _attach_scores(record, store, registry, published,
                                   blob)
    faults.fire("jobs.pre_receipt")
    receipt = {"spec": published.spec, "name": published.name,
               "version": published.version, "sha256": published.sha256,
               "nbytes": published.nbytes, "backend": published.backend}
    if published.scores is not None:
        receipt["scores"] = published.scores
    _write_atomic(store.result_path(job_id),
                  (json.dumps(receipt, sort_keys=True, indent=2)
                   + "\n").encode("utf-8"))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.worker",
        description="one supervised attempt of a training job")
    parser.add_argument("--job-dir", required=True)
    parser.add_argument("--registry", required=True)
    args = parser.parse_args(argv)
    try:
        return run_job(args.job_dir, args.registry)
    except faults.SimulatedKill as exc:
        # Die like SIGKILL would: no unwinding, no buffered writes.
        print(f"simulated kill: {exc}", file=sys.stderr, flush=True)
        os._exit(KILL_EXIT_CODE)
    except Exception as exc:
        print(f"worker failed: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
