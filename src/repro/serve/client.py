"""Clients for the generation service: socket, in-process, load generator.

:class:`ServeClient` speaks the loopback protocol over a TCP connection;
:class:`InProcessClient` presents the identical API directly over a
:class:`~repro.serve.server.GenerationService` (no sockets -- the
transport tests and the batching benchmark use it to separate scheduler
effects from socket effects).  Both raise :class:`ServerBusy` when the
server sheds a request (backpressure is an *expected* outcome a caller
must handle, not an exotic failure).

:func:`run_load` is the load generator behind
``benchmarks/bench_serving.py`` and ``repro.cli bench-serve``: N client
threads issue M requests each and every per-request latency is recorded,
so throughput and tail latency come from the same run.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.serve import protocol

__all__ = ["ServeError", "ServerBusy", "ServeClient", "InProcessClient",
           "LoadReport", "run_load"]


class ServeError(RuntimeError):
    """An error response from the service; ``code`` is machine-readable."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServerBusy(ServeError):
    """The admission queue was full and the request was shed."""


def _result_dataset(header: dict, payload: bytes) -> TimeSeriesDataset:
    status = header.get("status")
    if status == "ok":
        return protocol.dataset_from_bytes(payload)
    code = header.get("code", protocol.ERR_INTERNAL)
    message = header.get("error", "unknown server error")
    if code == protocol.ERR_BUSY:
        raise ServerBusy(code, message)
    raise ServeError(code, message)


class ServeClient:
    """A blocking client over one TCP connection (reusable, sequential)."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def _call(self, header: dict) -> tuple[dict, bytes]:
        protocol.write_message(self._wfile, header)
        try:
            return protocol.read_message(self._rfile)
        except EOFError:
            raise ServeError(
                protocol.ERR_INTERNAL,
                "server closed the connection without a response") \
                from None

    def ping(self) -> bool:
        header, _ = self._call({"op": "ping"})
        return header.get("status") == "ok"

    def models(self) -> list[dict]:
        header, _ = self._call({"op": "models"})
        if header.get("status") != "ok":
            _result_dataset(header, b"")  # raises the mapped error
        return header["models"]

    def generate(self, model: str, n: int, seed: int = 0
                 ) -> TimeSeriesDataset:
        """Request ``n`` objects from ``model``; deterministic in seed."""
        header, payload = self._call({"op": "generate", "model": model,
                                      "n": int(n), "seed": int(seed)})
        return _result_dataset(header, payload)

    def close(self) -> None:
        for handle in (self._rfile, self._wfile, self._sock):
            try:
                handle.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InProcessClient:
    """The client API bound directly to a service (no sockets)."""

    def __init__(self, service):
        self.service = service

    def ping(self) -> bool:
        header, _ = self.service.handle({"op": "ping"})
        return header.get("status") == "ok"

    def models(self) -> list[dict]:
        header, _ = self.service.handle({"op": "models"})
        return header["models"]

    def generate(self, model: str, n: int, seed: int = 0
                 ) -> TimeSeriesDataset:
        header, payload = self.service.handle(
            {"op": "generate", "model": model, "n": int(n),
             "seed": int(seed)})
        return _result_dataset(header, payload)

    def close(self) -> None:
        pass

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc) -> None:
        pass


# -- load generation ---------------------------------------------------------

@dataclass
class LoadReport:
    """What a :func:`run_load` run measured."""

    concurrency: int
    requests: int
    ok: int
    shed: int
    errors: int
    wall_seconds: float
    latencies: list[float] = field(repr=False, default_factory=list)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second."""
        return self.ok / self.wall_seconds if self.wall_seconds else 0.0

    def latency_percentile(self, q: float) -> float:
        """Seconds at percentile ``q`` (0..100) over completed requests."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    def summary(self) -> dict:
        """JSON-ready digest (used by BENCH_serving.json)."""
        return {
            "concurrency": self.concurrency,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.latency_percentile(50) * 1000.0,
            "p99_ms": self.latency_percentile(99) * 1000.0,
        }


def run_load(client_factory, *, model: str, concurrency: int,
             requests_per_client: int, n: int, seed_base: int = 0,
             retry_shed: bool = False) -> LoadReport:
    """Drive a service with ``concurrency`` threads and measure it.

    Args:
        client_factory: Zero-arg callable building a fresh client per
            thread (socket clients must not be shared across threads).
        model: Model spec to request.
        concurrency: Client threads.
        requests_per_client: Sequential requests per thread.
        n: Objects per request.
        seed_base: Seeds are ``seed_base + thread * requests + i`` --
            unique per request, so any response can be replayed against
            direct generation.
        retry_shed: Retry shed requests (with a short backoff) instead
            of counting them and moving on.
    """
    lock = threading.Lock()
    latencies: list[float] = []
    counts = {"ok": 0, "shed": 0, "errors": 0}
    barrier = threading.Barrier(concurrency + 1)

    def worker(index: int) -> None:
        client = client_factory()
        try:
            barrier.wait()
            for i in range(requests_per_client):
                seed = seed_base + index * requests_per_client + i
                started = time.perf_counter()
                while True:
                    try:
                        client.generate(model, n, seed)
                        elapsed = time.perf_counter() - started
                        with lock:
                            counts["ok"] += 1
                            latencies.append(elapsed)
                    except ServerBusy:
                        if retry_shed:
                            time.sleep(0.002)
                            continue
                        with lock:
                            counts["shed"] += 1
                    except ServeError:
                        with lock:
                            counts["errors"] += 1
                    break
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(concurrency)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return LoadReport(concurrency=concurrency,
                      requests=concurrency * requests_per_client,
                      ok=counts["ok"], shed=counts["shed"],
                      errors=counts["errors"], wall_seconds=wall,
                      latencies=latencies)
