"""Clients for the generation service: socket, in-process, load generator.

:class:`ServeClient` speaks the loopback protocol over a TCP connection;
:class:`InProcessClient` presents the identical API directly over a
:class:`~repro.serve.server.GenerationService` (no sockets -- the
transport tests and the batching benchmark use it to separate scheduler
effects from socket effects).  Both raise :class:`ServerBusy` when the
server sheds a request (backpressure is an *expected* outcome a caller
must handle, not an exotic failure).

Transport failures never leak raw socket exceptions: the client's
``timeout`` bounds the TCP *connect* as well as every read, and a server
that dies mid-request surfaces as a :class:`ServeError` with a
machine-readable ``timeout`` or ``connection`` code.  Connects may also
retry briefly (``connect_retries``) on a deterministic backoff
(:mod:`repro.resilience.retry`) to ride out a server that is still
binding its port.

:func:`run_load` is the load generator behind
``benchmarks/bench_serving.py`` and ``repro.cli bench-serve``: N client
threads issue M requests each and every per-request latency is recorded,
so throughput and tail latency come from the same run.
"""

from __future__ import annotations

import io
import socket
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.resilience.retry import RetryPolicy, retry_call
from repro.serve import protocol

__all__ = ["ServeError", "ServerBusy", "RateLimited", "ServeClient",
           "InProcessClient", "LoadReport", "run_load"]


class ServeError(RuntimeError):
    """An error response from the service; ``code`` is machine-readable."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServerBusy(ServeError):
    """The admission queue was full and the request was shed."""


class RateLimited(ServeError):
    """The fleet router shed the request: client quota exhausted."""


def _result_dataset(header: dict, payload: bytes) -> TimeSeriesDataset:
    status = header.get("status")
    if status == "ok":
        return protocol.dataset_from_bytes(payload)
    _raise_error(header)


def _raise_error(header: dict):
    code = header.get("code", protocol.ERR_INTERNAL)
    message = header.get("error", "unknown server error")
    if code == protocol.ERR_BUSY:
        raise ServerBusy(code, message)
    if code == protocol.ERR_RATE_LIMITED:
        raise RateLimited(code, message)
    raise ServeError(code, message)


def _dataset_bytes(dataset) -> bytes:
    """Accept a TimeSeriesDataset, raw npz bytes, or a file path."""
    if isinstance(dataset, (bytes, bytearray)):
        return bytes(dataset)
    if isinstance(dataset, str):
        with open(dataset, "rb") as handle:
            return handle.read()
    buffer = io.BytesIO()
    dataset.save(buffer)
    return buffer.getvalue()


class _ClientOps:
    """The request API shared by every transport.

    Subclasses provide ``_call(header, payload) -> (header, payload)``.
    """

    def _call(self, header: dict, payload: bytes = b""
              ) -> tuple[dict, bytes]:
        raise NotImplementedError

    def _ok(self, header: dict) -> dict:
        if header.get("status") != "ok":
            _raise_error(header)
        return header

    def ping(self) -> bool:
        header, _ = self._call({"op": "ping"})
        return header.get("status") == "ok"

    def models(self) -> list[dict]:
        return self._ok(self._call({"op": "models"})[0])["models"]

    def generate(self, model: str, n: int, seed: int = 0,
                 client: str | None = None) -> TimeSeriesDataset:
        """Request ``n`` objects from ``model``; deterministic in seed.

        ``client`` is the quota identity a fleet router bills the
        request to (ignored by single servers; unset shares the
        ``anonymous`` bucket).
        """
        header = {"op": "generate", "model": model,
                  "n": int(n), "seed": int(seed)}
        if client is not None:
            header["client"] = str(client)
        header, payload = self._call(header)
        return _result_dataset(header, payload)

    # -- fleet ---------------------------------------------------------------
    def stats(self) -> dict:
        """Server-side counters: cache/metrics on a single server, the
        fleet digest on a router (both under the returned dict)."""
        header = self._ok(self._call({"op": "stats"})[0])
        return {key: value for key, value in header.items()
                if key != "status"}

    def fleet_status(self) -> dict:
        """Replica health, routing totals, aliases, quota config."""
        return self._ok(self._call({"op": "fleet_status"})[0])["fleet"]

    def reload_models(self) -> dict:
        """Ask a fleet router to re-pin ``@latest`` aliases; returns the
        new alias map (the zero-downtime upgrade flip)."""
        return self._ok(self._call({"op": "reload"})[0])["aliases"]

    # -- training jobs -------------------------------------------------------
    def submit_job(self, name: str, dataset, *,
                   backend: str = "doppelganger",
                   train: dict | None = None,
                   max_attempts: int | None = None,
                   faults: list | None = None,
                   evaluate: dict | None = None) -> dict:
        """Submit a training job; returns the queued job's record.

        ``dataset`` may be a :class:`TimeSeriesDataset`, npz bytes, or a
        dataset file path.  ``train`` carries the overrides listed in
        :data:`repro.serve.jobs.TRAIN_KEYS`; ``evaluate`` (keys in
        :data:`repro.serve.jobs.EVALUATE_KEYS`) asks the worker to score
        the published model and attach the scores to its registry
        version; ``faults`` is the test-only fault-injection channel.
        """
        header = {"op": "submit", "name": str(name),
                  "backend": str(backend), "train": dict(train or {})}
        if max_attempts is not None:
            header["max_attempts"] = int(max_attempts)
        if faults:
            header["faults"] = list(faults)
        if evaluate is not None:
            header["evaluate"] = dict(evaluate)
        response, _ = self._call(header, _dataset_bytes(dataset))
        return self._ok(response)["job"]

    def job_status(self, job_id: str) -> dict:
        """Durable record + live telemetry progress of one job."""
        response, _ = self._call({"op": "status",
                                  "job_id": str(job_id)})
        return self._ok(response)["job"]

    def cancel_job(self, job_id: str) -> dict:
        """Cancel a queued or running job (terminal jobs: no-op)."""
        response, _ = self._call({"op": "cancel",
                                  "job_id": str(job_id)})
        return self._ok(response)["job"]

    def jobs(self) -> list[dict]:
        """All job records on the server, in submission order."""
        return self._ok(self._call({"op": "jobs"})[0])["jobs"]


class ServeClient(_ClientOps):
    """A blocking client over one TCP connection (reusable, sequential).

    ``timeout`` bounds the connect *and* every subsequent read;
    ``connect_retries`` extra connection attempts ride out a server
    still binding its port (deterministic backoff, no wall-clock
    randomness).
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0,
                 connect_retries: int = 0):
        self._address = f"{host}:{port}"
        self._timeout = float(timeout)
        policy = RetryPolicy(max_attempts=max(int(connect_retries), 0) + 1,
                             base_delay=0.05, multiplier=2.0,
                             max_delay=1.0)
        try:
            self._sock = retry_call(
                lambda: socket.create_connection((host, port),
                                                 timeout=self._timeout),
                retry_on=(ConnectionRefusedError,), policy=policy)
        except TimeoutError:
            raise ServeError(
                protocol.ERR_TIMEOUT,
                f"connecting to {self._address} timed out after "
                f"{self._timeout}s") from None
        except OSError as exc:
            raise ServeError(
                protocol.ERR_CONNECTION,
                f"cannot connect to {self._address}: {exc}") from None
        # create_connection leaves the timeout on the socket, so reads
        # (and writes) inherit the same bound as the connect.
        self._sock.settimeout(self._timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def _call(self, header: dict, payload: bytes = b""
              ) -> tuple[dict, bytes]:
        try:
            protocol.write_message(self._wfile, header, payload)
            return protocol.read_message(self._rfile)
        except EOFError:
            raise ServeError(
                protocol.ERR_CONNECTION,
                f"server {self._address} closed the connection without "
                f"a response") from None
        except TimeoutError:
            raise ServeError(
                protocol.ERR_TIMEOUT,
                f"no response from {self._address} within "
                f"{self._timeout}s") from None
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise ServeError(
                protocol.ERR_CONNECTION,
                f"connection to {self._address} was lost mid-request "
                f"({exc}); the server likely died") from None
        except OSError as exc:
            raise ServeError(
                protocol.ERR_CONNECTION,
                f"transport failure talking to {self._address}: "
                f"{exc}") from None

    def close(self) -> None:
        for handle in (self._rfile, self._wfile, self._sock):
            try:
                handle.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InProcessClient(_ClientOps):
    """The client API bound directly to a service (no sockets)."""

    def __init__(self, service):
        self.service = service

    def _call(self, header: dict, payload: bytes = b""
              ) -> tuple[dict, bytes]:
        return self.service.handle(header, payload)

    def close(self) -> None:
        pass

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc) -> None:
        pass


# -- load generation ---------------------------------------------------------

@dataclass
class LoadReport:
    """What a :func:`run_load` run measured."""

    concurrency: int
    requests: int
    ok: int
    shed: int
    errors: int
    wall_seconds: float
    latencies: list[float] = field(repr=False, default_factory=list)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second."""
        return self.ok / self.wall_seconds if self.wall_seconds else 0.0

    def latency_percentile(self, q: float) -> float:
        """Seconds at percentile ``q`` (0..100) over completed requests."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    def summary(self) -> dict:
        """JSON-ready digest (used by BENCH_serving.json)."""
        return {
            "concurrency": self.concurrency,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.latency_percentile(50) * 1000.0,
            "p99_ms": self.latency_percentile(99) * 1000.0,
        }


def run_load(client_factory, *, model: str, concurrency: int,
             requests_per_client: int, n: int, seed_base: int = 0,
             retry_shed: bool = False) -> LoadReport:
    """Drive a service with ``concurrency`` threads and measure it.

    Args:
        client_factory: Zero-arg callable building a fresh client per
            thread (socket clients must not be shared across threads).
        model: Model spec to request.
        concurrency: Client threads.
        requests_per_client: Sequential requests per thread.
        n: Objects per request.
        seed_base: Seeds are ``seed_base + thread * requests + i`` --
            unique per request, so any response can be replayed against
            direct generation.
        retry_shed: Retry shed requests (with a short backoff) instead
            of counting them and moving on.
    """
    lock = threading.Lock()
    latencies: list[float] = []
    counts = {"ok": 0, "shed": 0, "errors": 0}
    barrier = threading.Barrier(concurrency + 1)

    def worker(index: int) -> None:
        client = client_factory()
        try:
            barrier.wait()
            for i in range(requests_per_client):
                seed = seed_base + index * requests_per_client + i
                started = time.perf_counter()
                while True:
                    try:
                        client.generate(model, n, seed)
                        elapsed = time.perf_counter() - started
                        with lock:
                            counts["ok"] += 1
                            latencies.append(elapsed)
                    except ServerBusy:
                        if retry_shed:
                            time.sleep(0.002)
                            continue
                        with lock:
                            counts["shed"] += 1
                    except ServeError:
                        with lock:
                            counts["errors"] += 1
                    break
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(concurrency)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return LoadReport(concurrency=concurrency,
                      requests=concurrency * requests_per_client,
                      ok=counts["ok"], shed=counts["shed"],
                      errors=counts["errors"], wall_seconds=wall,
                      latencies=latencies)
