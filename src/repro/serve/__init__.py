"""repro.serve: model registry + micro-batching generation service.

The serving stack between a trained :class:`DoppelGANger` and its
consumers (docs/serving.md):

- :mod:`repro.serve.registry` -- on-disk, versioned, content-addressed
  model storage (``publish`` / ``resolve`` / ``load``).
- :mod:`repro.serve.batcher` -- micro-batching scheduler that coalesces
  concurrent ``generate(n, seed)`` requests while keeping served output
  byte-identical to direct generation.
- :mod:`repro.serve.protocol` -- length-prefixed JSON + npz framing.
- :mod:`repro.serve.server` / :mod:`repro.serve.client` -- threaded
  loopback-socket server with bounded admission and graceful drain, plus
  socket / in-process clients and a load generator.
- :mod:`repro.serve.jobs` / :mod:`repro.serve.worker` -- crash-
  recoverable training-as-a-service: durable job records, a supervisor
  that auto-resumes killed workers from their latest checkpoint, and
  auto-publish of finished models back into the registry.
- :mod:`repro.serve.fleet` -- multi-replica serving: a router over N
  supervised replica processes with deterministic routing, per-worker
  LRU model caches, per-client quotas, and replica-death retry -- all
  byte-identical to a single ``GenerationService``.
- :mod:`repro.serve.bench` -- the BENCH_serving.json benchmark.
"""

from repro.serve.batcher import BatcherClosed, MicroBatcher, QueueFull
from repro.serve.client import (InProcessClient, LoadReport, RateLimited,
                                ServeClient, ServeError, ServerBusy,
                                run_load)
from repro.serve.fleet import (ClientQuotas, Fleet, ModelCache,
                               ReplicaService, TokenBucket, route_index)
from repro.serve.jobs import (JobError, JobRecord, JobStore,
                              JobSupervisor, UnknownJob, job_progress)
from repro.serve.registry import (CorruptModelBlob, ModelNotFound,
                                  ModelRecord, ModelRegistry,
                                  RegistryError)
from repro.serve.server import GenerationService, Server

__all__ = [
    "ModelRegistry", "ModelRecord", "RegistryError", "ModelNotFound",
    "CorruptModelBlob",
    "MicroBatcher", "QueueFull", "BatcherClosed",
    "GenerationService", "Server",
    "ServeClient", "InProcessClient", "ServeError", "ServerBusy",
    "RateLimited",
    "Fleet", "ReplicaService", "ModelCache", "TokenBucket",
    "ClientQuotas", "route_index",
    "JobStore", "JobRecord", "JobSupervisor", "JobError", "UnknownJob",
    "job_progress",
    "LoadReport", "run_load",
]
