"""Cluster-scheduling substrate for the §2.1 "algorithm design" use case.

The paper's first data-driven task: "the design of many resource allocation
algorithms such as cluster scheduling ... often needs workload data to tune
control parameters.  As such, a key property for generated data is that if
algorithm A performs better than algorithm B on the real data, then the
same should hold on the generated data."

This module provides that evaluation end-to-end on GCUT-style traces:

- :class:`Task`/:func:`tasks_from_dataset` convert a
  :class:`~repro.data.dataset.TimeSeriesDataset` into schedulable jobs
  (duration = series length; CPU/memory demand = peak usage);
- a discrete-time :class:`ClusterSimulator` with capacity constraints;
- three classic scheduling policies (FCFS, SJF, best-fit packing);
- :func:`evaluate_schedulers` / :func:`scheduler_ranking`, which score the
  policies on a trace and compare real-vs-synthetic rankings
  (Spearman, as in Table 4).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.metrics.ranking import spearman_rank_correlation

__all__ = [
    "Task", "tasks_from_dataset", "ClusterSimulator", "SchedulerPolicy",
    "FCFSScheduler", "SJFScheduler", "BestFitScheduler", "ScheduleResult",
    "evaluate_schedulers", "scheduler_ranking", "default_schedulers",
]


@dataclass(frozen=True)
class Task:
    """A schedulable job derived from one trace object."""

    task_id: int
    arrival: float
    duration: int
    cpu: float
    memory: float

    def __post_init__(self):
        if self.duration < 1:
            raise ValueError("duration must be >= 1")
        if self.cpu < 0 or self.memory < 0:
            raise ValueError("demands must be non-negative")


def tasks_from_dataset(dataset: TimeSeriesDataset,
                       rng: np.random.Generator,
                       cpu_feature: str = "maximum_cpu_rate",
                       memory_feature: str = "maximum_memory_usage",
                       mean_interarrival: float = 1.0) -> list[Task]:
    """Derive a job list from a (real or synthetic) GCUT-style trace.

    Duration is the series length; CPU/memory demands are the peak values
    of the respective usage features; arrivals are Poisson.
    """
    cpu = dataset.feature_column(cpu_feature)
    mem = dataset.feature_column(memory_feature)
    arrivals = np.cumsum(rng.exponential(mean_interarrival,
                                         size=len(dataset)))
    tasks = []
    for i in range(len(dataset)):
        length = int(dataset.lengths[i])
        tasks.append(Task(
            task_id=i,
            arrival=float(arrivals[i]),
            duration=length,
            cpu=float(np.clip(cpu[i, :length].max(), 1e-3, 1.0)),
            memory=float(np.clip(mem[i, :length].max(), 1e-3, 1.0)),
        ))
    return tasks


class SchedulerPolicy:
    """Order/selection policy: pick the next task to place from a queue."""

    name = "policy"

    def select(self, queue: list[Task], free_cpu: float,
               free_memory: float) -> Task | None:
        """Return the queued task to start now, or None to wait."""
        raise NotImplementedError

    @staticmethod
    def _fits(task: Task, free_cpu: float, free_memory: float) -> bool:
        return task.cpu <= free_cpu + 1e-12 and \
            task.memory <= free_memory + 1e-12


class FCFSScheduler(SchedulerPolicy):
    """First-come-first-served: strictly in arrival order (head-of-line
    blocking included -- that is the point of comparing policies)."""

    name = "FCFS"

    def select(self, queue, free_cpu, free_memory):
        head = queue[0]
        return head if self._fits(head, free_cpu, free_memory) else None


class SJFScheduler(SchedulerPolicy):
    """Shortest-job-first among the queued tasks that fit."""

    name = "SJF"

    def select(self, queue, free_cpu, free_memory):
        fitting = [t for t in queue
                   if self._fits(t, free_cpu, free_memory)]
        if not fitting:
            return None
        return min(fitting, key=lambda t: (t.duration, t.arrival))


class BestFitScheduler(SchedulerPolicy):
    """Best-fit packing: the fitting task leaving the least slack
    (a one-dimensionalised Tetris-style alignment score)."""

    name = "BestFit"

    def select(self, queue, free_cpu, free_memory):
        fitting = [t for t in queue
                   if self._fits(t, free_cpu, free_memory)]
        if not fitting:
            return None
        def slack(task: Task) -> float:
            return (free_cpu - task.cpu) + (free_memory - task.memory)
        return min(fitting, key=lambda t: (slack(t), t.arrival))


@dataclass
class ScheduleResult:
    """Outcome of one simulation run."""

    policy: str
    mean_completion_time: float
    mean_wait_time: float
    makespan: float
    tasks_completed: int


class ClusterSimulator:
    """Discrete-time single-pool cluster with CPU and memory capacity."""

    def __init__(self, cpu_capacity: float = 4.0,
                 memory_capacity: float = 4.0):
        if cpu_capacity <= 0 or memory_capacity <= 0:
            raise ValueError("capacities must be positive")
        self.cpu_capacity = cpu_capacity
        self.memory_capacity = memory_capacity

    def run(self, tasks: list[Task],
            policy: SchedulerPolicy) -> ScheduleResult:
        """Simulate to completion and return aggregate metrics."""
        if not tasks:
            raise ValueError("no tasks to schedule")
        pending = sorted(tasks, key=lambda t: (t.arrival, t.task_id))
        queue: list[Task] = []
        running: list[tuple[float, int, Task]] = []  # (finish, id, task)
        free_cpu = self.cpu_capacity
        free_mem = self.memory_capacity
        time = 0.0
        next_arrival = 0
        waits, completions = [], []

        while pending[next_arrival:] or queue or running:
            # Admit arrivals up to the current time.
            while (next_arrival < len(pending)
                   and pending[next_arrival].arrival <= time + 1e-12):
                queue.append(pending[next_arrival])
                next_arrival += 1
            # Place as many tasks as the policy allows right now.
            while queue:
                chosen = policy.select(queue, free_cpu, free_mem)
                if chosen is None:
                    break
                queue.remove(chosen)
                free_cpu -= chosen.cpu
                free_mem -= chosen.memory
                waits.append(time - chosen.arrival)
                finish = time + chosen.duration
                heapq.heappush(running, (finish, chosen.task_id, chosen))
            # Advance to the next event (arrival or completion).
            candidates = []
            if running:
                candidates.append(running[0][0])
            if next_arrival < len(pending):
                candidates.append(pending[next_arrival].arrival)
            if not candidates:
                break
            time = min(candidates)
            while running and running[0][0] <= time + 1e-12:
                finish, _, task = heapq.heappop(running)
                free_cpu += task.cpu
                free_mem += task.memory
                completions.append(finish - task.arrival)

        return ScheduleResult(
            policy=policy.name,
            mean_completion_time=float(np.mean(completions)),
            mean_wait_time=float(np.mean(waits)),
            makespan=time,
            tasks_completed=len(completions),
        )


def default_schedulers() -> list[SchedulerPolicy]:
    return [FCFSScheduler(), SJFScheduler(), BestFitScheduler()]


def evaluate_schedulers(dataset: TimeSeriesDataset,
                        rng: np.random.Generator,
                        schedulers: list[SchedulerPolicy] | None = None,
                        cpu_capacity: float = 2.0,
                        memory_capacity: float = 2.0,
                        mean_interarrival: float = 0.5
                        ) -> list[ScheduleResult]:
    """Run every policy on jobs derived from ``dataset``."""
    schedulers = schedulers or default_schedulers()
    tasks = tasks_from_dataset(dataset, rng,
                               mean_interarrival=mean_interarrival)
    simulator = ClusterSimulator(cpu_capacity, memory_capacity)
    return [simulator.run(tasks, policy) for policy in schedulers]


def scheduler_ranking(real: TimeSeriesDataset,
                      synthetic: TimeSeriesDataset,
                      rng: np.random.Generator,
                      metric: str = "mean_completion_time",
                      **kwargs) -> tuple[float, list[ScheduleResult],
                                         list[ScheduleResult]]:
    """The §2.1 check: is the policy ranking preserved on synthetic data?

    Returns (Spearman rho between the metric vectors, real results,
    synthetic results); lower metric = better policy, and rho close to 1
    means a designer tuning on synthetic data would pick the same policy.
    """
    seed = int(rng.integers(0, 2 ** 31))
    real_results = evaluate_schedulers(real, np.random.default_rng(seed),
                                       **kwargs)
    syn_results = evaluate_schedulers(synthetic,
                                      np.random.default_rng(seed), **kwargs)
    real_scores = np.array([getattr(r, metric) for r in real_results])
    syn_scores = np.array([getattr(r, metric) for r in syn_results])
    rho = spearman_rank_correlation(real_scores, syn_scores)
    return rho, real_results, syn_results
