"""Systems workloads driven by (real or synthetic) traces (§2.1 use cases)."""

from repro.workloads.provisioning import (CapacityPlan, capacity_plan,
                                           provisioning_error)
from repro.workloads.scheduler import (BestFitScheduler, ClusterSimulator,
                                       FCFSScheduler, ScheduleResult,
                                       SchedulerPolicy, SJFScheduler, Task,
                                       default_schedulers,
                                       evaluate_schedulers,
                                       scheduler_ranking,
                                       tasks_from_dataset)

__all__ = [
    "CapacityPlan", "capacity_plan", "provisioning_error",
    "Task", "tasks_from_dataset", "ClusterSimulator", "SchedulerPolicy",
    "FCFSScheduler", "SJFScheduler", "BestFitScheduler", "ScheduleResult",
    "evaluate_schedulers", "scheduler_ranking", "default_schedulers",
]
