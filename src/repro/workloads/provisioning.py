"""Capacity provisioning from traces (§2.1, "structural characterization").

Network operators provision links from percentile statistics of measured
usage (classic p95 billing/provisioning).  A useful synthetic trace must
yield nearly the same provisioning decisions as the real one.  This module
computes per-group percentile capacity plans from a dataset and compares
the plans produced by real vs synthetic data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import TimeSeriesDataset, padding_mask

__all__ = ["CapacityPlan", "capacity_plan", "provisioning_error"]


@dataclass(frozen=True)
class CapacityPlan:
    """Provisioned capacity per category of a grouping attribute."""

    attribute: str
    feature: str
    percentile: float
    capacities: tuple[float, ...]  # indexed by category

    def capacity_for(self, category_index: int) -> float:
        return self.capacities[category_index]


def capacity_plan(dataset: TimeSeriesDataset, feature: str,
                  group_by: str, percentile: float = 95.0) -> CapacityPlan:
    """Provision each category at the given percentile of per-step usage.

    Args:
        dataset: Measurement trace (real or synthetic).
        feature: The usage feature to provision for (e.g. traffic_bytes).
        group_by: Categorical attribute defining user groups
            (e.g. technology).
        percentile: Provisioning percentile (95 is the industry classic).
    """
    spec = dataset.schema.attribute(group_by)
    if not spec.is_categorical:
        raise ValueError(f"{group_by!r} is not categorical")
    if not 0 < percentile <= 100:
        raise ValueError("percentile must be in (0, 100]")
    usage = dataset.feature_column(feature)
    mask = padding_mask(dataset.lengths, dataset.schema.max_length) > 0
    groups = dataset.attribute_column(group_by).astype(int)
    capacities = []
    for category in range(spec.dimension):
        rows = groups == category
        values = usage[rows][mask[rows]]
        capacities.append(float(np.percentile(values, percentile))
                          if values.size else 0.0)
    return CapacityPlan(attribute=group_by, feature=feature,
                        percentile=percentile,
                        capacities=tuple(capacities))


def provisioning_error(real_plan: CapacityPlan,
                       synthetic_plan: CapacityPlan) -> float:
    """Mean relative capacity error over categories present in real data.

    The §2.1 transfer property for this task: an operator provisioning
    from the synthetic trace should allocate nearly the same capacity as
    one using the real trace.
    """
    if (real_plan.attribute != synthetic_plan.attribute
            or real_plan.feature != synthetic_plan.feature):
        raise ValueError("plans cover different attributes/features")
    errors = []
    for real_cap, syn_cap in zip(real_plan.capacities,
                                 synthetic_plan.capacities):
        if real_cap <= 0:
            continue
        errors.append(abs(syn_cap - real_cap) / real_cap)
    if not errors:
        raise ValueError("no populated categories to compare")
    return float(np.mean(errors))
