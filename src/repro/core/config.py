"""Configuration for DoppelGANger (§4.4 knobs + Appendix B defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DGConfig", "DPTrainingConfig"]


@dataclass
class DPTrainingConfig:
    """DP-SGD settings for discriminator updates (§5.3.1).

    The discriminators are the only networks that touch real data, so DP-SGD
    (per-microbatch clip + Gaussian noise) is applied to their gradients; the
    accountant then yields the (ε, δ) guarantee.
    """

    l2_norm_clip: float = 1.0
    noise_multiplier: float = 1.0
    delta: float = 1e-5
    microbatch_size: int = 1


@dataclass
class DGConfig:
    """Hyper-parameters of the DoppelGANger architecture and training.

    Defaults follow Appendix B; benchmark-scale runs shrink the widths,
    batch size, and iteration counts (see repro.experiments.configs).

    Attributes:
        sample_len: The batching parameter S of §4.1.1 (records emitted per
            RNN pass).  The paper recommends choosing S so that T/S ≈ 50.
        use_minmax_generator: The auto-normalisation mechanism of §4.1.3.
        use_auxiliary_discriminator: The fidelity discriminator of §4.2.
        aux_discriminator_weight: α in the combined loss (Eq. 2).
        gradient_penalty_weight: λ of WGAN-GP (10.0, per [37]).
    """

    # Architecture (Appendix B defaults).
    attribute_noise_dim: int = 5
    feature_noise_dim: int = 5
    attribute_hidden: tuple[int, ...] = (100, 100)
    minmax_hidden: tuple[int, ...] = (100, 100)
    feature_rnn_units: int = 100
    feature_mlp_hidden: tuple[int, ...] = (100,)
    discriminator_hidden: tuple[int, ...] = (200, 200, 200, 200)
    aux_discriminator_hidden: tuple[int, ...] = (200, 200, 200, 200)

    # Design toggles (§4.4).
    sample_len: int = 10
    use_minmax_generator: bool = True
    use_auxiliary_discriminator: bool = True
    aux_discriminator_weight: float = 1.0
    target_range: str = "zero_one"

    # Initialisation: scale applied to the final layer of each generator
    # network.  Values < 1 start sigmoid/softmax outputs near their
    # midpoints, avoiding the saturation trap where WGAN gradients vanish
    # for samples stuck at the output extremes.
    generator_output_scale: float = 1.0

    # Optional soft clamp c*tanh(x/c) on generator pre-activations; keeps
    # sigmoid/softmax outputs away from saturation (None disables).
    generator_logit_bound: float | None = None

    # Training.
    # "wasserstein" (WGAN-GP, the paper's choice, §4.3) or "vanilla"
    # (original cross-entropy GAN loss, kept for the ablation).
    loss_type: str = "wasserstein"
    gradient_penalty_weight: float = 10.0
    learning_rate: float = 1e-3
    # Optional global L2 gradient clipping for both optimizers (None = off).
    gradient_clip_norm: float | None = None
    adam_betas: tuple[float, float] = (0.5, 0.999)
    batch_size: int = 100
    iterations: int = 2000
    discriminator_steps: int = 1
    seed: int = 0

    # Optional differential privacy for discriminator updates.
    dp: DPTrainingConfig | None = None

    def __post_init__(self):
        if self.sample_len < 1:
            raise ValueError("sample_len (S) must be >= 1")
        if self.batch_size < 2:
            raise ValueError("batch_size must be >= 2")
        if not 0 < self.learning_rate:
            raise ValueError("learning_rate must be positive")
        if self.aux_discriminator_weight < 0:
            raise ValueError("aux_discriminator_weight must be >= 0")
        if self.target_range not in ("zero_one", "minus_one_one"):
            raise ValueError("target_range must be 'zero_one' or "
                             "'minus_one_one'")
        if self.generator_output_scale <= 0:
            raise ValueError("generator_output_scale must be positive")
        if self.loss_type not in ("wasserstein", "vanilla"):
            raise ValueError("loss_type must be 'wasserstein' or 'vanilla'")
        if self.iterations < 1:
            raise ValueError(
                f"iterations must be >= 1, got {self.iterations}; a "
                f"non-positive count would silently train for 0 steps")
        if self.discriminator_steps < 1:
            raise ValueError(
                f"discriminator_steps must be >= 1, got "
                f"{self.discriminator_steps}; the WGAN-GP loop needs at "
                f"least one critic update per generator update")

    def validate_for_length(self, max_length: int) -> None:
        """Check S divides the (padded) series length, as §4.1.1 requires."""
        if max_length % self.sample_len != 0:
            raise ValueError(
                f"sample_len S={self.sample_len} must divide the padded "
                f"series length {max_length}")

    @staticmethod
    def recommended_sample_len(max_length: int, target_passes: int = 50
                               ) -> int:
        """The §4.4 recommendation: pick S so that T/S ≈ ``target_passes``."""
        best = 1
        for s in range(1, max_length + 1):
            if max_length % s:
                continue
            if abs(max_length / s - target_passes) < abs(
                    max_length / best - target_passes):
                best = s
        return best
