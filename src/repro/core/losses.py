"""WGAN-GP losses (§4.3, Eq. 2).

The critic loss for each discriminator ``D_i`` is

    L_i = E[D_i(fake)] - E[D_i(real)]
          + λ E[(||∇_x̂ D_i(x̂)||₂ - 1)²],   x̂ = t·real + (1-t)·fake

and the generator minimises ``-E[D_1(fake)] - α·E[D_2(fake_attr)]``.

The gradient penalty needs the gradient of the critic with respect to its
*input* inside the loss graph, which is why :mod:`repro.nn` supports
``create_graph=True`` (double backprop).
"""

from __future__ import annotations

import numpy as np

from repro.nn import Module, Tensor, grad
from repro.nn import functional as F

__all__ = ["critic_loss", "generator_loss", "gradient_penalty",
           "vanilla_discriminator_loss", "vanilla_generator_loss"]


def gradient_penalty(critic: Module, real_flat: Tensor, fake_flat: Tensor,
                     rng: np.random.Generator,
                     t: Tensor | None = None) -> Tensor:
    """WGAN-GP penalty on random interpolates between real and fake.

    ``t`` optionally supplies the pre-drawn ``U(0,1)^{B x 1}`` interpolation
    coefficients; the plan-compiled trainer draws them up front (in the
    historical rng order) so the traced step is a pure array function.
    """
    batch = real_flat.shape[0]
    if t is None:
        t = Tensor(rng.uniform(size=(batch, 1)))
    interpolates = t * real_flat.detach() + (Tensor(1.0) - t) * fake_flat.detach()
    interpolates.requires_grad = True
    scores = critic(interpolates)
    grads = grad(scores.sum(), [interpolates], create_graph=True)[0]
    norms = F.gradient_penalty_norm(grads)
    deviation = norms - Tensor(1.0)
    return (deviation * deviation).mean()


def critic_loss(critic: Module, real_flat: Tensor, fake_flat: Tensor,
                gp_weight: float, rng: np.random.Generator,
                gp_noise: Tensor | None = None) -> Tensor:
    """Full critic objective: Wasserstein estimate + gradient penalty."""
    wasserstein = critic(fake_flat).mean() - critic(real_flat).mean()
    if gp_weight:
        penalty = gradient_penalty(critic, real_flat, fake_flat, rng,
                                   t=gp_noise)
        return wasserstein + Tensor(float(gp_weight)) * penalty
    return wasserstein


def generator_loss(critic: Module, fake_flat: Tensor) -> Tensor:
    """Generator objective against one critic: -E[D(fake)]."""
    return -critic(fake_flat).mean()


def vanilla_discriminator_loss(critic: Module, real_flat: Tensor,
                               fake_flat: Tensor) -> Tensor:
    """Original GAN discriminator loss (Eq. 1), for the §4.3 ablation.

    The paper chose Wasserstein loss because this cross-entropy objective
    is less stable and worse on categorical variables; keeping it available
    lets the ablation be run rather than asserted.
    """
    ones = Tensor(np.ones((real_flat.shape[0], 1)))
    zeros = Tensor(np.zeros((fake_flat.shape[0], 1)))
    return (F.binary_cross_entropy_with_logits(critic(real_flat), ones)
            + F.binary_cross_entropy_with_logits(critic(fake_flat), zeros))


def vanilla_generator_loss(critic: Module, fake_flat: Tensor) -> Tensor:
    """Non-saturating generator loss: maximise log D(fake)."""
    ones = Tensor(np.ones((fake_flat.shape[0], 1)))
    return F.binary_cross_entropy_with_logits(critic(fake_flat), ones)
