"""DoppelGANger core: generators, discriminators, losses, trainer, API."""

from repro.core.config import DGConfig, DPTrainingConfig
from repro.core.discriminator import AuxiliaryDiscriminator, Discriminator
from repro.core.doppelganger import DoppelGANger
from repro.core.generator import (AttributeGenerator, BlockActivation,
                                  FeatureGenerator, MinMaxGenerator,
                                  OutputBlock)
from repro.core.losses import critic_loss, generator_loss, gradient_penalty
from repro.core.trainer import DGTrainer, TrainingHistory

__all__ = [
    "DGConfig", "DPTrainingConfig", "DoppelGANger",
    "AttributeGenerator", "MinMaxGenerator", "FeatureGenerator",
    "OutputBlock", "BlockActivation",
    "Discriminator", "AuxiliaryDiscriminator",
    "critic_loss", "generator_loss", "gradient_penalty",
    "DGTrainer", "TrainingHistory",
]
