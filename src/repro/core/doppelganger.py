"""Public DoppelGANger API.

Implements the workflow of Figure 2: the data holder fits the model on a
:class:`~repro.data.dataset.TimeSeriesDataset`, saves the parameters, and
the data consumer loads them to generate any desired quantity of synthetic
data -- optionally with a chosen attribute distribution (flexibility, §5.2)
or an obfuscated one (business-secret privacy, §5.3.2).
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from repro.core.config import DGConfig, DPTrainingConfig
from repro.core.discriminator import AuxiliaryDiscriminator, Discriminator
from repro.core.generator import (AttributeGenerator, FeatureGenerator,
                                  MinMaxGenerator, OutputBlock,
                                  continuous_kind)
from repro.core.trainer import DGTrainer, TrainingHistory
from repro.data.dataset import TimeSeriesDataset
from repro.data.encoding import DataEncoder
from repro.data.schema import DataSchema, schema_from_dict, schema_to_dict
from repro.nn import Tensor, grad, no_grad

__all__ = ["DoppelGANger"]


class DoppelGANger:
    """The DoppelGANger generative model (Figure 6).

    Typical use::

        model = DoppelGANger(schema, DGConfig(sample_len=5, iterations=400))
        model.fit(train_data)
        synthetic = model.generate(10_000)
    """

    def __init__(self, schema: DataSchema, config: DGConfig | None = None):
        self.schema = schema
        self.config = config or DGConfig()
        self.config.validate_for_length(schema.max_length)
        self.encoder = DataEncoder(
            schema, auto_normalize=self.config.use_minmax_generator,
            target_range=self.config.target_range)
        self._rng = np.random.default_rng(self.config.seed)
        self._built = False
        self.history: TrainingHistory | None = None

    # -- construction ------------------------------------------------------
    def _attribute_blocks(self) -> list[OutputBlock]:
        kind = continuous_kind(self.config.target_range)
        return [OutputBlock(f.dimension, "softmax" if f.is_categorical
                            else kind)
                for f in self.schema.attributes]

    def _feature_blocks(self) -> list[OutputBlock]:
        kind = continuous_kind(self.config.target_range)
        return [OutputBlock(f.dimension, "softmax" if f.is_categorical
                            else kind)
                for f in self.schema.features]

    def _build(self) -> None:
        cfg = self.config
        rng = self._rng
        attr_dim = self.encoder.attribute_dim
        mm_dim = self.encoder.minmax_dim
        feat_dim = self.encoder.feature_dim  # includes the 2 flag channels
        self.attribute_generator = AttributeGenerator(
            self._attribute_blocks(), cfg.attribute_noise_dim,
            cfg.attribute_hidden, rng,
            logit_bound=cfg.generator_logit_bound)
        self.minmax_generator = MinMaxGenerator(
            attr_dim, mm_dim, cfg.attribute_noise_dim, cfg.minmax_hidden,
            cfg.target_range, rng,
            logit_bound=cfg.generator_logit_bound)
        self.feature_generator = FeatureGenerator(
            attr_dim, mm_dim, self._feature_blocks(),
            self.schema.max_length, cfg.sample_len, cfg.feature_noise_dim,
            cfg.feature_rnn_units, cfg.feature_mlp_hidden, rng,
            logit_bound=cfg.generator_logit_bound)
        self.discriminator = Discriminator(
            attr_dim, mm_dim, feat_dim, self.schema.max_length,
            cfg.discriminator_hidden, rng)
        if cfg.generator_output_scale != 1.0:
            heads = [self.feature_generator.head]
            if attr_dim:
                heads.append(self.attribute_generator.mlp)
            if mm_dim:
                heads.append(self.minmax_generator.mlp)
            for mlp in heads:
                mlp.layers[-1].weight.data *= cfg.generator_output_scale
        self.aux_discriminator = None
        if cfg.use_auxiliary_discriminator:
            self.aux_discriminator = AuxiliaryDiscriminator(
                attr_dim, mm_dim, cfg.aux_discriminator_hidden, rng)
        self.trainer = DGTrainer(
            self.attribute_generator, self.minmax_generator,
            self.feature_generator, self.discriminator,
            self.aux_discriminator, cfg, rng)
        self._built = True

    # -- training ------------------------------------------------------------
    def fit(self, dataset: TimeSeriesDataset,
            iterations: int | None = None, log_every: int = 50,
            callback=None, checkpoint_path=None,
            keep_best_by=None, *, train_state_path=None,
            checkpoint_every: int | None = None, resume_from=None,
            sentinel=None) -> TrainingHistory:
        """Train on a raw dataset (encoder is fit here too).

        Args:
            dataset: Training data matching the model schema.
            iterations: Override the configured iteration count.
            log_every: History/callback cadence (in iterations).
            callback: Optional ``callback(iteration, history)``.
            checkpoint_path: If given, the full model is saved here at
                every logging point (and at the end), so long CPU runs can
                be inspected or resumed via :meth:`load`.
            keep_best_by: Optional scoring function
                ``f(model) -> float`` (lower is better) evaluated at each
                logging point; on completion the generator weights of the
                best-scoring snapshot are restored.  GAN sample quality is
                not monotone in training time (the paper's Figure 33), so
                selecting the best snapshot by a fidelity metric -- e.g.
                autocorrelation MSE against the training data -- is often
                better than taking the final iterate.
            train_state_path: Destination for resumable full training
                state (parameters + optimizer moments + RNG + history),
                written atomically every ``checkpoint_every`` iterations.
                Unlike ``checkpoint_path``, resuming from this file
                continues training bit-identically (docs/robustness.md).
            checkpoint_every: Cadence for ``train_state_path`` writes.
            resume_from: A ``train_state_path`` file to resume from.
            sentinel: Divergence sentinel switch/policy (see
                :meth:`repro.core.trainer.DGTrainer.train`).
        """
        if dataset.schema != self.schema:
            raise ValueError("dataset schema does not match model schema")
        self.encoder.fit(dataset)
        if not self._built:
            self._build()
        encoded = self.encoder.transform(dataset)

        best = {"score": np.inf, "state": None}

        def wrapped(iteration, history):
            if callback is not None:
                callback(iteration, history)
            if keep_best_by is not None:
                score = float(keep_best_by(self))
                if score < best["score"]:
                    best["score"] = score
                    best["state"] = {
                        name: module.state_dict()
                        for name, module in self._generator_modules().items()
                    }
            if checkpoint_path is not None:
                self.save(checkpoint_path)

        use_wrapper = (callback is not None or keep_best_by is not None
                       or checkpoint_path is not None)
        self.history = self.trainer.train(
            encoded, iterations=iterations, log_every=log_every,
            callback=wrapped if use_wrapper else None,
            checkpoint_every=checkpoint_every,
            checkpoint_path=train_state_path, resume_from=resume_from,
            sentinel=sentinel)
        if best["state"] is not None:
            for name, module in self._generator_modules().items():
                module.load_state_dict(best["state"][name])
        if checkpoint_path is not None:
            self.save(checkpoint_path)
        return self.history

    def _generator_modules(self) -> dict:
        modules = {"feature_generator": self.feature_generator}
        if self.encoder.attribute_dim:
            modules["attribute_generator"] = self.attribute_generator
        if self.encoder.minmax_dim:
            modules["minmax_generator"] = self.minmax_generator
        return modules

    # -- generation --------------------------------------------------------------
    def generate(self, n: int, rng: np.random.Generator | None = None,
                 attributes: np.ndarray | None = None) -> TimeSeriesDataset:
        """Sample ``n`` synthetic objects.

        Args:
            n: Number of objects to generate.
            rng: Optional generator for reproducible sampling.
            attributes: Optional raw attribute rows (n, m) to condition on
                (the "desired attribute distribution" input of §3.1).
        """
        attrs, minmax, features = self.generate_encoded(n, rng=rng,
                                                        attributes=attributes)
        return self.encoder.inverse(attrs, minmax, features)

    def generate_encoded(self, n: int,
                         rng: np.random.Generator | None = None,
                         attributes: np.ndarray | None = None
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample in the encoded space (used by metrics and tests)."""
        self._require_trained()
        if attributes is not None and len(attributes) != n:
            raise ValueError("attributes must have n rows")
        sampler = self.trainer
        previous_rng = sampler.rng
        if rng is not None:
            sampler.rng = rng
        try:
            chunks_a, chunks_m, chunks_f = [], [], []
            done = 0
            while done < n:
                batch = min(self.config.batch_size, n - done)
                cond = None
                if attributes is not None:
                    cond = Tensor(self.encoder.encode_attributes(
                        attributes[done:done + batch]))
                with no_grad():
                    a, m, f = sampler.generate_batch(batch, attributes=cond)
                chunks_a.append(a.data)
                chunks_m.append(m.data)
                chunks_f.append(f.data)
                done += batch
            return (np.concatenate(chunks_a), np.concatenate(chunks_m),
                    np.concatenate(chunks_f))
        finally:
            sampler.rng = previous_rng

    # -- flexibility / attribute privacy (§5.2, §5.3.2) -----------------------
    def retrain_attribute_generator(
            self, target_attributes: np.ndarray, iterations: int = 200,
            rng: np.random.Generator | None = None) -> list[float]:
        """Re-train only the attribute generator towards a new distribution.

        Per §5.2: generated attribute vectors are fed to the discriminators
        with the time series inputs zeroed, adversarially against "real"
        attribute rows drawn from the caller's target distribution.  The
        feature generator is untouched, so P(features | attributes) is
        preserved.

        Args:
            target_attributes: Raw attribute rows sampled from the desired
                distribution (any number of rows; batches are resampled).
            iterations: Adversarial update rounds.
            rng: Optional randomness source.

        Returns:
            The generator loss trace.
        """
        self._require_trained()
        rng = rng or self._rng
        encoded_target = self.encoder.encode_attributes(target_attributes)
        cfg = self.config
        from repro.nn import Adam  # local import to avoid cycle at top
        attr_params = self.attribute_generator.parameters()
        disc_params = self.discriminator.parameters()
        if self.aux_discriminator is not None:
            disc_params = disc_params + self.aux_discriminator.parameters()
        g_opt = Adam(attr_params, lr=cfg.learning_rate, betas=cfg.adam_betas)
        d_opt = Adam(disc_params, lr=cfg.learning_rate, betas=cfg.adam_betas)

        from repro.core.losses import critic_loss, generator_loss

        batch = min(cfg.batch_size, len(encoded_target))
        mm_dim = self.encoder.minmax_dim
        feat_dim = self.encoder.feature_dim
        tmax = self.schema.max_length
        zeros_mm = Tensor(np.zeros((batch, mm_dim)))
        zeros_feat = Tensor(np.zeros((batch, tmax, feat_dim)))
        losses = []
        for _ in range(iterations):
            idx = rng.integers(0, len(encoded_target), size=batch)
            real_attr = Tensor(encoded_target[idx])
            with no_grad():
                z = self.attribute_generator.sample_noise(batch, rng)
                fake_attr_const = Tensor(self.attribute_generator(z).data)
            # Critic update on (attr, zero minmax, zero features).
            real_flat = self.discriminator.flatten(real_attr, zeros_mm,
                                                   zeros_feat)
            fake_flat = self.discriminator.flatten(fake_attr_const, zeros_mm,
                                                   zeros_feat)
            d_loss = critic_loss(self.discriminator, real_flat, fake_flat,
                                 cfg.gradient_penalty_weight, rng)
            if self.aux_discriminator is not None:
                d_loss = d_loss + Tensor(cfg.aux_discriminator_weight) * \
                    critic_loss(
                        self.aux_discriminator,
                        self.aux_discriminator.flatten(real_attr, zeros_mm),
                        self.aux_discriminator.flatten(fake_attr_const,
                                                       zeros_mm),
                        cfg.gradient_penalty_weight, rng)
            d_opt.step(grad(d_loss, disc_params, allow_unused=True))
            # Generator update.
            z = self.attribute_generator.sample_noise(batch, rng)
            fake_attr = self.attribute_generator(z)
            flat = self.discriminator.flatten(fake_attr, zeros_mm, zeros_feat)
            g_loss = generator_loss(self.discriminator, flat)
            if self.aux_discriminator is not None:
                g_loss = g_loss + Tensor(cfg.aux_discriminator_weight) * \
                    generator_loss(
                        self.aux_discriminator,
                        self.aux_discriminator.flatten(fake_attr, zeros_mm))
            g_opt.step(grad(g_loss, attr_params, allow_unused=True))
            losses.append(g_loss.item())
        return losses

    # -- persistence -----------------------------------------------------------
    def save(self, path) -> None:
        """Persist schema, config, encoder state, and all weights (npz)."""
        self._require_trained()
        meta = {
            "schema": schema_to_dict(self.schema),
            "config": _config_to_dict(self.config),
            "encoder": self.encoder.state(),
        }
        arrays = {"__meta__": np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8)}
        modules = self._named_modules()
        for prefix, module in modules.items():
            for name, value in module.state_dict().items():
                arrays[f"{prefix}::{name}"] = value
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path) -> "DoppelGANger":
        """Restore a model saved by :meth:`save`."""
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["__meta__"].tobytes()).decode())
            weights = {key: archive[key] for key in archive.files
                       if key != "__meta__"}
        schema = schema_from_dict(meta["schema"])
        config = _config_from_dict(meta["config"])
        model = cls(schema, config)
        model.encoder.load_state(meta["encoder"])
        model._build()
        for prefix, module in model._named_modules().items():
            state = {name.split("::", 1)[1]: value
                     for name, value in weights.items()
                     if name.startswith(prefix + "::")}
            module.load_state_dict(state)
        return model

    def _named_modules(self) -> dict:
        modules = {
            "attribute_generator": self.attribute_generator,
            "minmax_generator": self.minmax_generator,
            "feature_generator": self.feature_generator,
            "discriminator": self.discriminator,
        }
        if self.aux_discriminator is not None:
            modules["aux_discriminator"] = self.aux_discriminator
        return modules

    def _require_trained(self) -> None:
        if not self._built:
            raise RuntimeError("model has not been fit() yet")


def _config_to_dict(config: DGConfig) -> dict:
    data = dataclasses.asdict(config)
    return data


def _config_from_dict(data: dict) -> DGConfig:
    data = dict(data)
    dp = data.pop("dp", None)
    config = DGConfig(**{k: tuple(v) if isinstance(v, list) else v
                         for k, v in data.items()})
    if dp is not None:
        config.dp = DPTrainingConfig(**dp)
    return config
