"""Public DoppelGANger API.

Implements the workflow of Figure 2: the data holder fits the model on a
:class:`~repro.data.dataset.TimeSeriesDataset`, saves the parameters, and
the data consumer loads them to generate any desired quantity of synthetic
data -- optionally with a chosen attribute distribution (flexibility, §5.2)
or an obfuscated one (business-secret privacy, §5.3.2).
"""

from __future__ import annotations

import dataclasses
import json
import os
import zipfile

import numpy as np

from repro.core.config import DGConfig, DPTrainingConfig
from repro.core.discriminator import AuxiliaryDiscriminator, Discriminator
from repro.core.generator import (AttributeGenerator, FeatureGenerator,
                                  MinMaxGenerator, OutputBlock,
                                  continuous_kind)
from repro.core.trainer import DGTrainer, TrainingHistory
from repro.data.dataset import TimeSeriesDataset
from repro.data.encoding import DataEncoder
from repro.data.schema import DataSchema, schema_from_dict, schema_to_dict
from repro.nn import Tensor, grad, no_grad

__all__ = ["DoppelGANger", "config_to_dict", "config_from_dict"]


class DoppelGANger:
    """The DoppelGANger generative model (Figure 6).

    Typical use::

        model = DoppelGANger(schema, DGConfig(sample_len=5, iterations=400))
        model.fit(train_data)
        synthetic = model.generate(10_000)
    """

    def __init__(self, schema: DataSchema, config: DGConfig | None = None):
        self.schema = schema
        self.config = config or DGConfig()
        self.config.validate_for_length(schema.max_length)
        self.encoder = DataEncoder(
            schema, auto_normalize=self.config.use_minmax_generator,
            target_range=self.config.target_range)
        self._rng = np.random.default_rng(self.config.seed)
        self._built = False
        self.history: TrainingHistory | None = None

    # -- construction ------------------------------------------------------
    def _attribute_blocks(self) -> list[OutputBlock]:
        kind = continuous_kind(self.config.target_range)
        return [OutputBlock(f.dimension, "softmax" if f.is_categorical
                            else kind)
                for f in self.schema.attributes]

    def _feature_blocks(self) -> list[OutputBlock]:
        kind = continuous_kind(self.config.target_range)
        return [OutputBlock(f.dimension, "softmax" if f.is_categorical
                            else kind)
                for f in self.schema.features]

    def _build(self) -> None:
        cfg = self.config
        rng = self._rng
        attr_dim = self.encoder.attribute_dim
        mm_dim = self.encoder.minmax_dim
        feat_dim = self.encoder.feature_dim  # includes the 2 flag channels
        self.attribute_generator = AttributeGenerator(
            self._attribute_blocks(), cfg.attribute_noise_dim,
            cfg.attribute_hidden, rng,
            logit_bound=cfg.generator_logit_bound)
        self.minmax_generator = MinMaxGenerator(
            attr_dim, mm_dim, cfg.attribute_noise_dim, cfg.minmax_hidden,
            cfg.target_range, rng,
            logit_bound=cfg.generator_logit_bound)
        self.feature_generator = FeatureGenerator(
            attr_dim, mm_dim, self._feature_blocks(),
            self.schema.max_length, cfg.sample_len, cfg.feature_noise_dim,
            cfg.feature_rnn_units, cfg.feature_mlp_hidden, rng,
            logit_bound=cfg.generator_logit_bound)
        self.discriminator = Discriminator(
            attr_dim, mm_dim, feat_dim, self.schema.max_length,
            cfg.discriminator_hidden, rng)
        if cfg.generator_output_scale != 1.0:
            heads = [self.feature_generator.head]
            if attr_dim:
                heads.append(self.attribute_generator.mlp)
            if mm_dim:
                heads.append(self.minmax_generator.mlp)
            for mlp in heads:
                mlp.layers[-1].weight.data *= cfg.generator_output_scale
        self.aux_discriminator = None
        if cfg.use_auxiliary_discriminator:
            self.aux_discriminator = AuxiliaryDiscriminator(
                attr_dim, mm_dim, cfg.aux_discriminator_hidden, rng)
        self.trainer = DGTrainer(
            self.attribute_generator, self.minmax_generator,
            self.feature_generator, self.discriminator,
            self.aux_discriminator, cfg, rng)
        self._built = True

    # -- training ------------------------------------------------------------
    def fit(self, dataset: TimeSeriesDataset,
            iterations: int | None = None, log_every: int = 50,
            callback=None, checkpoint_path=None,
            keep_best_by=None, *, train_state_path=None,
            checkpoint_every: int | None = None, resume_from=None,
            sentinel=None,
            history_window: int | None = None) -> TrainingHistory:
        """Train on a raw dataset (encoder is fit here too).

        Args:
            dataset: Training data matching the model schema.
            iterations: Override the configured iteration count.
            log_every: History/callback cadence (in iterations).
            callback: Optional ``callback(iteration, history)``.
            checkpoint_path: If given, the full model is saved here at
                every logging point (and at the end), so long CPU runs can
                be inspected or resumed via :meth:`load`.
            keep_best_by: Optional scoring function
                ``f(model) -> float`` (lower is better) evaluated at each
                logging point; on completion the generator weights of the
                best-scoring snapshot are restored.  GAN sample quality is
                not monotone in training time (the paper's Figure 33), so
                selecting the best snapshot by a fidelity metric -- e.g.
                autocorrelation MSE against the training data -- is often
                better than taking the final iterate.
            train_state_path: Destination for resumable full training
                state (parameters + optimizer moments + RNG + history),
                written atomically every ``checkpoint_every`` iterations.
                Unlike ``checkpoint_path``, resuming from this file
                continues training bit-identically (docs/robustness.md).
            checkpoint_every: Cadence for ``train_state_path`` writes.
            resume_from: A ``train_state_path`` file to resume from.
            sentinel: Divergence sentinel switch/policy (see
                :meth:`repro.core.trainer.DGTrainer.train`).
            history_window: Bound on retained loss-trace points (see
                :class:`~repro.core.trainer.TrainingHistory.max_points`).
        """
        if dataset.schema != self.schema:
            raise ValueError("dataset schema does not match model schema")
        self.encoder.fit(dataset)
        if not self._built:
            self._build()
        encoded = self.encoder.transform(dataset)

        best = {"score": np.inf, "state": None}

        def wrapped(iteration, history):
            if callback is not None:
                callback(iteration, history)
            if keep_best_by is not None:
                score = float(keep_best_by(self))
                if score < best["score"]:
                    best["score"] = score
                    best["state"] = {
                        name: module.state_dict()
                        for name, module in self._generator_modules().items()
                    }
            if checkpoint_path is not None:
                self.save(checkpoint_path)

        use_wrapper = (callback is not None or keep_best_by is not None
                       or checkpoint_path is not None)
        self.history = self.trainer.train(
            encoded, iterations=iterations, log_every=log_every,
            callback=wrapped if use_wrapper else None,
            checkpoint_every=checkpoint_every,
            checkpoint_path=train_state_path, resume_from=resume_from,
            sentinel=sentinel, history_window=history_window)
        if best["state"] is not None:
            for name, module in self._generator_modules().items():
                module.load_state_dict(best["state"][name])
        if checkpoint_path is not None:
            self.save(checkpoint_path)
        return self.history

    def _generator_modules(self) -> dict:
        modules = {"feature_generator": self.feature_generator}
        if self.encoder.attribute_dim:
            modules["attribute_generator"] = self.attribute_generator
        if self.encoder.minmax_dim:
            modules["minmax_generator"] = self.minmax_generator
        return modules

    # -- generation --------------------------------------------------------------
    def generate(self, n: int, rng: np.random.Generator | None = None,
                 attributes: np.ndarray | None = None,
                 workers: int = 1) -> TimeSeriesDataset:
        """Sample ``n`` synthetic objects.

        Args:
            n: Number of objects to generate.
            rng: Optional generator for reproducible sampling.
            attributes: Optional raw attribute rows (n, m) to condition on
                (the "desired attribute distribution" input of §3.1).
            workers: Worker processes for sharded generation.  The output
                is bit-identical for every worker count (the noise blocks
                are planned before sharding); ``workers > 1`` pays a
                per-worker model-load cost, so it is worthwhile for large
                ``n`` on multi-core machines.
        """
        attrs, minmax, features = self.generate_encoded(
            n, rng=rng, attributes=attributes, workers=workers)
        return self.encoder.inverse(attrs, minmax, features)

    def generate_encoded(self, n: int,
                         rng: np.random.Generator | None = None,
                         attributes: np.ndarray | None = None,
                         workers: int = 1
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample in the encoded space (used by metrics and tests).

        The request is split into fixed blocks of at most ``batch_size``
        samples, and every block's noise is drawn from ``rng`` here, in
        plan order, before any block runs -- exactly the draws a plain
        batched loop would make.  Sharding across ``workers`` therefore
        cannot change the output (docs/architecture.md).
        """
        from repro.observability import events as obs_events
        from repro.parallel.generation import (generate_encoded_sharded,
                                               plan_request)

        self._require_trained()
        base = rng if rng is not None else self._rng
        blocks = plan_request(self, n, base, attributes=attributes)
        # The plan is a pure function of (n, batch_size, conditioning),
        # never of the worker count, so this event is canonical even
        # though execution below may shard.
        obs_events.emit("generation.plan", {
            "n": int(n), "batch_size": int(self.config.batch_size),
            "blocks": len(blocks),
            "conditioned": attributes is not None,
        })
        if workers > 1 and len(blocks) > 1:
            triples = generate_encoded_sharded(self, blocks, workers)
        else:
            triples = [self._generate_block(b.size, b.noise, b.cond)
                       for b in blocks]
        obs_events.emit("generation.finish", {"n": int(n)})
        empty = (np.zeros((0, self.encoder.attribute_dim)),
                 np.zeros((0, self.encoder.minmax_dim)),
                 np.zeros((0, self.schema.max_length,
                           self.encoder.feature_dim)))
        return tuple(np.concatenate([t[i] for t in triples])
                     if triples else empty[i] for i in range(3))

    def _draw_block_noise(self, size: int, rng: np.random.Generator,
                          conditioned: bool) -> tuple:
        """Draw one block's (z_a, z_m, z_f) in the generator's draw order.

        Consumes ``rng`` exactly as an unsharded ``generate_batch`` call
        would (no attribute noise when conditioning), so pre-planning the
        blocks leaves previously-seeded outputs unchanged.
        """
        z_a = None if conditioned else \
            self.attribute_generator.sample_noise(size, rng).data
        z_m = self.minmax_generator.sample_noise(size, rng).data
        z_f = self.feature_generator.sample_noise(size, rng).data
        return (z_a, z_m, z_f)

    def _block_plan(self, attr: str, fn):
        """Lazily build a generation :class:`PlanFunction` (serving hot
        path).  ``copy_outputs=True`` because callers retain the arrays
        across blocks (they are concatenated after all blocks run)."""
        plan = self.__dict__.get(attr)
        if plan is None:
            from repro.nn.plan import PlanFunction
            plan = PlanFunction(fn, params=self.trainer.generator_params,
                                name=attr.strip("_"), copy_outputs=True)
            self.__dict__[attr] = plan
        return plan

    def __getstate__(self):
        # Generation plans hold locks/arenas; sharded generation pickles
        # the model, so drop them (workers re-trace on first block).
        state = self.__dict__.copy()
        for key in ("_gen_plan_uncond", "_gen_plan_cond"):
            state.pop(key, None)
        return state

    def _uncond_block_fn(self, z_a, z_m, z_f):
        with no_grad():
            return self.trainer.generate_batch(
                z_a.shape[0], noise=(z_a, z_m, z_f))

    def _cond_block_fn(self, cond, z_m, z_f):
        with no_grad():
            return self.trainer.generate_batch(
                cond.shape[0], attributes=Tensor(cond),
                noise=(None, z_m, z_f))

    def _generate_block(self, size: int, noise: tuple,
                        cond_encoded: np.ndarray | None
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate one pre-drawn noise block (serial and sharded paths)."""
        z_a, z_m, z_f = noise
        if cond_encoded is not None:
            plan = self._block_plan("_gen_plan_cond", self._cond_block_fn)
            a, m, f = plan((np.asarray(cond_encoded, dtype=np.float64),
                            z_m, z_f))
        else:
            plan = self._block_plan("_gen_plan_uncond", self._uncond_block_fn)
            a, m, f = plan((z_a, z_m, z_f))
        return a, m, f

    # -- flexibility / attribute privacy (§5.2, §5.3.2) -----------------------
    def retrain_attribute_generator(
            self, target_attributes: np.ndarray, iterations: int = 200,
            rng: np.random.Generator | None = None) -> list[float]:
        """Re-train only the attribute generator towards a new distribution.

        Per §5.2: generated attribute vectors are fed to the discriminators
        with the time series inputs zeroed, adversarially against "real"
        attribute rows drawn from the caller's target distribution.  The
        feature generator is untouched, so P(features | attributes) is
        preserved.

        Args:
            target_attributes: Raw attribute rows sampled from the desired
                distribution (any number of rows; batches are resampled).
            iterations: Adversarial update rounds.
            rng: Optional randomness source.

        Returns:
            The generator loss trace.
        """
        self._require_trained()
        rng = rng or self._rng
        encoded_target = self.encoder.encode_attributes(target_attributes)
        cfg = self.config
        from repro.nn import Adam  # local import to avoid cycle at top
        attr_params = self.attribute_generator.parameters()
        disc_params = self.discriminator.parameters()
        if self.aux_discriminator is not None:
            disc_params = disc_params + self.aux_discriminator.parameters()
        g_opt = Adam(attr_params, lr=cfg.learning_rate, betas=cfg.adam_betas)
        d_opt = Adam(disc_params, lr=cfg.learning_rate, betas=cfg.adam_betas)

        from repro.core.losses import critic_loss, generator_loss

        batch = min(cfg.batch_size, len(encoded_target))
        mm_dim = self.encoder.minmax_dim
        feat_dim = self.encoder.feature_dim
        tmax = self.schema.max_length
        zeros_mm = Tensor(np.zeros((batch, mm_dim)))
        zeros_feat = Tensor(np.zeros((batch, tmax, feat_dim)))
        losses = []
        for _ in range(iterations):
            idx = rng.integers(0, len(encoded_target), size=batch)
            real_attr = Tensor(encoded_target[idx])
            with no_grad():
                z = self.attribute_generator.sample_noise(batch, rng)
                fake_attr_const = Tensor(self.attribute_generator(z).data)
            # Critic update on (attr, zero minmax, zero features).
            real_flat = self.discriminator.flatten(real_attr, zeros_mm,
                                                   zeros_feat)
            fake_flat = self.discriminator.flatten(fake_attr_const, zeros_mm,
                                                   zeros_feat)
            d_loss = critic_loss(self.discriminator, real_flat, fake_flat,
                                 cfg.gradient_penalty_weight, rng)
            if self.aux_discriminator is not None:
                d_loss = d_loss + Tensor(cfg.aux_discriminator_weight) * \
                    critic_loss(
                        self.aux_discriminator,
                        self.aux_discriminator.flatten(real_attr, zeros_mm),
                        self.aux_discriminator.flatten(fake_attr_const,
                                                       zeros_mm),
                        cfg.gradient_penalty_weight, rng)
            d_opt.step(grad(d_loss, disc_params, allow_unused=True))
            # Generator update.
            z = self.attribute_generator.sample_noise(batch, rng)
            fake_attr = self.attribute_generator(z)
            flat = self.discriminator.flatten(fake_attr, zeros_mm, zeros_feat)
            g_loss = generator_loss(self.discriminator, flat)
            if self.aux_discriminator is not None:
                g_loss = g_loss + Tensor(cfg.aux_discriminator_weight) * \
                    generator_loss(
                        self.aux_discriminator,
                        self.aux_discriminator.flatten(fake_attr, zeros_mm))
            g_opt.step(grad(g_loss, attr_params, allow_unused=True))
            losses.append(g_loss.item())
        return losses

    # -- persistence -----------------------------------------------------------
    def _state_arrays(self) -> dict:
        """Full model state (meta + weights) as a flat array dict."""
        self._require_trained()
        meta = {
            "schema": schema_to_dict(self.schema),
            "config": config_to_dict(self.config),
            "encoder": self.encoder.state(),
        }
        arrays = {"__meta__": np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8)}
        modules = self._named_modules()
        for prefix, module in modules.items():
            for name, value in module.state_dict().items():
                arrays[f"{prefix}::{name}"] = value
        return arrays

    @classmethod
    def _from_state_arrays(cls, arrays: dict) -> "DoppelGANger":
        """Rebuild a model from the dict produced by :meth:`_state_arrays`."""
        if "__meta__" not in arrays:
            raise ValueError("not a DoppelGANger model archive "
                             "(no __meta__ entry)")
        meta = json.loads(bytes(arrays["__meta__"].tobytes()).decode())
        weights = {key: value for key, value in arrays.items()
                   if key != "__meta__"}
        schema = schema_from_dict(meta["schema"])
        config = config_from_dict(meta["config"])
        model = cls(schema, config)
        model.encoder.load_state(meta["encoder"])
        model._build()
        for prefix, module in model._named_modules().items():
            state = {name.split("::", 1)[1]: value
                     for name, value in weights.items()
                     if name.startswith(prefix + "::")}
            module.load_state_dict(state)
        return model

    def save(self, path) -> None:
        """Persist schema, config, encoder state, and all weights (npz)."""
        np.savez(path, **self._state_arrays())

    @classmethod
    def load(cls, path) -> "DoppelGANger":
        """Restore a model saved by :meth:`save`.

        Missing, truncated, or non-model files raise a clear
        :class:`ValueError` naming the path, instead of a bare numpy or
        zipfile error from deep inside the archive reader.
        """
        try:
            with np.load(path) as archive:
                arrays = {key: archive[key] for key in archive.files}
        except (OSError, EOFError, ValueError, zipfile.BadZipFile) as exc:
            raise ValueError(
                f"cannot read model archive {os.fspath(path)!r}: the file "
                f"is missing, corrupted, or truncated ({exc})") from exc
        if "__meta__" not in arrays:
            raise ValueError(
                f"{os.fspath(path)!r} is not a DoppelGANger model archive "
                f"(no __meta__ entry)")
        return cls._from_state_arrays(arrays)

    def save_bytes(self) -> bytes:
        """Serialize the full model to ``.npz`` bytes (no filesystem).

        This is the payload handed to sharded-generation workers: each
        worker reconstructs the model with :meth:`load_bytes` and draws
        its assigned noise blocks.
        """
        from repro.nn.serialization import arrays_to_bytes
        return arrays_to_bytes(self._state_arrays())

    @classmethod
    def load_bytes(cls, blob: bytes) -> "DoppelGANger":
        """Inverse of :meth:`save_bytes`."""
        from repro.nn.serialization import bytes_to_arrays
        return cls._from_state_arrays(bytes_to_arrays(blob))

    def _named_modules(self) -> dict:
        modules = {
            "attribute_generator": self.attribute_generator,
            "minmax_generator": self.minmax_generator,
            "feature_generator": self.feature_generator,
            "discriminator": self.discriminator,
        }
        if self.aux_discriminator is not None:
            modules["aux_discriminator"] = self.aux_discriminator
        return modules

    def _require_trained(self) -> None:
        if not self._built:
            raise RuntimeError("model has not been fit() yet")


def config_to_dict(config: DGConfig) -> dict:
    """A :class:`DGConfig` as a plain JSON-serializable dict."""
    data = dataclasses.asdict(config)
    return data


def config_from_dict(data: dict) -> DGConfig:
    """Inverse of :func:`config_to_dict` (lists become tuples)."""
    data = dict(data)
    dp = data.pop("dp", None)
    config = DGConfig(**{k: tuple(v) if isinstance(v, list) else v
                         for k, v in data.items()})
    if dp is not None:
        config.dp = DPTrainingConfig(**dp)
    return config
