"""Adversarial training loop for DoppelGANger (§4.3, §4.4).

Alternates critic and generator updates with the combined two-discriminator
loss of Eq. 2.  Optionally applies DP-SGD (per-microbatch clipping + noise)
to the discriminator updates, which are the only updates that touch real
data -- this is the §5.3.1 experiment substrate.

The loop is wired into :mod:`repro.resilience`: ``train`` can write atomic
full-state checkpoints (``checkpoint_every=``/``checkpoint_path=``), resume
from one bit-identically (``resume_from=``), and run under a divergence
sentinel that rolls back to the last good snapshot on NaN/Inf/runaway
losses (``sentinel=``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import profiler as nn_profiler

from repro.core.config import DGConfig
from repro.core.discriminator import AuxiliaryDiscriminator, Discriminator
from repro.core.generator import (AttributeGenerator, FeatureGenerator,
                                  MinMaxGenerator)
from repro.core.losses import (critic_loss, generator_loss,
                               vanilla_discriminator_loss,
                               vanilla_generator_loss)
from repro.data.encoding import EncodedDataset
from repro.nn import Adam, DPGradientProcessor, Tensor, grad, no_grad
from repro.nn.optim import clip_grad_norm, grad_norm
from repro.observability import events as obs_events
from repro.observability import metrics as obs_metrics
from repro.observability.metrics import LOSS_BUCKETS, NORM_BUCKETS
from repro.observability.telemetry import telemetry_active
from repro.resilience import checkpoint as ckpt
from repro.resilience import faults
from repro.resilience.sentinel import (DivergenceDetected,
                                       DivergenceSentinel, TrainingDiverged)

__all__ = ["TrainingHistory", "DGTrainer"]


@dataclass
class TrainingHistory:
    """Loss traces and instability counters recorded during training.

    The counters make instability observable instead of silent: a run that
    finished only because the sentinel rolled back twice reports
    ``rollbacks == 2`` rather than a clean-looking loss trace.

    The loss traces are *windowed*: only the most recent ``max_points``
    recorded points are kept (``None`` disables the bound), so a
    million-iteration run cannot grow memory without limit -- the same
    bounding discipline the harness LRU caches apply.  Trimming is a pure
    function of the append sequence, so checkpoint/resume closes over the
    windowed history exactly.  Full traces belong in the event log.
    """

    iterations: list[int] = field(default_factory=list)
    d_loss: list[float] = field(default_factory=list)
    g_loss: list[float] = field(default_factory=list)
    wasserstein: list[float] = field(default_factory=list)
    max_points: int | None = 4096
    # Per-op {"calls", "seconds"} table, populated by train(profile=True).
    op_profile: dict | None = None

    # Sentinel / resilience counters (survive rollbacks and resumes).
    nan_events: int = 0
    runaway_events: int = 0
    step_faults: int = 0
    rollbacks: int = 0
    lr_decays: int = 0
    resumes: int = 0

    def __post_init__(self):
        if self.max_points is not None and self.max_points < 1:
            raise ValueError("max_points must be >= 1 or None")

    def record(self, iteration: int, d_loss: float, g_loss: float,
               wasserstein: float) -> None:
        self.iterations.append(iteration)
        self.d_loss.append(d_loss)
        self.g_loss.append(g_loss)
        self.wasserstein.append(wasserstein)
        if self.max_points is not None \
                and len(self.iterations) > self.max_points:
            drop = len(self.iterations) - self.max_points
            for trace in (self.iterations, self.d_loss, self.g_loss,
                          self.wasserstein):
                del trace[:drop]

    def note_event(self, reason: str) -> None:
        """Tally one sentinel trigger by reason."""
        if reason == "nan":
            self.nan_events += 1
        elif reason == "runaway":
            self.runaway_events += 1
        else:
            self.step_faults += 1


class DGTrainer:
    """Owns the optimizers and runs the alternating GAN updates."""

    def __init__(self, attribute_generator: AttributeGenerator,
                 minmax_generator: MinMaxGenerator,
                 feature_generator: FeatureGenerator,
                 discriminator: Discriminator,
                 aux_discriminator: AuxiliaryDiscriminator | None,
                 config: DGConfig, rng: np.random.Generator):
        self.attribute_generator = attribute_generator
        self.minmax_generator = minmax_generator
        self.feature_generator = feature_generator
        self.discriminator = discriminator
        self.aux_discriminator = aux_discriminator
        self.config = config
        self.rng = rng

        self.generator_params = (attribute_generator.parameters()
                                 + minmax_generator.parameters()
                                 + feature_generator.parameters())
        self.discriminator_params = discriminator.parameters()
        if aux_discriminator is not None:
            self.discriminator_params += aux_discriminator.parameters()

        self.g_optimizer = Adam(self.generator_params,
                                lr=config.learning_rate,
                                betas=config.adam_betas)
        self.d_optimizer = Adam(self.discriminator_params,
                                lr=config.learning_rate,
                                betas=config.adam_betas)
        # Last applied global gradient norms, captured only while telemetry
        # is active (pure reads -- recording them cannot perturb training).
        self._last_d_grad_norm: float | None = None
        self._last_g_grad_norm: float | None = None
        self._dp_processor = None
        if config.dp is not None:
            self._dp_processor = DPGradientProcessor(
                l2_norm_clip=config.dp.l2_norm_clip,
                noise_multiplier=config.dp.noise_multiplier,
                rng=rng)

    # -- sampling ------------------------------------------------------------
    def generate_batch(self, batch: int,
                       attributes: Tensor | None = None,
                       noise: tuple | None = None
                       ) -> tuple[Tensor, Tensor, Tensor]:
        """Run the full generator stack; returns (attrs, minmax, features).

        ``noise`` optionally supplies pre-drawn ``(z_a, z_m, z_f)`` arrays
        (``z_a`` unused when conditioning on ``attributes``); sharded
        generation draws them in the parent process so the output cannot
        depend on which worker runs which block.
        """
        z_a = z_m = z_f = None
        if noise is not None:
            z_a, z_m, z_f = (Tensor(z) if z is not None else None
                             for z in noise)
        if attributes is None:
            if z_a is None:
                z_a = self.attribute_generator.sample_noise(batch, self.rng)
            attributes = self.attribute_generator(z_a)
        if z_m is None:
            z_m = self.minmax_generator.sample_noise(batch, self.rng)
        minmax = self.minmax_generator(attributes, z_m)
        if z_f is None:
            z_f = self.feature_generator.sample_noise(batch, self.rng)
        features = self.feature_generator(attributes, minmax, z_f)
        return attributes, minmax, features

    def _real_batch(self, data: EncodedDataset, batch: int
                    ) -> tuple[Tensor, Tensor, Tensor]:
        idx = self.rng.integers(0, len(data), size=batch)
        return (Tensor(data.attributes[idx]), Tensor(data.minmax[idx]),
                Tensor(data.features[idx]))

    # -- loss assembly ---------------------------------------------------------
    def _one_critic_loss(self, critic, real_flat, fake_flat,
                         gp_noise: Tensor | None = None) -> Tensor:
        if self.config.loss_type == "vanilla":
            return vanilla_discriminator_loss(critic, real_flat, fake_flat)
        return critic_loss(critic, real_flat, fake_flat,
                           self.config.gradient_penalty_weight, self.rng,
                           gp_noise=gp_noise)

    def _one_generator_loss(self, critic, fake_flat) -> Tensor:
        if self.config.loss_type == "vanilla":
            return vanilla_generator_loss(critic, fake_flat)
        return generator_loss(critic, fake_flat)

    def _combined_critic_loss(self, real, fake, gp_noise=()) -> Tensor:
        """Two-discriminator critic loss (Eq. 2).

        ``gp_noise`` optionally supplies pre-drawn gradient-penalty
        coefficients (main critic first, then aux); when empty each
        penalty draws from ``self.rng`` as before.
        """
        real_attr, real_mm, real_feat = real
        fake_attr, fake_mm, fake_feat = fake
        queue = list(gp_noise)
        real_flat = self.discriminator.flatten(real_attr, real_mm, real_feat)
        fake_flat = self.discriminator.flatten(fake_attr, fake_mm, fake_feat)
        loss = self._one_critic_loss(self.discriminator, real_flat,
                                     fake_flat,
                                     gp_noise=queue.pop(0) if queue
                                     else None)
        if self.aux_discriminator is not None:
            real_aux = self.aux_discriminator.flatten(real_attr, real_mm)
            fake_aux = self.aux_discriminator.flatten(fake_attr, fake_mm)
            aux = self._one_critic_loss(self.aux_discriminator, real_aux,
                                        fake_aux,
                                        gp_noise=queue.pop(0) if queue
                                        else None)
            loss = loss + Tensor(self.config.aux_discriminator_weight) * aux
        return loss

    def _combined_generator_loss(self, fake) -> Tensor:
        fake_attr, fake_mm, fake_feat = fake
        fake_flat = self.discriminator.flatten(fake_attr, fake_mm, fake_feat)
        loss = self._one_generator_loss(self.discriminator, fake_flat)
        if self.aux_discriminator is not None:
            fake_aux = self.aux_discriminator.flatten(fake_attr, fake_mm)
            loss = loss + Tensor(self.config.aux_discriminator_weight) * \
                self._one_generator_loss(self.aux_discriminator, fake_aux)
        return loss

    # -- plan-compiled step functions ------------------------------------------
    #
    # The hot per-iteration work (generator forward, critic losses, double
    # backprop, gradients) is expressed as pure array functions and routed
    # through repro.nn.plan.PlanFunction: the first step with a given batch
    # shape traces eagerly, later steps replay the recorded schedule with
    # no graph rebuild or per-op allocation.  All rng draws happen *before*
    # the planned call, in the exact order the eager code consumed them, so
    # the noise stream (and therefore every loss) is unchanged.  Optimizer
    # updates stay eager: Adam's bias correction changes every iteration,
    # so it is not a fixed schedule.

    def _plan(self, attr: str, fn, **kwargs):
        plan = self.__dict__.get(attr)
        if plan is None:
            from repro.nn.plan import PlanFunction
            plan = PlanFunction(
                fn, params=self.generator_params + self.discriminator_params,
                name=attr.strip("_"), **kwargs)
            self.__dict__[attr] = plan
        return plan

    def __getstate__(self):
        # Plans hold closures, locks, and preallocated arenas -- not
        # picklable and cheap to re-trace.  Dropping them keeps trainer
        # snapshots (SweepCache, sharded generation) working.
        state = self.__dict__.copy()
        for key in ("_d_plan", "_g_plan", "_w_plan"):
            state.pop(key, None)
        return state

    def _draw_step_noise(self, batch: int) -> tuple:
        """(z_a, z_m, z_f) arrays, drawn in the historical rng order."""
        return (self.attribute_generator.sample_noise(batch, self.rng).data,
                self.minmax_generator.sample_noise(batch, self.rng).data,
                self.feature_generator.sample_noise(batch, self.rng).data)

    def _draw_gp_noise(self, batch: int) -> tuple:
        """Pre-draw gradient-penalty coefficients (main critic, then aux),
        matching the draws ``_combined_critic_loss`` would make inline."""
        if self.config.loss_type == "vanilla" or \
                not self.config.gradient_penalty_weight:
            return ()
        ts = [self.rng.uniform(size=(batch, 1))]
        if self.aux_discriminator is not None:
            ts.append(self.rng.uniform(size=(batch, 1)))
        return tuple(ts)

    def _d_step_fn(self, real_attr, real_mm, real_feat, z_a, z_m, z_f,
                   *gp_noise):
        batch = real_attr.shape[0]
        with no_grad():
            fake = self.generate_batch(batch, noise=(z_a, z_m, z_f))
        fake = tuple(part.detach() for part in fake)
        real = (Tensor(real_attr), Tensor(real_mm), Tensor(real_feat))
        loss = self._combined_critic_loss(
            real, fake, gp_noise=tuple(Tensor(t) for t in gp_noise))
        grads = grad(loss, self.discriminator_params, allow_unused=True)
        return (loss,) + fake + tuple(grads)

    def _g_step_fn(self, z_a, z_m, z_f):
        fake = self.generate_batch(z_a.shape[0], noise=(z_a, z_m, z_f))
        loss = self._combined_generator_loss(fake)
        grads = grad(loss, self.generator_params, allow_unused=True)
        return (loss,) + tuple(grads)

    def _w_fn(self, real_attr, real_mm, real_feat, fake_attr, fake_mm,
              fake_feat):
        with no_grad():
            real_flat = self.discriminator.flatten(
                Tensor(real_attr), Tensor(real_mm), Tensor(real_feat))
            fake_flat = self.discriminator.flatten(
                Tensor(fake_attr), Tensor(fake_mm), Tensor(fake_feat))
            return (self.discriminator(real_flat).mean(),
                    self.discriminator(fake_flat).mean())

    # -- update steps ----------------------------------------------------------
    def discriminator_step(self, data: EncodedDataset) -> tuple[float, float]:
        """One critic update; returns (loss, wasserstein estimate)."""
        batch = min(self.config.batch_size, len(data))
        noise = self._draw_step_noise(batch)
        idx = self.rng.integers(0, len(data), size=batch)
        real_arrays = (data.attributes[idx], data.minmax[idx],
                       data.features[idx])

        if self._dp_processor is not None:
            with no_grad():
                fake = self.generate_batch(batch, noise=noise)
            fake = tuple(part.detach() for part in fake)
            real = tuple(Tensor(a) for a in real_arrays)
            return self._dp_discriminator_step(real, fake)

        gp_noise = self._draw_gp_noise(batch)
        outs = self._plan("_d_plan", self._d_step_fn)(
            real_arrays + noise + gp_noise)
        loss_arr, fake_arrays, grads = outs[0], tuple(outs[1:4]), outs[4:]
        if self.config.gradient_clip_norm is not None:
            clip_grad_norm(grads, self.config.gradient_clip_norm)
        if telemetry_active():
            self._last_d_grad_norm = grad_norm(grads)
        self.d_optimizer.step(grads)
        # Post-update Wasserstein estimate, as before; the plan re-reads
        # parameters live, so it sees the optimizer step above.
        rm, fm = self._plan("_w_plan", self._w_fn)(real_arrays + fake_arrays)
        return loss_arr.item(), float(rm.item() - fm.item())

    def _dp_discriminator_step(self, real, fake) -> tuple[float, float]:
        """Critic update with per-microbatch clipping + Gaussian noise."""
        size = self.config.dp.microbatch_size
        batch = real[0].shape[0]
        per_microbatch = []
        losses = []
        for start in range(0, batch, size):
            sl = slice(start, min(start + size, batch))
            real_mb = tuple(Tensor(part.data[sl]) for part in real)
            fake_mb = tuple(Tensor(part.data[sl]) for part in fake)
            loss = self._combined_critic_loss(real_mb, fake_mb)
            grads = grad(loss, self.discriminator_params, allow_unused=True)
            zeros = [np.zeros_like(p.data) for p in self.discriminator_params]
            arrays = [g.data if g is not None else z
                      for g, z in zip(grads, zeros)]
            per_microbatch.append(arrays)
            losses.append(loss.item())
        noised = self._dp_processor.aggregate(per_microbatch)
        if telemetry_active():
            self._last_d_grad_norm = grad_norm(noised)
        self.d_optimizer.step(noised)
        with no_grad():
            w = self._wasserstein_estimate(real, fake)
        return float(np.mean(losses)), w

    def generator_step(self) -> float:
        """One generator update through both critics."""
        noise = self._draw_step_noise(self.config.batch_size)
        outs = self._plan("_g_plan", self._g_step_fn)(noise)
        loss_arr, grads = outs[0], outs[1:]
        if self.config.gradient_clip_norm is not None:
            clip_grad_norm(grads, self.config.gradient_clip_norm)
        if telemetry_active():
            self._last_g_grad_norm = grad_norm(grads)
        self.g_optimizer.step(grads)
        return loss_arr.item()

    def _wasserstein_estimate(self, real, fake) -> float:
        real_flat = self.discriminator.flatten(*real)
        fake_flat = self.discriminator.flatten(*fake)
        return float(self.discriminator(real_flat).mean().item()
                     - self.discriminator(fake_flat).mean().item())

    # -- full loop ---------------------------------------------------------------
    def train(self, data: EncodedDataset, iterations: int | None = None,
              log_every: int = 50,
              callback=None, profile: bool = False,
              checkpoint_every: int | None = None,
              checkpoint_path=None, resume_from=None,
              sentinel=None,
              history_window: int | None = None) -> TrainingHistory:
        """Run the alternating loop for ``iterations`` generator updates.

        With ``profile=True`` the op-level profiler runs for the whole
        loop and its per-op stats are stored on ``history.op_profile``.

        Args:
            checkpoint_every: Write a full-state checkpoint to
                ``checkpoint_path`` every this many completed iterations
                (and once more at the end of training).
            checkpoint_path: Destination for checkpoints (atomic writes).
            resume_from: Path of a checkpoint to resume from; restores
                parameters, Adam moments, RNG state, iteration counter,
                and loss history, so the continued run is bit-identical
                to an uninterrupted one.
            sentinel: ``True``, a :class:`SentinelPolicy`, or a
                :class:`DivergenceSentinel`; enables per-step NaN/Inf and
                runaway-loss detection with rollback + bounded retry.
            history_window: Override the history's ``max_points`` bound
                (``None`` keeps the :class:`TrainingHistory` default).

        When an observability event log is installed
        (:func:`repro.observability.capture`), the loop emits
        ``train.start``, per-iteration ``train.iteration`` (losses, grad
        norms, learning rates), ``sentinel.rollback``, ``checkpoint.save``
        and ``train.finish`` events, and updates the metrics registry.
        Telemetry is *inert*: it reads scalars the loop already computes,
        so trained parameters are bit-identical with telemetry on or off.
        """
        iterations = iterations or self.config.iterations
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if self.config.discriminator_steps < 1:
            raise ValueError("discriminator_steps must be >= 1, got "
                             f"{self.config.discriminator_steps}")
        if self.config.batch_size > len(data):
            raise ValueError(
                f"batch_size={self.config.batch_size} exceeds the dataset "
                f"size ({len(data)} objects); lower batch_size or provide "
                f"more training data")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1, got "
                                 f"{checkpoint_every}")
            if checkpoint_path is None:
                raise ValueError("checkpoint_every requires "
                                 "checkpoint_path")
        sentinel = DivergenceSentinel.coerce(sentinel)

        history = TrainingHistory() if history_window is None \
            else TrainingHistory(max_points=history_window)
        # Exposed immediately (not only on return) so harness code can
        # inspect partial progress after a failure.
        self.history = history
        start_iteration = 0
        if resume_from is not None:
            start_iteration = ckpt.load_checkpoint(self, resume_from,
                                                   history)
            history.resumes += 1
        obs_events.emit("train.start", {
            "iterations": int(iterations),
            "start_iteration": int(start_iteration),
            "batch_size": int(self.config.batch_size),
            "discriminator_steps": int(self.config.discriminator_steps),
            "seed": int(self.config.seed),
            "sentinel": sentinel is not None,
        })
        if profile:
            with nn_profiler.profile() as prof:
                self._train_loop(data, iterations, log_every, callback,
                                 history, start_iteration,
                                 checkpoint_every, checkpoint_path,
                                 sentinel)
            history.op_profile = prof.stats()
            if obs_events.enabled():
                prof.publish(obs_events.emit)
        else:
            self._train_loop(data, iterations, log_every, callback,
                             history, start_iteration, checkpoint_every,
                             checkpoint_path, sentinel)
        obs_events.emit("train.finish", {
            "iterations": int(iterations),
            "rollbacks": history.rollbacks,
            "nan_events": history.nan_events,
            "runaway_events": history.runaway_events,
            "step_faults": history.step_faults,
            "lr_decays": history.lr_decays,
        })
        return history

    def _train_loop(self, data: EncodedDataset, iterations: int,
                    log_every: int, callback, history: TrainingHistory,
                    start_iteration: int = 0,
                    checkpoint_every: int | None = None,
                    checkpoint_path=None,
                    sentinel: DivergenceSentinel | None = None) -> None:
        retries = 0
        last_good = None
        if sentinel is not None:
            last_good = ckpt.snapshot_trainer(self, start_iteration,
                                              history)
        it = start_iteration
        while it < iterations:
            try:
                faults.fire("trainer.step", step=it)
                d_loss = w = 0.0
                for _ in range(self.config.discriminator_steps):
                    d_loss, w = self.discriminator_step(data)
                d_loss = faults.fire("trainer.critic_loss", step=it,
                                     value=d_loss)
                g_loss = self.generator_step()
                g_loss = faults.fire("trainer.generator_loss", step=it,
                                     value=g_loss)
                if sentinel is not None:
                    sentinel.check(it, d_loss, g_loss, w)
            except (DivergenceDetected, faults.FaultInjected,
                    FloatingPointError) as exc:
                if sentinel is None:
                    raise
                reason = getattr(exc, "reason", "step_error")
                history.note_event(reason)
                if retries >= sentinel.policy.max_retries:
                    raise TrainingDiverged(
                        f"training diverged at iteration {it} and the "
                        f"retry budget ({sentinel.policy.max_retries}) is "
                        f"exhausted: {exc}", iteration=it,
                        rollbacks=history.rollbacks) from exc
                failed_at = it
                it = ckpt.restore_trainer(self, last_good, history)
                retries += 1
                history.rollbacks += 1
                factor = 1.0
                if sentinel.policy.lr_decay < 1.0:
                    # Restore reset the lr to the snapshot's value, so
                    # compound the decay over the retries taken since.
                    factor = sentinel.policy.lr_decay ** retries
                    self.g_optimizer.lr *= factor
                    self.d_optimizer.lr *= factor
                    history.lr_decays += 1
                if sentinel.policy.reseed:
                    # Deterministically derived fresh noise path so the
                    # retry does not replay the exact failing batch.
                    self.rng = np.random.default_rng(
                        (self.config.seed, 0x5EED, history.rollbacks))
                # Machine-readable rollback record: previously this was
                # only visible as a counter bump on TrainingHistory.
                obs_events.emit("sentinel.rollback", {
                    "iteration": failed_at,
                    "restored_iteration": it,
                    "trigger": reason,
                    "retries": retries,
                    "lr_decay": factor,
                    "g_lr": float(self.g_optimizer.lr),
                    "d_lr": float(self.d_optimizer.lr),
                    "reseeded": bool(sentinel.policy.reseed),
                })
                obs_metrics.counter("train.rollbacks").inc()
                continue
            if telemetry_active():
                obs_events.emit("train.iteration", {
                    "iteration": it,
                    "d_loss": float(d_loss),
                    "g_loss": float(g_loss),
                    "wasserstein": float(w),
                    "d_grad_norm": self._last_d_grad_norm,
                    "g_grad_norm": self._last_g_grad_norm,
                    "g_lr": float(self.g_optimizer.lr),
                    "d_lr": float(self.d_optimizer.lr),
                })
                obs_metrics.counter("train.iterations").inc()
                obs_metrics.histogram("train.d_loss",
                                      LOSS_BUCKETS).observe(d_loss)
                obs_metrics.histogram("train.g_loss",
                                      LOSS_BUCKETS).observe(g_loss)
                if self._last_d_grad_norm is not None:
                    obs_metrics.histogram(
                        "train.d_grad_norm",
                        NORM_BUCKETS).observe(self._last_d_grad_norm)
                if self._last_g_grad_norm is not None:
                    obs_metrics.histogram(
                        "train.g_grad_norm",
                        NORM_BUCKETS).observe(self._last_g_grad_norm)
                obs_metrics.gauge("train.g_lr").set(self.g_optimizer.lr)
                obs_metrics.gauge("train.d_lr").set(self.d_optimizer.lr)
            if it % log_every == 0 or it == iterations - 1:
                history.record(it, d_loss, g_loss, w)
                if callback is not None:
                    callback(it, history)
            it += 1
            checkpoint_due = checkpoint_every is not None and (
                it % checkpoint_every == 0 or it == iterations)
            snapshot_due = sentinel is not None and (
                it % sentinel.policy.snapshot_every == 0
                or checkpoint_due)
            if not (checkpoint_due or snapshot_due):
                continue
            if sentinel is not None and not ckpt.trainer_params_finite(
                    self):
                # Weights are already poisoned even though the losses
                # still looked finite; keep the older snapshot so the
                # next sentinel trigger rolls back past the damage.
                continue
            if checkpoint_due:
                ckpt.save_checkpoint(self, checkpoint_path, it, history)
            if snapshot_due:
                last_good = ckpt.snapshot_trainer(self, it, history)
                retries = 0
