"""Adversarial training loop for DoppelGANger (§4.3, §4.4).

Alternates critic and generator updates with the combined two-discriminator
loss of Eq. 2.  Optionally applies DP-SGD (per-microbatch clipping + noise)
to the discriminator updates, which are the only updates that touch real
data -- this is the §5.3.1 experiment substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import profiler as nn_profiler

from repro.core.config import DGConfig
from repro.core.discriminator import AuxiliaryDiscriminator, Discriminator
from repro.core.generator import (AttributeGenerator, FeatureGenerator,
                                  MinMaxGenerator)
from repro.core.losses import (critic_loss, generator_loss,
                               vanilla_discriminator_loss,
                               vanilla_generator_loss)
from repro.data.encoding import EncodedDataset
from repro.nn import Adam, DPGradientProcessor, Tensor, grad, no_grad
from repro.nn.optim import clip_grad_norm

__all__ = ["TrainingHistory", "DGTrainer"]


@dataclass
class TrainingHistory:
    """Loss traces recorded during training."""

    iterations: list[int] = field(default_factory=list)
    d_loss: list[float] = field(default_factory=list)
    g_loss: list[float] = field(default_factory=list)
    wasserstein: list[float] = field(default_factory=list)
    # Per-op {"calls", "seconds"} table, populated by train(profile=True).
    op_profile: dict | None = None

    def record(self, iteration: int, d_loss: float, g_loss: float,
               wasserstein: float) -> None:
        self.iterations.append(iteration)
        self.d_loss.append(d_loss)
        self.g_loss.append(g_loss)
        self.wasserstein.append(wasserstein)


class DGTrainer:
    """Owns the optimizers and runs the alternating GAN updates."""

    def __init__(self, attribute_generator: AttributeGenerator,
                 minmax_generator: MinMaxGenerator,
                 feature_generator: FeatureGenerator,
                 discriminator: Discriminator,
                 aux_discriminator: AuxiliaryDiscriminator | None,
                 config: DGConfig, rng: np.random.Generator):
        self.attribute_generator = attribute_generator
        self.minmax_generator = minmax_generator
        self.feature_generator = feature_generator
        self.discriminator = discriminator
        self.aux_discriminator = aux_discriminator
        self.config = config
        self.rng = rng

        self.generator_params = (attribute_generator.parameters()
                                 + minmax_generator.parameters()
                                 + feature_generator.parameters())
        self.discriminator_params = discriminator.parameters()
        if aux_discriminator is not None:
            self.discriminator_params += aux_discriminator.parameters()

        self.g_optimizer = Adam(self.generator_params,
                                lr=config.learning_rate,
                                betas=config.adam_betas)
        self.d_optimizer = Adam(self.discriminator_params,
                                lr=config.learning_rate,
                                betas=config.adam_betas)
        self._dp_processor = None
        if config.dp is not None:
            self._dp_processor = DPGradientProcessor(
                l2_norm_clip=config.dp.l2_norm_clip,
                noise_multiplier=config.dp.noise_multiplier,
                rng=rng)

    # -- sampling ------------------------------------------------------------
    def generate_batch(self, batch: int,
                       attributes: Tensor | None = None
                       ) -> tuple[Tensor, Tensor, Tensor]:
        """Run the full generator stack; returns (attrs, minmax, features)."""
        if attributes is None:
            z_a = self.attribute_generator.sample_noise(batch, self.rng)
            attributes = self.attribute_generator(z_a)
        z_m = self.minmax_generator.sample_noise(batch, self.rng)
        minmax = self.minmax_generator(attributes, z_m)
        z_f = self.feature_generator.sample_noise(batch, self.rng)
        features = self.feature_generator(attributes, minmax, z_f)
        return attributes, minmax, features

    def _real_batch(self, data: EncodedDataset, batch: int
                    ) -> tuple[Tensor, Tensor, Tensor]:
        idx = self.rng.integers(0, len(data), size=batch)
        return (Tensor(data.attributes[idx]), Tensor(data.minmax[idx]),
                Tensor(data.features[idx]))

    # -- loss assembly ---------------------------------------------------------
    def _one_critic_loss(self, critic, real_flat, fake_flat) -> Tensor:
        if self.config.loss_type == "vanilla":
            return vanilla_discriminator_loss(critic, real_flat, fake_flat)
        return critic_loss(critic, real_flat, fake_flat,
                           self.config.gradient_penalty_weight, self.rng)

    def _one_generator_loss(self, critic, fake_flat) -> Tensor:
        if self.config.loss_type == "vanilla":
            return vanilla_generator_loss(critic, fake_flat)
        return generator_loss(critic, fake_flat)

    def _combined_critic_loss(self, real, fake) -> Tensor:
        real_attr, real_mm, real_feat = real
        fake_attr, fake_mm, fake_feat = fake
        real_flat = self.discriminator.flatten(real_attr, real_mm, real_feat)
        fake_flat = self.discriminator.flatten(fake_attr, fake_mm, fake_feat)
        loss = self._one_critic_loss(self.discriminator, real_flat,
                                     fake_flat)
        if self.aux_discriminator is not None:
            real_aux = self.aux_discriminator.flatten(real_attr, real_mm)
            fake_aux = self.aux_discriminator.flatten(fake_attr, fake_mm)
            aux = self._one_critic_loss(self.aux_discriminator, real_aux,
                                        fake_aux)
            loss = loss + Tensor(self.config.aux_discriminator_weight) * aux
        return loss

    def _combined_generator_loss(self, fake) -> Tensor:
        fake_attr, fake_mm, fake_feat = fake
        fake_flat = self.discriminator.flatten(fake_attr, fake_mm, fake_feat)
        loss = self._one_generator_loss(self.discriminator, fake_flat)
        if self.aux_discriminator is not None:
            fake_aux = self.aux_discriminator.flatten(fake_attr, fake_mm)
            loss = loss + Tensor(self.config.aux_discriminator_weight) * \
                self._one_generator_loss(self.aux_discriminator, fake_aux)
        return loss

    # -- update steps ----------------------------------------------------------
    def discriminator_step(self, data: EncodedDataset) -> tuple[float, float]:
        """One critic update; returns (loss, wasserstein estimate)."""
        batch = min(self.config.batch_size, len(data))
        with no_grad():
            fake = self.generate_batch(batch)
        fake = tuple(part.detach() for part in fake)
        real = self._real_batch(data, batch)

        if self._dp_processor is not None:
            return self._dp_discriminator_step(real, fake)

        loss = self._combined_critic_loss(real, fake)
        grads = grad(loss, self.discriminator_params, allow_unused=True)
        if self.config.gradient_clip_norm is not None:
            clip_grad_norm(grads, self.config.gradient_clip_norm)
        self.d_optimizer.step(grads)
        with no_grad():
            w = self._wasserstein_estimate(real, fake)
        return loss.item(), w

    def _dp_discriminator_step(self, real, fake) -> tuple[float, float]:
        """Critic update with per-microbatch clipping + Gaussian noise."""
        size = self.config.dp.microbatch_size
        batch = real[0].shape[0]
        per_microbatch = []
        losses = []
        for start in range(0, batch, size):
            sl = slice(start, min(start + size, batch))
            real_mb = tuple(Tensor(part.data[sl]) for part in real)
            fake_mb = tuple(Tensor(part.data[sl]) for part in fake)
            loss = self._combined_critic_loss(real_mb, fake_mb)
            grads = grad(loss, self.discriminator_params, allow_unused=True)
            zeros = [np.zeros_like(p.data) for p in self.discriminator_params]
            arrays = [g.data if g is not None else z
                      for g, z in zip(grads, zeros)]
            per_microbatch.append(arrays)
            losses.append(loss.item())
        noised = self._dp_processor.aggregate(per_microbatch)
        self.d_optimizer.step(noised)
        with no_grad():
            w = self._wasserstein_estimate(real, fake)
        return float(np.mean(losses)), w

    def generator_step(self) -> float:
        """One generator update through both critics."""
        fake = self.generate_batch(self.config.batch_size)
        loss = self._combined_generator_loss(fake)
        grads = grad(loss, self.generator_params, allow_unused=True)
        if self.config.gradient_clip_norm is not None:
            clip_grad_norm(grads, self.config.gradient_clip_norm)
        self.g_optimizer.step(grads)
        return loss.item()

    def _wasserstein_estimate(self, real, fake) -> float:
        real_flat = self.discriminator.flatten(*real)
        fake_flat = self.discriminator.flatten(*fake)
        return float(self.discriminator(real_flat).mean().item()
                     - self.discriminator(fake_flat).mean().item())

    # -- full loop ---------------------------------------------------------------
    def train(self, data: EncodedDataset, iterations: int | None = None,
              log_every: int = 50,
              callback=None, profile: bool = False) -> TrainingHistory:
        """Run the alternating loop for ``iterations`` generator updates.

        With ``profile=True`` the op-level profiler runs for the whole
        loop and its per-op stats are stored on ``history.op_profile``.
        """
        iterations = iterations or self.config.iterations
        history = TrainingHistory()
        if profile:
            with nn_profiler.profile() as prof:
                self._train_loop(data, iterations, log_every, callback,
                                 history)
            history.op_profile = prof.stats()
        else:
            self._train_loop(data, iterations, log_every, callback, history)
        return history

    def _train_loop(self, data: EncodedDataset, iterations: int,
                    log_every: int, callback, history: TrainingHistory
                    ) -> None:
        for it in range(iterations):
            d_loss = w = 0.0
            for _ in range(self.config.discriminator_steps):
                d_loss, w = self.discriminator_step(data)
            g_loss = self.generator_step()
            if it % log_every == 0 or it == iterations - 1:
                history.record(it, d_loss, g_loss, w)
                if callback is not None:
                    callback(it, history)
