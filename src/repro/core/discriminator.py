"""DoppelGANger discriminators (§4.2).

Both are MLP critics (no output activation -- Wasserstein loss):

- :class:`Discriminator` scores the whole object
  ``[attributes, minmax, flattened features+flags]``.
- :class:`AuxiliaryDiscriminator` scores only ``[attributes, minmax]``; the
  paper introduces it purely to improve fidelity on long objects.

Double-backprop boundary: the WGAN-GP gradient penalty differentiates the
critic twice with respect to its *input*, so everything on the critic path
must stay fully differentiable.  The MLPs here dispatch to the fused
:func:`repro.nn.kernels.linear`, whose VJP is expressed in differentiable
primitives -- unlike the LSTM kernels (closed-form first-order VJPs), which
are safe only because fake samples are detached before entering the critic
loss and the penalty never reaches the generator.
"""

from __future__ import annotations

import numpy as np

from repro.nn import MLP, Module, Tensor, ops

__all__ = ["Discriminator", "AuxiliaryDiscriminator"]


class Discriminator(Module):
    """MLP critic over the full flattened object."""

    def __init__(self, attribute_dim: int, minmax_dim: int, feature_dim: int,
                 max_length: int, hidden: tuple[int, ...],
                 rng: np.random.Generator):
        self.attribute_dim = attribute_dim
        self.minmax_dim = minmax_dim
        self.feature_dim = feature_dim
        self.max_length = max_length
        in_dim = attribute_dim + minmax_dim + feature_dim * max_length
        self.input_dim = in_dim
        self.mlp = MLP(in_dim, list(hidden), 1, rng=rng)

    def forward(self, flat: Tensor) -> Tensor:
        """Score pre-flattened objects, shape (B, input_dim) -> (B, 1)."""
        return self.mlp(flat)

    def flatten(self, attributes: Tensor, minmax: Tensor,
                features: Tensor) -> Tensor:
        """Assemble the critic input from its three parts."""
        batch = attributes.shape[0]
        parts = [attributes]
        if self.minmax_dim:
            parts.append(minmax)
        parts.append(ops.reshape(features,
                                 (batch, self.feature_dim * self.max_length)))
        return ops.concat(parts, axis=1)


class AuxiliaryDiscriminator(Module):
    """MLP critic over attributes (+ min/max attributes) only."""

    def __init__(self, attribute_dim: int, minmax_dim: int,
                 hidden: tuple[int, ...], rng: np.random.Generator):
        self.attribute_dim = attribute_dim
        self.minmax_dim = minmax_dim
        self.input_dim = attribute_dim + minmax_dim
        self.mlp = MLP(self.input_dim, list(hidden), 1, rng=rng)

    def forward(self, flat: Tensor) -> Tensor:
        return self.mlp(flat)

    def flatten(self, attributes: Tensor, minmax: Tensor) -> Tensor:
        if self.minmax_dim:
            return ops.concat([attributes, minmax], axis=1)
        return attributes
