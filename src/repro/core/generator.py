"""DoppelGANger generator networks (§4.1, Figure 6).

Three stages, matching the paper's decoupled design:

1. :class:`AttributeGenerator` -- MLP mapping noise to the (real) attributes.
2. :class:`MinMaxGenerator` -- MLP mapping (attributes, noise) to the two
   "fake" auto-normalisation attributes per continuous feature (§4.1.3).
3. :class:`FeatureGenerator` -- LSTM unrolled T/S times; at each pass an MLP
   head emits a batch of S records plus their generation flags (§4.1.1).
   The generated attributes (and min/max attributes) are fed to the RNN at
   every step, which is how the paper couples features to attributes.

All categorical outputs go through softmax; continuous outputs through
sigmoid (range [0,1]) or tanh (range [-1,1]) matching the encoder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import MLP, LSTMCell, Module, Tensor, kernels, ops
from repro.nn import functional as F

__all__ = ["OutputBlock", "BlockActivation", "AttributeGenerator",
           "MinMaxGenerator", "FeatureGenerator"]


@dataclass(frozen=True)
class OutputBlock:
    """One contiguous slice of a network output with its own activation."""

    dimension: int
    kind: str  # "softmax" | "sigmoid" | "tanh"

    def __post_init__(self):
        if self.kind not in ("softmax", "sigmoid", "tanh"):
            raise ValueError(f"unknown output block kind {self.kind!r}")
        if self.dimension < 1:
            raise ValueError("block dimension must be >= 1")


class BlockActivation:
    """Applies per-block activations over the last axis of a tensor.

    ``logit_bound`` optionally squashes pre-activations through
    ``c * tanh(x / c)`` first.  This keeps sigmoid/softmax outputs away
    from their saturated extremes, where WGAN gradients through the
    generator would otherwise vanish and trap samples at 0/1 -- a failure
    mode that shows up on heavy-tailed min/max attributes at small
    training scale.
    """

    def __init__(self, blocks: list[OutputBlock],
                 logit_bound: float | None = None):
        self.blocks = list(blocks)
        self.dimension = sum(b.dimension for b in blocks)
        if logit_bound is not None and logit_bound <= 0:
            raise ValueError("logit_bound must be positive")
        self.logit_bound = logit_bound

    def __call__(self, x: Tensor) -> Tensor:
        if self.logit_bound is not None:
            bound = Tensor(float(self.logit_bound))
            x = bound * ops.tanh(x / bound)
        outputs = []
        offset = 0
        for block in self.blocks:
            piece = x[..., offset:offset + block.dimension]
            offset += block.dimension
            if block.kind == "softmax":
                outputs.append(F.softmax(piece, axis=-1))
            elif block.kind == "sigmoid":
                outputs.append(ops.sigmoid(piece))
            else:
                outputs.append(ops.tanh(piece))
        return ops.concat(outputs, axis=-1)


def continuous_kind(target_range: str) -> str:
    return "sigmoid" if target_range == "zero_one" else "tanh"


class AttributeGenerator(Module):
    """MLP: noise (B, Z_a) -> encoded attributes (B, A).

    Datasets with no attributes (m = 0, allowed by the §3 abstraction) get
    a degenerate generator emitting width-0 tensors.
    """

    def __init__(self, blocks: list[OutputBlock], noise_dim: int,
                 hidden: tuple[int, ...], rng: np.random.Generator,
                 logit_bound: float | None = None):
        self.noise_dim = noise_dim
        self.activation = BlockActivation(blocks, logit_bound=logit_bound)
        if self.activation.dimension:
            self.mlp = MLP(noise_dim, list(hidden),
                           self.activation.dimension, rng=rng)

    def forward(self, z: Tensor) -> Tensor:
        if not self.activation.dimension:
            return Tensor(np.zeros((z.shape[0], 0)))
        return self.activation(self.mlp(z))

    def sample_noise(self, batch: int, rng: np.random.Generator) -> Tensor:
        return Tensor(rng.normal(size=(batch, self.noise_dim)))


class MinMaxGenerator(Module):
    """MLP: (attributes, noise) -> the 2C min/max fake attributes (§4.1.3)."""

    def __init__(self, attribute_dim: int, minmax_dim: int, noise_dim: int,
                 hidden: tuple[int, ...], target_range: str,
                 rng: np.random.Generator,
                 logit_bound: float | None = None):
        self.noise_dim = noise_dim
        kind = continuous_kind(target_range)
        self.activation = BlockActivation(
            [OutputBlock(minmax_dim, kind)] if minmax_dim else [],
            logit_bound=logit_bound)
        self.minmax_dim = minmax_dim
        if minmax_dim:
            self.mlp = MLP(attribute_dim + noise_dim, list(hidden),
                           minmax_dim, rng=rng)

    def forward(self, attributes: Tensor, z: Tensor) -> Tensor:
        if not self.minmax_dim:
            return Tensor(np.zeros((attributes.shape[0], 0)))
        return self.activation(self.mlp(ops.concat([attributes, z], axis=1)))

    def sample_noise(self, batch: int, rng: np.random.Generator) -> Tensor:
        return Tensor(rng.normal(size=(batch, self.noise_dim)))


class FeatureGenerator(Module):
    """LSTM + batched MLP head emitting S records per pass (§4.1.1).

    Per-pass input: [attributes, minmax, z_t]; per-pass output: S records,
    each the concatenation of per-feature blocks plus a 2-way softmax
    generation flag.
    """

    def __init__(self, attribute_dim: int, minmax_dim: int,
                 feature_blocks: list[OutputBlock], max_length: int,
                 sample_len: int, noise_dim: int, rnn_units: int,
                 mlp_hidden: tuple[int, ...], rng: np.random.Generator,
                 logit_bound: float | None = None):
        if max_length % sample_len:
            raise ValueError("sample_len must divide max_length")
        self.max_length = max_length
        self.sample_len = sample_len
        self.noise_dim = noise_dim
        self.passes = max_length // sample_len
        # Step layout: feature blocks then the generation-flag softmax.
        step_blocks = list(feature_blocks) + [OutputBlock(2, "softmax")]
        self.step_dim = sum(b.dimension for b in step_blocks)
        self.activation = BlockActivation(step_blocks * sample_len,
                                          logit_bound=logit_bound)
        self.cell = LSTMCell(attribute_dim + minmax_dim + noise_dim,
                             rnn_units, rng=rng)
        self.head = MLP(rnn_units, list(mlp_hidden),
                        sample_len * self.step_dim, rng=rng)

    def forward(self, attributes: Tensor, minmax: Tensor,
                z_seq: Tensor) -> Tensor:
        """Generate the full padded series, shape (B, T, step_dim).

        Args:
            attributes: (B, A) encoded attributes (generated or supplied).
            minmax: (B, M) encoded min/max attributes (may be width 0).
            z_seq: (B, passes, Z_f) per-pass noise.
        """
        batch = attributes.shape[0]
        state = self.cell.initial_state(batch)
        conditioning = (ops.concat([attributes, minmax], axis=1)
                        if minmax.shape[1] else attributes)
        if kernels.fused_enabled():
            # Fused path: the per-pass inputs depend only on the (constant)
            # conditioning and the pre-drawn noise, never on earlier
            # outputs, so the whole scan runs as one lstm_sequence node and
            # the MLP head + activations apply to all passes in one batch.
            h0, c0 = state
            cond_dim = conditioning.shape[1]
            cond_seq = ops.broadcast_to(
                ops.reshape(conditioning, (batch, 1, cond_dim)),
                (batch, self.passes, cond_dim))
            inputs = ops.concat([cond_seq, z_seq], axis=2)
            h_seq = kernels.lstm_sequence(
                inputs, h0, c0, self.cell.weight_ih, self.cell.weight_hh,
                self.cell.bias)
            flat_h = ops.reshape(h_seq, (batch * self.passes, -1))
            out = self.activation(self.head(flat_h))
            return ops.reshape(out, (batch, self.max_length, self.step_dim))
        chunks = []
        for p in range(self.passes):
            step_in = ops.concat([conditioning, z_seq[:, p, :]], axis=1)
            h, c = self.cell(step_in, state)
            state = (h, c)
            out = self.activation(self.head(h))
            chunks.append(ops.reshape(out, (batch, self.sample_len,
                                            self.step_dim)))
        return ops.concat(chunks, axis=1)

    def sample_noise(self, batch: int, rng: np.random.Generator) -> Tensor:
        return Tensor(rng.normal(size=(batch, self.passes, self.noise_dim)))
