"""Deterministic markdown dashboard for a telemetry run.

:func:`render_run_report` is the observability sibling of
:func:`repro.experiments.report.render_sweep_report`: a pure function of
the canonical event list and the merged metric dump, with no timestamps,
timings, or process ids, so a serial and a 2-worker run of the same sweep
render byte-identical reports.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter

__all__ = ["render_run_report"]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_run_report(events, metrics: dict | None = None,
                      title: str = "Run report") -> str:
    """Render canonical events + merged metrics as a markdown dashboard.

    Sections (each omitted when empty): event counts by kind, per-cell
    training summaries, sentinel interventions, cache behaviour, and the
    metric registry (counters, gauges, histograms).
    """
    events = list(events)
    metrics = metrics or {}
    lines = [f"# {title}", "", f"- events: {len(events)}"]
    cells = sorted({e.cell for e in events if e.cell is not None})
    if cells:
        lines.append(f"- cells: {len(cells)}")
    lines.append("")

    kinds = _TallyCounter(e.kind for e in events)
    if kinds:
        lines += ["## Event counts", "", "| kind | count |", "|---|---|"]
        lines += [f"| {kind} | {kinds[kind]} |" for kind in sorted(kinds)]
        lines.append("")

    # Per-cell (or run-level) training summaries from train.* events.
    groups = sorted({e.cell for e in events
                     if e.kind.startswith("train.")},
                    key=lambda c: (c is not None, c))
    rows = []
    for cell in groups:
        steps = [e for e in events
                 if e.cell == cell and e.kind == "train.iteration"]
        finishes = [e for e in events
                    if e.cell == cell and e.kind == "train.finish"]
        rollbacks = sum(1 for e in events
                        if e.cell == cell and e.kind == "sentinel.rollback")
        if not steps and not finishes:
            continue
        last = steps[-1].payload if steps else {}
        rows.append([cell if cell is not None else "(run)", len(steps),
                     _fmt(last.get("d_loss", "-")),
                     _fmt(last.get("g_loss", "-")),
                     _fmt(last.get("wasserstein", "-")), rollbacks])
    if rows:
        lines += ["## Training", "",
                  "| cell | iterations | final d_loss | final g_loss | "
                  "final wasserstein | rollbacks |",
                  "|---|---|---|---|---|---|"]
        lines += ["| " + " | ".join(str(v) for v in row) + " |"
                  for row in rows]
        lines.append("")

    sentinel = [e for e in events if e.kind == "sentinel.rollback"]
    if sentinel:
        lines += ["## Sentinel interventions", "",
                  "| cell | iteration | trigger | restored to | "
                  "lr decay |",
                  "|---|---|---|---|---|"]
        for e in sentinel:
            p = e.payload
            lines.append(
                f"| {e.cell if e.cell is not None else '(run)'} | "
                f"{p.get('iteration', '-')} | {p.get('trigger', '-')} | "
                f"{p.get('restored_iteration', '-')} | "
                f"{_fmt(p.get('lr_decay', '-'))} |")
        lines.append("")

    hits = sum(1 for e in events if e.kind == "cache.hit")
    misses = sum(1 for e in events if e.kind == "cache.miss")
    if hits or misses:
        lines += ["## Sweep cache", "",
                  f"- hits: {hits}", f"- misses: {misses}", ""]

    failures = [e for e in events if e.kind == "cell.failure"]
    if failures:
        lines += ["## Cell failures", "",
                  "| cell | exception | iteration | retries |",
                  "|---|---|---|---|"]
        for e in failures:
            p = e.payload
            lines.append(f"| {e.cell} | {p.get('exception_type', '-')} | "
                         f"{p.get('iteration', '-')} | "
                         f"{p.get('retries', 0)} |")
        lines.append("")

    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    if counters or gauges:
        lines += ["## Metrics", "", "| metric | value |", "|---|---|"]
        lines += [f"| {name} | {counters[name]} |"
                  for name in sorted(counters)]
        lines += [f"| {name} | {_fmt(gauges[name])} |"
                  for name in sorted(gauges)]
        lines.append("")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines += ["## Histograms", "",
                  "| histogram | count | total | buckets |", "|---|---|---|---|"]
        for name in sorted(histograms):
            h = histograms[name]
            buckets = " ".join(str(int(c)) for c in h["counts"])
            lines.append(f"| {name} | {h['count']} | {_fmt(h['total'])} | "
                         f"{buckets} |")
        lines.append("")
    return "\n".join(lines)
