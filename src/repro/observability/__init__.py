"""Unified observability layer: metrics registry, event log, exporters.

The paper's workflow is comparing many GAN variants and diagnosing
architecture-level failures (mode collapse without auto-normalization,
divergence under DP-SGD).  Those diagnoses need *data*, not reruns with
print statements, so every production layer reports into this package:

- :mod:`repro.observability.metrics` -- process-local counters, gauges,
  and fixed-bucket histograms, no-ops when disabled;
- :mod:`repro.observability.events` -- a run-scoped JSONL event log with
  monotonic sequence numbers and a deterministic canonical export;
- :mod:`repro.observability.telemetry` -- the run-directory layout and
  cross-process aggregation (workers write per-cell files, the parent
  merges them in cell order);
- :mod:`repro.observability.report` -- the deterministic markdown
  dashboard (:func:`render_run_report`).

Two invariants every emitter must preserve (enforced by
``tests/properties``):

1. **Inert**: collecting telemetry never changes what is computed --
   trained parameters are bit-identical with telemetry on or off.
2. **Deterministic**: the canonical exports are pure functions of
   (config, seed, data) and invariant to the worker count.
"""

from repro.observability.events import (Event, EventLog, capture,
                                        emit, merge_event_logs,
                                        read_events, write_canonical)
from repro.observability.events import enabled as events_enabled
from repro.observability.metrics import (LATENCY_BUCKETS, LOSS_BUCKETS,
                                         NORM_BUCKETS, SECONDS_BUCKETS,
                                         Counter, Gauge, Histogram,
                                         MetricsRegistry, counter, gauge,
                                         histogram, merge_dumps, use)
from repro.observability.metrics import enabled as metrics_enabled
from repro.observability.report import render_run_report
from repro.observability.telemetry import (TelemetryRun, cell_log_path,
                                           cell_metrics_path, cell_slug,
                                           telemetry_active,
                                           write_cell_metrics)

__all__ = [
    "Event", "EventLog", "capture", "emit", "events_enabled",
    "merge_event_logs", "read_events", "write_canonical",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "counter",
    "gauge", "histogram", "merge_dumps", "use", "metrics_enabled",
    "LATENCY_BUCKETS", "LOSS_BUCKETS", "NORM_BUCKETS", "SECONDS_BUCKETS",
    "render_run_report",
    "TelemetryRun", "cell_log_path", "cell_metrics_path", "cell_slug",
    "telemetry_active", "write_cell_metrics",
]
