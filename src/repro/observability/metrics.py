"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

Diagnosing GAN training failures (mode collapse, DP-SGD divergence) means
comparing *numbers* across many runs, and those numbers must be cheap to
collect and deterministic to export.  The registry here is deliberately
boring:

- **Counters** accumulate exact integers (Python ints never overflow and
  never drift the way repeated float adds do; histograms use ``int64``
  bucket counts for the same reason).
- **Gauges** hold the latest value of a scalar (e.g. the current learning
  rate).
- **Histograms** have *fixed* bucket edges declared at creation, with
  left-closed buckets (a value equal to an edge lands in the bucket that
  *starts* at that edge), so two runs observing the same values produce
  byte-identical dumps -- no adaptive binning.

Instrumented code never talks to a registry directly; it calls the
module-level accessors (:func:`counter`, :func:`gauge`, :func:`histogram`)
which resolve against the *current* registry.  When no registry is
installed (the default) the accessors return shared no-op instruments, so
disabled telemetry costs one ``None`` check per instrument fetch.

A registry is installed for a scope with :func:`use`::

    registry = MetricsRegistry()
    with use(registry):
        train(...)
    print(registry.dump())
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "use", "current", "enabled", "counter", "gauge", "histogram",
           "LOSS_BUCKETS", "NORM_BUCKETS", "SECONDS_BUCKETS",
           "LATENCY_BUCKETS"]

# Standard fixed edge sets used by the built-in instrumentation.  Fixed and
# shared so every run's histogram dumps line up bucket-for-bucket.
LOSS_BUCKETS = (-100.0, -10.0, -1.0, -0.1, 0.0, 0.1, 1.0, 10.0, 100.0)
NORM_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)
SECONDS_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)
# Request latencies (repro.serve) live between ~0.5 ms and a few seconds
# on the CPU substrate; SECONDS_BUCKETS is too coarse to see batching
# effects there.
LATENCY_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                   30.0)


class Counter:
    """A monotonically increasing exact integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (a non-negative integer; floats are rejected because
        repeated float addition drifts past 2**53)."""
        if not isinstance(n, (int, np.integer)):
            raise TypeError(f"counter increment must be an integer, "
                            f"got {type(n).__name__}")
        if n < 0:
            raise ValueError("counter increments must be >= 0")
        self.value += int(n)


class Gauge:
    """The most recent value of a scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-edge histogram with left-closed buckets and int64 counts.

    ``edges`` (strictly increasing) split the real line into
    ``len(edges) + 1`` buckets::

        (-inf, e0) [e0, e1) [e1, e2) ... [e_last, +inf)

    A value exactly equal to an edge is counted in the bucket that starts
    at that edge (left-closed), so boundary placement is deterministic.
    """

    __slots__ = ("name", "edges", "counts", "total")

    def __init__(self, name: str, edges):
        edges = tuple(float(e) for e in edges)
        if len(edges) < 1:
            raise ValueError("histogram needs at least one edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"histogram edges must be strictly "
                             f"increasing, got {edges}")
        self.name = name
        self.edges = edges
        self.counts = np.zeros(len(edges) + 1, dtype=np.int64)
        self.total = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        # side="right" counts edges <= value, which is exactly the
        # left-closed bucket index: value == edges[i] -> bucket i + 1.
        self.counts[int(np.searchsorted(self.edges, value,
                                        side="right"))] += 1
        self.total += value

    @property
    def count(self) -> int:
        return int(self.counts.sum())

    def bucket_of(self, value: float) -> int:
        """The bucket index ``observe(value)`` would increment."""
        return int(np.searchsorted(self.edges, float(value), side="right"))


class _NullCounter:
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments for one telemetry scope (process or sweep cell)."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument creation -------------------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, edges) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, edges)
        elif inst.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already registered with edges "
                f"{inst.edges}, got {tuple(edges)}")
        return inst

    # -- export --------------------------------------------------------------
    def dump(self) -> dict:
        """Deterministic plain-dict snapshot (names sorted, JSON-safe)."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {
                name: {
                    "edges": list(h.edges),
                    "counts": [int(c) for c in h.counts],
                    "count": h.count,
                    "total": h.total,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def merge_dumps(dumps: list[dict]) -> dict:
    """Sum counters/histograms across dumps; gauges take the last value.

    Used by the cross-process aggregation step: per-cell registries are
    dumped where they ran and merged in cell order, so the merged dump is
    worker-count invariant.
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for dump in dumps:
        for name, value in dump.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) \
                + int(value)
        for name, value in dump.get("gauges", {}).items():
            merged["gauges"][name] = value
        for name, hist in dump.get("histograms", {}).items():
            seen = merged["histograms"].get(name)
            if seen is None:
                merged["histograms"][name] = {
                    "edges": list(hist["edges"]),
                    "counts": [int(c) for c in hist["counts"]],
                    "count": int(hist["count"]),
                    "total": float(hist["total"]),
                }
                continue
            if seen["edges"] != list(hist["edges"]):
                raise ValueError(f"histogram {name!r} has mismatched "
                                 f"edges across dumps")
            seen["counts"] = [a + int(b) for a, b in
                              zip(seen["counts"], hist["counts"])]
            seen["count"] += int(hist["count"])
            seen["total"] += float(hist["total"])
    for section in ("counters", "gauges", "histograms"):
        merged[section] = dict(sorted(merged[section].items()))
    return merged


__all__.append("merge_dumps")

# -- current registry --------------------------------------------------------

_CURRENT: MetricsRegistry | None = None


def current() -> MetricsRegistry | None:
    """The installed registry, or None when metrics are disabled."""
    return _CURRENT


def enabled() -> bool:
    """Whether a registry is currently collecting."""
    return _CURRENT is not None


@contextlib.contextmanager
def use(registry: MetricsRegistry | None):
    """Install ``registry`` as the collection target for the block."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = registry
    try:
        yield registry
    finally:
        _CURRENT = previous


def counter(name: str):
    """The named counter of the current registry (no-op when disabled)."""
    if _CURRENT is None:
        return _NULL_COUNTER
    return _CURRENT.counter(name)


def gauge(name: str):
    """The named gauge of the current registry (no-op when disabled)."""
    if _CURRENT is None:
        return _NULL_GAUGE
    return _CURRENT.gauge(name)


def histogram(name: str, edges):
    """The named histogram of the current registry (no-op when disabled)."""
    if _CURRENT is None:
        return _NULL_HISTOGRAM
    return _CURRENT.histogram(name, edges)
