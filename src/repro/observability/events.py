"""Run-scoped JSONL event log with deterministic, mergeable ordering.

Every production layer that used to keep private state -- the trainer, the
sentinel, checkpointing, the sweep dispatcher, sharded generation -- emits
structured events here instead of ad-hoc prints.  The design is driven by
two hard requirements (see docs/observability.md):

1. **Determinism**: two runs with the same config+seed must produce
   byte-identical canonical logs, so an event's ``payload`` may only hold
   values that are pure functions of (config, seed, data).  Anything
   run-dependent -- wall-clock timings, PIDs, filesystem paths -- goes in
   the ``volatile`` side-channel, which the canonical exporter strips.
   Events that only exist in some execution modes (e.g. shard dispatch,
   which depends on the worker count) are marked ``transient`` and are
   dropped entirely from the canonical view.
2. **Worker invariance**: a sweep's workers write *per-cell* event files
   that the parent merges in cell-enumeration order (never completion
   order), so the merged log is identical for any worker count -- the same
   contract :mod:`repro.parallel` already enforces for the models
   themselves.

Appends are a single buffered ``write`` + ``flush`` of one complete line to
a file opened in append mode, so a crash can truncate at most the final
line and concurrent writers (which never share a file by construction)
cannot interleave partial records.

Instrumented code does not thread an ``EventLog`` through every signature;
it calls the module-level :func:`emit`, which resolves against the log
installed by :func:`capture` (mirroring :mod:`repro.nn.profiler`).  With no
log installed, :func:`emit` is one ``None`` check.
"""

from __future__ import annotations

import contextlib
import json
import os
from dataclasses import dataclass, field

__all__ = ["Event", "EventLog", "capture", "current", "enabled", "emit",
           "read_events", "merge_event_logs", "write_canonical",
           "canonical_line"]


@dataclass
class Event:
    """One structured record.

    Args:
        seq: Monotonic sequence number within the emitting log.
        run: Run identifier (deterministic; chosen by the run owner).
        cell: Sweep-cell identifier (``"dataset/model[/replica]"``) or
            ``None`` for run-level events.
        kind: Dotted event type, e.g. ``"train.iteration"``.
        payload: Deterministic fields (config/seed-reproducible only).
        volatile: Run-dependent fields (timings, pids, paths); stripped
            from the canonical export.
        transient: Whole event is execution-mode-dependent; dropped from
            the canonical export.
    """

    seq: int
    run: str
    cell: str | None
    kind: str
    payload: dict = field(default_factory=dict)
    volatile: dict | None = None
    transient: bool = False

    def to_json(self, canonical: bool = False) -> str:
        record = {"seq": self.seq, "run": self.run, "cell": self.cell,
                  "kind": self.kind, "payload": self.payload}
        if not canonical:
            if self.volatile:
                record["volatile"] = self.volatile
            if self.transient:
                record["transient"] = True
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "Event":
        record = json.loads(line)
        return cls(seq=int(record["seq"]), run=record["run"],
                   cell=record.get("cell"), kind=record["kind"],
                   payload=record.get("payload", {}),
                   volatile=record.get("volatile"),
                   transient=bool(record.get("transient", False)))


def canonical_line(event: Event) -> str:
    """The byte sequence an event contributes to the canonical log."""
    return event.to_json(canonical=True)


class EventLog:
    """Append-only JSONL sink with monotonic per-log sequence numbers."""

    def __init__(self, path: str | os.PathLike, run_id: str = "run",
                 cell: str | None = None):
        self.path = os.fspath(path)
        self.run_id = str(run_id)
        self.cell = cell
        self._seq = 0
        self.events: list[Event] = []
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def emit(self, kind: str, payload: dict | None = None,
             volatile: dict | None = None,
             transient: bool = False) -> Event:
        """Append one event; returns it (with its sequence number)."""
        event = Event(seq=self._seq, run=self.run_id, cell=self.cell,
                      kind=kind, payload=dict(payload or {}),
                      volatile=dict(volatile) if volatile else None,
                      transient=transient)
        self._seq += 1
        self.events.append(event)
        self._fh.write(event.to_json() + "\n")
        self._fh.flush()
        return event

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- current log (scope-based, like the op profiler) -------------------------

_CURRENT: EventLog | None = None


def current() -> EventLog | None:
    """The installed event log, or None when event capture is disabled."""
    return _CURRENT


def enabled() -> bool:
    """Whether an event log is currently capturing."""
    return _CURRENT is not None


@contextlib.contextmanager
def capture(log: EventLog | None):
    """Route :func:`emit` calls to ``log`` for the duration of the block."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = log
    try:
        yield log
    finally:
        _CURRENT = previous


def emit(kind: str, payload: dict | None = None,
         volatile: dict | None = None, transient: bool = False
         ) -> Event | None:
    """Emit into the current log; fast no-op when none is installed."""
    if _CURRENT is None:
        return None
    return _CURRENT.emit(kind, payload, volatile=volatile,
                         transient=transient)


# -- files and merging -------------------------------------------------------

def read_events(path: str | os.PathLike) -> list[Event]:
    """Parse a JSONL event file; a truncated final line is skipped."""
    events: list[Event] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(Event.from_json(line))
                except (ValueError, KeyError):
                    # A crash mid-append can leave one partial final line;
                    # anything before it is intact.
                    break
    except FileNotFoundError:
        pass
    return events


def merge_event_logs(parent_events: list[Event],
                     cell_event_lists: list[list[Event]]) -> list[Event]:
    """Merge a run's event streams into one deterministic order.

    Order: the parent's events in their own sequence order, then each
    cell's events in cell-enumeration order (the caller passes cells in
    build order).  Transient events are dropped and the global sequence is
    renumbered, so the result is invariant to which process ran which cell
    and to the worker count.
    """
    merged: list[Event] = []
    for source in [parent_events] + list(cell_event_lists):
        for event in sorted(source, key=lambda e: e.seq):
            if event.transient:
                continue
            merged.append(Event(seq=len(merged), run=event.run,
                                cell=event.cell, kind=event.kind,
                                payload=event.payload,
                                volatile=event.volatile))
    return merged


def write_canonical(path: str | os.PathLike, events: list[Event]) -> None:
    """Atomically write the canonical (deterministic) JSONL view."""
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(canonical_line(event) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
