"""Telemetry run directories: the on-disk layout shared by all surfaces.

A telemetry run is a directory::

    DIR/
      parent.jsonl            # raw event stream of the owning process
      cells/<cell>.jsonl      # raw per-cell streams (sweep workers)
      cells/<cell>.metrics.json
      events.jsonl            # canonical merged log (deterministic)
      metrics.json            # merged metric dump (deterministic)
      report.md               # rendered run report (deterministic)

The raw files keep everything (timings, pids, transient events) for
debugging; ``events.jsonl`` / ``metrics.json`` / ``report.md`` are the
canonical exports that CI compares byte-for-byte across runs and worker
counts.

:class:`TelemetryRun` is the owner-side handle: entering it installs an
:class:`~repro.observability.events.EventLog` and a fresh
:class:`~repro.observability.metrics.MetricsRegistry` as the process-local
collection targets; :meth:`finalize` performs the cross-process
aggregation (merge cell logs in cell order, sum cell metric dumps) and
writes the canonical files.
"""

from __future__ import annotations

import json
import os
import re

from repro.observability import events as _events
from repro.observability import metrics as _metrics
from repro.observability.report import render_run_report

__all__ = ["TelemetryRun", "cell_slug", "cell_log_path",
           "cell_metrics_path", "write_cell_metrics", "telemetry_active"]

_SLUG_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def telemetry_active() -> bool:
    """Whether any telemetry sink (events or metrics) is collecting."""
    return _events.enabled() or _metrics.enabled()


def cell_slug(label) -> str:
    """Filesystem-safe name for a sweep-cell label tuple."""
    if isinstance(label, tuple):
        label = "_".join(str(part) for part in label)
    return _SLUG_RE.sub("-", str(label))


def cell_log_path(root: str | os.PathLike, label) -> str:
    return os.path.join(os.fspath(root), "cells",
                        f"{cell_slug(label)}.jsonl")


def cell_metrics_path(root: str | os.PathLike, label) -> str:
    return os.path.join(os.fspath(root), "cells",
                        f"{cell_slug(label)}.metrics.json")


def write_cell_metrics(root: str | os.PathLike, label,
                       registry: _metrics.MetricsRegistry) -> None:
    """Atomically dump one cell's registry next to its event file."""
    path = cell_metrics_path(root, label)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(registry.dump(), handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class TelemetryRun:
    """Owns one telemetry directory for the duration of a run.

    Use as a context manager around the instrumented work::

        with TelemetryRun(out_dir, run_id="train") as run:
            model.fit(data)
        run.finalize()
    """

    def __init__(self, root: str | os.PathLike, run_id: str = "run"):
        self.root = os.fspath(root)
        self.run_id = str(run_id)
        os.makedirs(self.root, exist_ok=True)
        os.makedirs(os.path.join(self.root, "cells"), exist_ok=True)
        self.log = _events.EventLog(os.path.join(self.root, "parent.jsonl"),
                                    run_id=self.run_id)
        self.registry = _metrics.MetricsRegistry()
        self._events_ctx = None
        self._metrics_ctx = None

    # -- scope management ----------------------------------------------------
    def __enter__(self) -> "TelemetryRun":
        self._events_ctx = _events.capture(self.log)
        self._metrics_ctx = _metrics.use(self.registry)
        self._events_ctx.__enter__()
        self._metrics_ctx.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self._metrics_ctx.__exit__(*exc)
        self._events_ctx.__exit__(*exc)
        self.log.close()

    # -- paths for cell workers ----------------------------------------------
    def cell_log_path(self, label) -> str:
        return cell_log_path(self.root, label)

    def cell_metrics_path(self, label) -> str:
        return cell_metrics_path(self.root, label)

    # -- aggregation ---------------------------------------------------------
    def finalize(self, cell_labels=None) -> dict:
        """Merge raw streams and write the canonical exports.

        Args:
            cell_labels: Cell labels in enumeration order (a sweep's build
                order); ``None`` for single-process runs without cells.

        Returns:
            ``{"events": path, "metrics": path, "report": path}``.
        """
        self.log.close()
        cell_labels = list(cell_labels or [])
        parent = _events.read_events(self.log.path)
        cell_streams = [_events.read_events(self.cell_log_path(label))
                        for label in cell_labels]
        merged = _events.merge_event_logs(parent, cell_streams)
        events_path = os.path.join(self.root, "events.jsonl")
        _events.write_canonical(events_path, merged)

        dumps = [self.registry.dump()]
        for label in cell_labels:
            try:
                with open(self.cell_metrics_path(label),
                          encoding="utf-8") as handle:
                    dumps.append(json.load(handle))
            except (FileNotFoundError, ValueError):
                continue
        merged_metrics = _metrics.merge_dumps(dumps)
        metrics_path = os.path.join(self.root, "metrics.json")
        tmp = metrics_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(merged_metrics, handle, sort_keys=True, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, metrics_path)

        report_path = os.path.join(self.root, "report.md")
        report = render_run_report(merged, merged_metrics,
                                   title=f"Run report: {self.run_id}")
        tmp = report_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, report_path)
        return {"events": events_path, "metrics": metrics_path,
                "report": report_path}
