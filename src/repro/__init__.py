"""DoppelGANger reproduction.

Reproduction of "Using GANs for Sharing Networked Time Series Data:
Challenges, Initial Promise, and Open Questions" (Lin et al., IMC 2020).

The package is organised as:

- :mod:`repro.nn` -- numpy autodiff + neural-network substrate (MLP, LSTM,
  Adam, WGAN-GP-capable double backprop, DP-SGD).
- :mod:`repro.data` -- the time series dataset abstraction of the paper
  (attributes + variable-length feature series) plus synthetic simulators
  standing in for the three paper datasets (WWT, MBA, GCUT).
- :mod:`repro.core` -- the DoppelGANger model itself.
- :mod:`repro.backends` -- the pluggable :class:`GeneratorBackend` seam:
  DoppelGANger, the baselines, and the dual-layer DLGAN behind one
  registry-addressable interface.
- :mod:`repro.baselines` -- HMM, auto-regressive MLP, RNN, and naive GAN
  baselines evaluated in the paper.
- :mod:`repro.metrics` -- fidelity metrics (autocorrelation, Wasserstein-1,
  JSD, memorization checks, rank correlation).
- :mod:`repro.downstream` -- from-scratch predictive models used for the
  downstream-task evaluations.
- :mod:`repro.privacy` -- membership inference and differential privacy.
- :mod:`repro.flexibility` -- attribute-generator retraining.
- :mod:`repro.experiments` -- shared harness used by the benchmark suite.
"""

__version__ = "1.0.0"

__all__ = ["DoppelGANger", "DGConfig", "TimeSeriesDataset",
           "GeneratorBackend", "get_backend", "register_backend",
           "__version__"]

_LAZY = {
    "DoppelGANger": ("repro.core.doppelganger", "DoppelGANger"),
    "DGConfig": ("repro.core.config", "DGConfig"),
    "TimeSeriesDataset": ("repro.data.dataset", "TimeSeriesDataset"),
    "GeneratorBackend": ("repro.backends", "GeneratorBackend"),
    "get_backend": ("repro.backends", "get_backend"),
    "register_backend": ("repro.backends", "register_backend"),
}


def __getattr__(name):
    """Lazily resolve top-level re-exports (avoids import cycles)."""
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
