"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "orthogonal", "zeros"]


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape=None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(rng: np.random.Generator, fan_in: int, fan_out: int,
                  shape=None) -> np.ndarray:
    std = np.sqrt(2.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.normal(0.0, std, size=shape)


def orthogonal(rng: np.random.Generator, rows: int, cols: int,
               gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialisation (used for recurrent weights)."""
    a = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
