"""Differentiable primitive operations.

Every primitive returns a new :class:`~repro.nn.tensor.Tensor` and records a
vector-Jacobian product (VJP) closure.  Crucially the VJPs are themselves
written in terms of these same primitives, so differentiating a gradient
(``create_graph=True``) produces correct second-order derivatives -- the
property required by the WGAN-GP gradient penalty used throughout the paper.

Operator overloads (``+``, ``*``, ``@``, slicing, ...) are attached to
:class:`Tensor` at the bottom of this module.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor, astensor, is_grad_enabled

__all__ = [
    "add", "sub", "mul", "div", "neg", "power", "exp", "log", "sqrt",
    "tanh", "sigmoid", "relu", "abs_", "maximum", "minimum", "matmul",
    "sum_", "mean", "reshape", "transpose", "swapaxes", "concat", "stack",
    "getitem", "broadcast_to", "clip",
]

_EPS = 1e-12


# -- array-level helpers ------------------------------------------------------
#
# These compute the *data-dependent constants* some VJPs capture (masks,
# signs, max-shifts) as plain ndarray functions resolved through module
# globals at call time.  That indirection is what makes them visible to the
# plan tracer (repro.nn.plan): a recorded schedule must recompute these
# values every replay rather than snapshot them from the traced step.

def _sigmoid_stable(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic, one exp over the full array.

    ``exp(-|clip(x)|)`` is the exponential of *both* textbook branches
    (``1/(1+exp(-x))`` for x >= 0, ``exp(x)/(1+exp(x))`` otherwise), so
    the selected values are bit-identical to evaluating each branch
    separately -- without the overflow the naive two-branch ``np.where``
    evaluation incurs on large-magnitude inputs.
    """
    t = np.clip(x, -500, 500)
    e = np.exp(-np.abs(t))
    denom = 1.0 + e
    return np.where(x >= 0, 1.0 / denom, e / denom)


def _relu_mask(x: np.ndarray) -> np.ndarray:
    return (x > 0).astype(np.float64)


def _sign_of(x: np.ndarray) -> np.ndarray:
    return np.sign(x)


def _ge_masks(a: np.ndarray, b: np.ndarray) -> tuple:
    take_a = a >= b
    return take_a.astype(np.float64), (~take_a).astype(np.float64)


def _le_masks(a: np.ndarray, b: np.ndarray) -> tuple:
    take_a = a <= b
    return take_a.astype(np.float64), (~take_a).astype(np.float64)


def _amax(x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
    """Plain max reduction, used where the result is treated as constant."""
    return x.max(axis=axis, keepdims=keepdims)


def _result(data: np.ndarray, parents: Sequence[Tensor], vjp) -> Tensor:
    """Build an op result, recording the graph only when useful."""
    if is_grad_enabled() and any(p.requires_grad for p in parents):
        return Tensor(data, requires_grad=True, parents=parents, vjp=vjp)
    return Tensor(data)


def _unbroadcast(g: Tensor, shape: tuple) -> Tensor:
    """Reduce gradient ``g`` back to ``shape`` after numpy broadcasting."""
    if g.shape == shape:
        return g
    # Sum away prepended axes.
    extra = g.ndim - len(shape)
    if extra > 0:
        g = sum_(g, axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and g.shape[i] != 1)
    if axes:
        g = sum_(g, axis=axes, keepdims=True)
    if g.shape != shape:
        g = reshape(g, shape)
    return g


# -- arithmetic ---------------------------------------------------------------

def add(a, b) -> Tensor:
    a, b = astensor(a), astensor(b)
    out = a.data + b.data

    def vjp(g):
        return _unbroadcast(g, a.shape), _unbroadcast(g, b.shape)

    return _result(out, (a, b), vjp)


def sub(a, b) -> Tensor:
    a, b = astensor(a), astensor(b)
    out = a.data - b.data

    def vjp(g):
        return _unbroadcast(g, a.shape), _unbroadcast(neg(g), b.shape)

    return _result(out, (a, b), vjp)


def mul(a, b) -> Tensor:
    a, b = astensor(a), astensor(b)
    out = a.data * b.data

    def vjp(g):
        return _unbroadcast(mul(g, b), a.shape), _unbroadcast(mul(g, a), b.shape)

    return _result(out, (a, b), vjp)


def div(a, b) -> Tensor:
    a, b = astensor(a), astensor(b)
    out = a.data / b.data

    def vjp(g):
        ga = _unbroadcast(div(g, b), a.shape)
        gb = _unbroadcast(neg(div(mul(g, a), mul(b, b))), b.shape)
        return ga, gb

    return _result(out, (a, b), vjp)


def neg(a) -> Tensor:
    a = astensor(a)

    def vjp(g):
        return (neg(g),)

    return _result(-a.data, (a,), vjp)


def power(a, exponent: float) -> Tensor:
    """Elementwise power with a constant exponent."""
    a = astensor(a)
    exponent = float(exponent)
    out = a.data ** exponent

    def vjp(g):
        return (mul(g, mul(Tensor(exponent), power(a, exponent - 1.0))),)

    return _result(out, (a,), vjp)


def exp(a) -> Tensor:
    a = astensor(a)
    result = _result(np.exp(a.data), (a,), None)

    def vjp(g):
        return (mul(g, result),)

    result._vjp = vjp
    return result


def log(a) -> Tensor:
    a = astensor(a)

    def vjp(g):
        return (div(g, a),)

    return _result(np.log(a.data), (a,), vjp)


def sqrt(a) -> Tensor:
    return power(a, 0.5)


def tanh(a) -> Tensor:
    a = astensor(a)
    result = _result(np.tanh(a.data), (a,), None)

    def vjp(g):
        return (mul(g, sub(Tensor(1.0), mul(result, result))),)

    result._vjp = vjp
    return result


def sigmoid(a) -> Tensor:
    a = astensor(a)
    result = _result(_sigmoid_stable(a.data), (a,), None)

    def vjp(g):
        return (mul(g, mul(result, sub(Tensor(1.0), result))),)

    result._vjp = vjp
    return result


def relu(a) -> Tensor:
    a = astensor(a)
    mask = Tensor(_relu_mask(a.data))

    def vjp(g):
        return (mul(g, mask),)

    return _result(np.maximum(a.data, 0.0), (a,), vjp)


def abs_(a) -> Tensor:
    a = astensor(a)
    sign = Tensor(_sign_of(a.data))

    def vjp(g):
        return (mul(g, sign),)

    return _result(np.abs(a.data), (a,), vjp)


def maximum(a, b) -> Tensor:
    a, b = astensor(a), astensor(b)
    mask_a_arr, mask_b_arr = _ge_masks(a.data, b.data)
    mask_a = Tensor(mask_a_arr)
    mask_b = Tensor(mask_b_arr)

    def vjp(g):
        return (_unbroadcast(mul(g, mask_a), a.shape),
                _unbroadcast(mul(g, mask_b), b.shape))

    return _result(np.maximum(a.data, b.data), (a, b), vjp)


def minimum(a, b) -> Tensor:
    a, b = astensor(a), astensor(b)
    mask_a_arr, mask_b_arr = _le_masks(a.data, b.data)
    mask_a = Tensor(mask_a_arr)
    mask_b = Tensor(mask_b_arr)

    def vjp(g):
        return (_unbroadcast(mul(g, mask_a), a.shape),
                _unbroadcast(mul(g, mask_b), b.shape))

    return _result(np.minimum(a.data, b.data), (a, b), vjp)


def clip(a, low: float, high: float) -> Tensor:
    """Differentiable clip with constant bounds (gradient 0 outside)."""
    return minimum(maximum(a, Tensor(float(low))), Tensor(float(high)))


# -- linear algebra -----------------------------------------------------------

def matmul(a, b) -> Tensor:
    """Matrix multiplication with numpy batching semantics (ndim >= 2)."""
    a, b = astensor(a), astensor(b)
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError("matmul requires tensors with ndim >= 2")
    out = a.data @ b.data

    def vjp(g):
        ga = _unbroadcast(matmul(g, swapaxes(b, -1, -2)), a.shape)
        gb = _unbroadcast(matmul(swapaxes(a, -1, -2), g), b.shape)
        return ga, gb

    return _result(out, (a, b), vjp)


# -- reductions ---------------------------------------------------------------

def _normalize_axis(axis, ndim: int) -> tuple:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(ax % ndim for ax in axis)


def sum_(a, axis=None, keepdims: bool = False) -> Tensor:
    a = astensor(a)
    axes = _normalize_axis(axis, a.ndim)
    out = a.data.sum(axis=axes or None, keepdims=keepdims)
    # Shape that makes g broadcastable back onto a.
    kept = tuple(1 if i in axes else n for i, n in enumerate(a.shape))

    def vjp(g):
        if not keepdims and g.shape != kept:
            g = reshape(g, kept)
        return (broadcast_to(g, a.shape),)

    return _result(out, (a,), vjp)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = astensor(a)
    axes = _normalize_axis(axis, a.ndim)
    count = float(np.prod([a.shape[i] for i in axes])) if axes else 1.0
    return div(sum_(a, axis=axis, keepdims=keepdims), Tensor(count))


# -- shape manipulation -------------------------------------------------------

def reshape(a, shape) -> Tensor:
    a = astensor(a)
    shape = tuple(shape)
    original = a.shape

    def vjp(g):
        return (reshape(g, original),)

    return _result(a.data.reshape(shape), (a,), vjp)


def transpose(a, axes=None) -> Tensor:
    a = astensor(a)
    if axes is None:
        axes = tuple(reversed(range(a.ndim)))
    axes = tuple(ax % a.ndim for ax in axes)
    inverse = tuple(int(i) for i in np.argsort(axes))

    def vjp(g):
        return (transpose(g, inverse),)

    return _result(a.data.transpose(axes), (a,), vjp)


def swapaxes(a, axis1: int, axis2: int) -> Tensor:
    a = astensor(a)
    axes = list(range(a.ndim))
    axis1, axis2 = axis1 % a.ndim, axis2 % a.ndim
    axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
    return transpose(a, axes)


def broadcast_to(a, shape) -> Tensor:
    a = astensor(a)
    shape = tuple(shape)
    original = a.shape

    def vjp(g):
        return (_unbroadcast(g, original),)

    return _result(np.broadcast_to(a.data, shape).copy(), (a,), vjp)


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [astensor(t) for t in tensors]
    axis = axis % tensors[0].ndim
    sizes = [t.shape[axis] for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    offsets = np.cumsum([0] + sizes)

    def vjp(g):
        grads = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            index = tuple(
                slice(int(start), int(stop)) if d == axis else slice(None)
                for d in range(g.ndim)
            )
            grads.append(getitem(g, index))
        return tuple(grads)

    return _result(out, tuple(tensors), vjp)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [astensor(t) for t in tensors]
    ndim = tensors[0].ndim + 1
    axis = axis % ndim
    expanded = []
    for t in tensors:
        shape = list(t.shape)
        shape.insert(axis, 1)
        expanded.append(reshape(t, shape))
    return concat(expanded, axis=axis)


# -- indexing -----------------------------------------------------------------

def getitem(a, index) -> Tensor:
    a = astensor(a)
    out = a.data[index]
    original = a.shape

    def vjp(g):
        return (_scatter(g, index, original),)

    return _result(out, (a,), vjp)


def _scatter(g, index, shape: tuple) -> Tensor:
    """Place ``g`` into a zero tensor of ``shape`` at ``index`` (adjoint of
    getitem).  Differentiable: its own VJP is getitem."""
    g = astensor(g)
    out = np.zeros(shape, dtype=np.float64)
    np.add.at(out, index, g.data)

    def vjp(gg):
        return (getitem(gg, index),)

    return _result(out, (g,), vjp)


# -- profiler instrumentation -------------------------------------------------

def _instrument_ops() -> None:
    """Wrap every public primitive so the op-level profiler sees it.

    Reassigning the module globals also covers calls made from inside VJP
    closures (they resolve op names at call time), so backward passes are
    profiled with the same granularity as forward ones.
    """
    from repro.nn.profiler import profiled
    for name in __all__:
        globals()[name] = profiled(globals()[name], name=name.rstrip("_"))


_instrument_ops()


# -- operator overloads -------------------------------------------------------

def _attach_operators() -> None:
    Tensor.__add__ = lambda self, other: add(self, other)
    Tensor.__radd__ = lambda self, other: add(other, self)
    Tensor.__sub__ = lambda self, other: sub(self, other)
    Tensor.__rsub__ = lambda self, other: sub(other, self)
    Tensor.__mul__ = lambda self, other: mul(self, other)
    Tensor.__rmul__ = lambda self, other: mul(other, self)
    Tensor.__truediv__ = lambda self, other: div(self, other)
    Tensor.__rtruediv__ = lambda self, other: div(other, self)
    Tensor.__neg__ = lambda self: neg(self)
    Tensor.__pow__ = lambda self, exponent: power(self, exponent)
    Tensor.__matmul__ = lambda self, other: matmul(self, other)
    Tensor.__rmatmul__ = lambda self, other: matmul(other, self)
    Tensor.__getitem__ = lambda self, index: getitem(self, index)
    Tensor.sum = lambda self, axis=None, keepdims=False: sum_(self, axis, keepdims)
    Tensor.mean = lambda self, axis=None, keepdims=False: mean(self, axis, keepdims)
    Tensor.reshape = lambda self, *shape: reshape(
        self, shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list))
        else shape)
    Tensor.transpose = lambda self, axes=None: transpose(self, axes)
    @property
    def T(self):  # noqa: N802 - numpy-style alias
        return transpose(self)
    Tensor.T = T


_attach_operators()
