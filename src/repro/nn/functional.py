"""Higher-level differentiable functions composed from primitives."""

from __future__ import annotations

import numpy as np

from repro.nn import ops
from repro.nn.tensor import Tensor, astensor

__all__ = [
    "softmax", "log_softmax", "mse_loss", "l2_norm", "gradient_penalty_norm",
    "cross_entropy", "binary_cross_entropy_with_logits", "leaky_relu",
]

_EPS = 1e-12


def softmax(x, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    The max-shift is treated as a constant; softmax is shift-invariant so the
    gradient (and the second derivative) remain exact.
    """
    x = astensor(x)
    # ops._amax (not .max() inline) so the plan tracer sees the shift as a
    # recomputed value rather than a baked-in constant.
    shift = Tensor(ops._amax(x.data, axis=axis, keepdims=True))
    e = ops.exp(x - shift)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x, axis: int = -1) -> Tensor:
    x = astensor(x)
    shift = Tensor(ops._amax(x.data, axis=axis, keepdims=True))
    shifted = x - shift
    return shifted - ops.log(ops.exp(shifted).sum(axis=axis, keepdims=True))


def leaky_relu(x, negative_slope: float = 0.2) -> Tensor:
    x = astensor(x)
    return ops.maximum(x, x * Tensor(float(negative_slope)))


def mse_loss(prediction, target) -> Tensor:
    prediction, target = astensor(prediction), astensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def l2_norm(x, axis=None, keepdims: bool = False, eps: float = _EPS) -> Tensor:
    """Differentiable L2 norm; ``eps`` keeps the gradient finite at 0."""
    x = astensor(x)
    return ops.sqrt((x * x).sum(axis=axis, keepdims=keepdims) + Tensor(eps))


def gradient_penalty_norm(gradients, batch_axis: int = 0) -> Tensor:
    """Per-sample gradient norms, flattening all non-batch axes."""
    gradients = astensor(gradients)
    batch = gradients.shape[batch_axis]
    flat = ops.reshape(gradients, (batch, -1))
    return l2_norm(flat, axis=1)


def cross_entropy(logits, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer ``labels`` under ``logits`` (B, C)."""
    logits = astensor(logits)
    logp = log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked = logp[np.arange(batch), np.asarray(labels, dtype=np.intp)]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits, targets) -> Tensor:
    """Stable elementwise BCE: max(x,0) - x*t + log(1 + exp(-|x|))."""
    logits, targets = astensor(logits), astensor(targets)
    return (ops.maximum(logits, Tensor(0.0)) - logits * targets
            + ops.log(ops.exp(-ops.abs_(logits)) + Tensor(1.0))).mean()
