"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` type and the :func:`grad` engine
used by every neural network in the reproduction.  The engine supports
*higher-order* differentiation (``create_graph=True``): the vector-Jacobian
products of every primitive are themselves expressed with differentiable
tensor operations, so gradients of gradients -- required by the WGAN-GP
gradient penalty of the paper (Eq. 2) -- work out of the box.

Only the operations needed by the reproduction are implemented; they live in
:mod:`repro.nn.ops` and are attached to :class:`Tensor` as methods/operators.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "Parameter", "grad", "no_grad", "is_grad_enabled", "astensor"]

# Global switch: when False, newly created tensors record no graph.  Used to
# make first-order backward passes cheap (no second-order graph is built).
_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like torch.no_grad)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


class Tensor:
    """A numpy array plus the autodiff bookkeeping needed to differentiate it.

    Attributes:
        data: The underlying ``np.ndarray`` (always ``float64``).
        requires_grad: Whether gradients should flow to this tensor.
        grad: Populated by :meth:`backward` (None until then).
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_vjp", "name")
    # Make numpy defer to our reflected operators (e.g. ndarray * Tensor).
    __array_priority__ = 100

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        vjp: Callable[["Tensor"], Sequence["Tensor | None"]] | None = None,
        name: str | None = None,
    ):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Tensor | None = None
        self._parents = tuple(parents)
        self._vjp = vjp
        self.name = name

    # -- basic introspection -------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def is_leaf(self) -> bool:
        return not self._parents

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{flag})"

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return a copy of the underlying data as a plain numpy array."""
        return np.array(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        out = Tensor.__new__(Tensor)
        out.data = self.data  # share storage, like torch.detach
        out.requires_grad = False
        out.grad = None
        out._parents = ()
        out._vjp = None
        out.name = None
        return out

    # -- gradient entry points ----------------------------------------------
    def backward(self, grad_output: "Tensor | np.ndarray | None" = None) -> None:
        """Accumulate gradients into ``.grad`` of all reachable leaves."""
        order = _toposort(self)
        leaves = [t for t in order if t.is_leaf and t.requires_grad]
        grads = grad(self, leaves, grad_output=grad_output, allow_unused=True,
                     _order=order)
        for leaf, g in zip(leaves, grads):
            if g is None:
                continue
            if leaf.grad is None:
                leaf.grad = Tensor(g.data.copy())
            else:
                leaf.grad.data += g.data

    def zero_grad(self) -> None:
        self.grad = None

    # Arithmetic operators are attached by repro.nn.ops at import time; the
    # declarations below exist so that type checkers and readers know the
    # surface area of the class.
    def __add__(self, other):  # pragma: no cover - replaced by ops
        raise NotImplementedError

    def __matmul__(self, other):  # pragma: no cover - replaced by ops
        raise NotImplementedError


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by default)."""

    __slots__ = ()

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


def astensor(value) -> Tensor:
    """Coerce a value (array, scalar, Tensor) to a Tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _toposort(root: Tensor) -> list[Tensor]:
    """Return tensors reachable from ``root`` in topological order."""
    order: list[Tensor] = []
    seen: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in seen:
                stack.append((parent, False))
    return order


def grad(
    output: Tensor,
    inputs: Iterable[Tensor],
    grad_output: Tensor | np.ndarray | None = None,
    create_graph: bool = False,
    allow_unused: bool = False,
    _order: list["Tensor"] | None = None,
) -> list[Tensor | None]:
    """Compute d(output)/d(input) for every tensor in ``inputs``.

    Args:
        output: The tensor to differentiate (any shape; ``grad_output``
            defaults to ones).
        inputs: Tensors to differentiate with respect to.
        grad_output: Upstream gradient with the same shape as ``output``.
        create_graph: If True, the returned gradients carry their own graph,
            enabling second-order differentiation (gradient penalty).
        allow_unused: If False, raise when an input is unreachable from
            ``output``; if True, return None for such inputs.
        _order: Precomputed ``_toposort(output)`` (internal; lets
            :meth:`Tensor.backward` reuse its leaf-discovery walk instead
            of toposorting the graph twice).

    Returns:
        One gradient tensor per input (or None when unused and allowed).
    """
    inputs = list(inputs)
    if grad_output is None:
        grad_output = Tensor(np.ones_like(output.data))
    else:
        grad_output = astensor(grad_output)
    if grad_output.shape != output.shape:
        raise ValueError(
            f"grad_output shape {grad_output.shape} != output shape {output.shape}"
        )

    return _grad_impl(output, inputs, grad_output, create_graph,
                      allow_unused, _order)


def _grad_impl(
    output: Tensor,
    inputs: list[Tensor],
    grad_output: Tensor,
    create_graph: bool,
    allow_unused: bool,
    order: list[Tensor] | None = None,
) -> list[Tensor | None]:
    wanted = {id(t) for t in inputs}
    context = contextlib.nullcontext() if create_graph else no_grad()
    grads: dict[int, Tensor] = {id(output): grad_output}
    if order is None:
        order = _toposort(output)
    with context:
        for node in reversed(order):
            if id(node) in wanted:
                node_grad = grads.get(id(node))
            else:
                node_grad = grads.pop(id(node), None)
            if node_grad is None or node._vjp is None:
                continue
            parent_grads = node._vjp(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                existing = grads.get(id(parent))
                if existing is None:
                    grads[id(parent)] = pgrad
                else:
                    grads[id(parent)] = existing + pgrad

    results: list[Tensor | None] = []
    for tensor in inputs:
        g = grads.get(id(tensor))
        if g is None and not allow_unused:
            raise RuntimeError(
                "One of the requested inputs was not reached during "
                "differentiation (set allow_unused=True to permit this)."
            )
        results.append(g)
    return results
