"""Optimizers operating on lists of parameters.

The paper trains everything with Adam at learning rate 1e-3 (Appendix B).
Optimizers here are *functional*: they consume explicit gradient lists
returned by :func:`repro.nn.tensor.grad`, which keeps GAN training loops
(two optimizers over disjoint parameter sets) simple and explicit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Parameter, Tensor

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "grad_norm",
           "StepLR"]


def grad_norm(grads) -> float:
    """Global L2 norm of a gradient list, without modifying anything.

    The observability layer's grad-norm hook: accepts Tensors or arrays
    (None entries skipped), reads but never scales, so recording the norm
    cannot perturb training.
    """
    arrays = [g.data if isinstance(g, Tensor) else g
              for g in grads if g is not None]
    return float(np.sqrt(sum((a * a).sum() for a in arrays)))


def clip_grad_norm(grads, max_norm: float) -> float:
    """Scale a gradient list in place so its global L2 norm <= max_norm.

    Accepts Tensors or arrays (None entries skipped); returns the norm
    before clipping.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    arrays = [g.data if isinstance(g, Tensor) else g
              for g in grads if g is not None]
    total = float(np.sqrt(sum((a * a).sum() for a in arrays)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for a in arrays:
            a *= scale
    return total


class StepLR:
    """Multiply an optimizer's learning rate by ``gamma`` every
    ``step_size`` calls to :meth:`step`."""

    def __init__(self, optimizer: "Optimizer", step_size: int,
                 gamma: float = 0.5):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._count = 0

    def step(self) -> float:
        """Advance one iteration; returns the (possibly updated) lr."""
        self._count += 1
        if self._count % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr


class Optimizer:
    """Base class holding a parameter list."""

    def __init__(self, params: Sequence[Parameter]):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")

    def step(self, grads: Sequence[Tensor | np.ndarray | None]) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Copy of the optimizer's full state (hyper-params + moments).

        Scalar entries are hyper-parameters; list entries are per-parameter
        arrays aligned with ``self.params``.  Subclasses extend this.
        """
        return {"lr": float(self.lr)}

    def load_state_dict(self, state: dict) -> None:
        """Restore state written by :meth:`state_dict` (validated)."""
        self.lr = float(state["lr"])

    def _check_moment_list(self, name: str, arrays) -> list[np.ndarray]:
        """Validate one per-parameter array list against ``self.params``."""
        if len(arrays) != len(self.params):
            raise ValueError(
                f"optimizer state {name!r} holds {len(arrays)} arrays but "
                f"the optimizer has {len(self.params)} parameters")
        out = []
        for i, (p, a) in enumerate(zip(self.params, arrays)):
            a = np.asarray(a, dtype=np.float64)
            if a.shape != p.data.shape:
                raise ValueError(
                    f"optimizer state {name}[{i}] has shape {a.shape} but "
                    f"parameter {p.name or i} has shape {p.data.shape}")
            out.append(a.copy())
        return out

    @staticmethod
    def _as_array(g) -> np.ndarray | None:
        if g is None:
            return None
        return g.data if isinstance(g, Tensor) else np.asarray(g)


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def state_dict(self) -> dict:
        return {"lr": float(self.lr), "momentum": float(self.momentum),
                "velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.momentum = float(state["momentum"])
        self._velocity = self._check_moment_list("velocity",
                                                 state["velocity"])

    def step(self, grads) -> None:
        if len(grads) != len(self.params):
            raise ValueError("gradient list length mismatch")
        for p, v, g in zip(self.params, self._velocity, grads):
            g = self._as_array(g)
            if g is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.5, 0.999),
                 eps: float = 1e-8):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def state_dict(self) -> dict:
        """Full Adam state: lr, betas, eps, step count, and both moments."""
        return {"lr": float(self.lr),
                "betas": (float(self.beta1), float(self.beta2)),
                "eps": float(self.eps), "t": int(self._t),
                "m": [m.copy() for m in self._m],
                "v": [v.copy() for v in self._v]}

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.beta1, self.beta2 = (float(b) for b in state["betas"])
        self.eps = float(state["eps"])
        self._t = int(state["t"])
        self._m = self._check_moment_list("m", state["m"])
        self._v = self._check_moment_list("v", state["v"])

    def _scratch_for(self, index: int, shape) -> np.ndarray:
        # Lazy per-parameter scratch so step() runs allocation-free after
        # the first call (scratch is workspace, never pickled state).
        scratch = self.__dict__.setdefault("_scratch", {})
        buf = scratch.get(index)
        if buf is None or buf.shape != shape:
            buf = scratch[index] = np.empty(shape)
        return buf

    def step(self, grads) -> None:
        if len(grads) != len(self.params):
            raise ValueError("gradient list length mismatch")
        self._t += 1
        b1t = 1.0 - self.beta1 ** self._t
        b2t = 1.0 - self.beta2 ** self._t
        # Buffered but bit-identical to the expression form
        #   m = b1*m + (1-b1)*g;  v = b2*v + ((1-b2)*g)*g
        #   p -= lr * (m / b1t) / (sqrt(v / b2t) + eps)
        # every ufunc below preserves that operand order/association.
        for idx, (p, m, v, g) in enumerate(zip(self.params, self._m,
                                               self._v, grads)):
            g = self._as_array(g)
            if g is None:
                continue
            buf = self._scratch_for(idx, p.data.shape)
            step_buf = self._scratch_for(-idx - 1, p.data.shape)
            m *= self.beta1
            np.multiply(1.0 - self.beta1, g, out=buf)
            m += buf
            v *= self.beta2
            np.multiply(1.0 - self.beta2, g, out=buf)
            np.multiply(buf, g, out=buf)
            v += buf
            np.divide(m, b1t, out=step_buf)
            np.multiply(self.lr, step_buf, out=step_buf)
            np.divide(v, b2t, out=buf)
            np.sqrt(buf, out=buf)
            np.add(buf, self.eps, out=buf)
            np.divide(step_buf, buf, out=step_buf)
            p.data -= step_buf
