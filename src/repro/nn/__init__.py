"""Numpy neural-network substrate with double-backprop autodiff.

Public surface:

- :class:`Tensor`, :class:`Parameter`, :func:`grad`, :func:`no_grad`
- :mod:`repro.nn.ops` primitives and :mod:`repro.nn.functional` helpers
- :mod:`repro.nn.kernels` fused execution kernels (``fused_kernels`` flag)
- :mod:`repro.nn.plan` trace-and-replay plan compiler (:class:`PlanFunction`)
- :mod:`repro.nn.profiler` op-level profiler (:func:`profile`)
- Layers: :class:`Linear`, :class:`MLP`, :class:`LSTMCell`, :class:`LSTM`
- Optimizers: :class:`SGD`, :class:`Adam`
- Differential privacy: :class:`DPGradientProcessor` and the RDP accountant
"""

from repro.nn import functional, init, kernels, ops, plan, profiler
from repro.nn.dp import (DPGradientProcessor, compute_epsilon, compute_rdp,
                         noise_multiplier_for_epsilon, rdp_to_epsilon)
from repro.nn.kernels import fused_enabled, fused_kernels, set_fused
from repro.nn.layers import (LSTM, MLP, GRUCell, LayerNorm, Linear,
                             LSTMCell, Module, Sequential)
from repro.nn.optim import (SGD, Adam, Optimizer, StepLR,
                            clip_grad_norm, grad_norm)
from repro.nn.plan import (PlanFunction, PlanUnsupported, plan_enabled,
                           plan_mode, set_plan_enabled)
from repro.nn.profiler import OpProfiler, profile
from repro.nn.serialization import load_module, save_module
from repro.nn.tensor import Parameter, Tensor, astensor, grad, no_grad

__all__ = [
    "Tensor", "Parameter", "grad", "no_grad", "astensor",
    "ops", "functional", "init", "kernels", "plan", "profiler",
    "fused_kernels", "fused_enabled", "set_fused",
    "PlanFunction", "PlanUnsupported", "plan_mode", "plan_enabled",
    "set_plan_enabled",
    "OpProfiler", "profile",
    "Module", "Linear", "MLP", "LSTMCell", "LSTM", "GRUCell",
    "LayerNorm", "Sequential",
    "Optimizer", "SGD", "Adam", "StepLR", "clip_grad_norm",
    "grad_norm",
    "DPGradientProcessor", "compute_rdp", "rdp_to_epsilon",
    "compute_epsilon", "noise_multiplier_for_epsilon",
    "save_module", "load_module",
]
