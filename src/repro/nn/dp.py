"""Differentially private SGD and Rényi-DP accounting.

Reproduces the paper's DP experiment substrate (§5.3.1, Fig 13): the paper
trained DoppelGANger with TensorFlow Privacy, i.e. DP-SGD (Abadi et al.,
CCS 2016) -- per-example gradient clipping plus Gaussian noise -- with a
moments/RDP accountant.  This module provides both pieces:

- :class:`DPGradientProcessor`: clips per-microbatch gradients to an L2 bound
  and adds calibrated Gaussian noise.
- :func:`compute_rdp` / :func:`rdp_to_epsilon` / :func:`compute_epsilon`: the
  Rényi-DP accountant for the subsampled Gaussian mechanism (Mironov et al.,
  2019), evaluated at integer orders.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "DPGradientProcessor", "compute_rdp", "rdp_to_epsilon", "compute_epsilon",
    "noise_multiplier_for_epsilon", "DEFAULT_ORDERS",
]

DEFAULT_ORDERS = tuple(range(2, 64)) + (128, 256, 512)


class DPGradientProcessor:
    """Clip-and-noise aggregation of per-microbatch gradients.

    Usage: compute the loss gradient separately for each microbatch (the
    paper-equivalent of per-example gradients when microbatch size is 1),
    pass the list of gradient lists here, and feed the result to any
    optimizer.
    """

    def __init__(self, l2_norm_clip: float, noise_multiplier: float,
                 rng: np.random.Generator | None = None):
        if l2_norm_clip <= 0:
            raise ValueError("l2_norm_clip must be positive")
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        self.l2_norm_clip = float(l2_norm_clip)
        self.noise_multiplier = float(noise_multiplier)
        self.rng = rng or np.random.default_rng()

    def aggregate(self, per_microbatch_grads: Sequence[Sequence]
                  ) -> list[np.ndarray]:
        """Clip each microbatch gradient, sum, add noise, average.

        Args:
            per_microbatch_grads: one gradient list (aligned with the model's
                parameter list) per microbatch; entries may be Tensors or
                arrays.

        Returns:
            The noised average gradient, one array per parameter.
        """
        if not per_microbatch_grads:
            raise ValueError("no microbatch gradients supplied")
        num = len(per_microbatch_grads)
        first = [self._as_array(g) for g in per_microbatch_grads[0]]
        totals = [np.zeros_like(g) for g in first]
        for grads in per_microbatch_grads:
            arrays = [self._as_array(g) for g in grads]
            norm = math.sqrt(sum(float((a * a).sum()) for a in arrays))
            scale = min(1.0, self.l2_norm_clip / (norm + 1e-12))
            for total, a in zip(totals, arrays):
                total += a * scale
        std = self.noise_multiplier * self.l2_norm_clip
        return [
            (total + self.rng.normal(0.0, std, size=total.shape)) / num
            for total in totals
        ]

    @staticmethod
    def _as_array(g) -> np.ndarray:
        if isinstance(g, Tensor):
            return g.data
        return np.asarray(g, dtype=np.float64)


def _log_comb(n: int, k: int) -> float:
    return (math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1))


def _rdp_order(q: float, sigma: float, alpha: int) -> float:
    """RDP of the Poisson-subsampled Gaussian at integer order ``alpha``.

    Uses the exact binomial expansion of Mironov, Talwar & Zhang (2019),
    computed in log space for numerical stability.
    """
    if q == 0:
        return 0.0
    if q == 1.0:
        return alpha / (2 * sigma ** 2)
    log_terms = []
    for k in range(alpha + 1):
        log_coef = (_log_comb(alpha, k)
                    + k * math.log(q) + (alpha - k) * math.log(1 - q))
        log_terms.append(log_coef + (k * k - k) / (2 * sigma ** 2))
    log_sum = _logsumexp(log_terms)
    return log_sum / (alpha - 1)


def _logsumexp(values: Sequence[float]) -> float:
    m = max(values)
    return m + math.log(sum(math.exp(v - m) for v in values))


def compute_rdp(q: float, noise_multiplier: float, steps: int,
                orders: Sequence[int] = DEFAULT_ORDERS) -> np.ndarray:
    """Total RDP after ``steps`` iterations at each order.

    Args:
        q: Sampling probability (batch size / dataset size).
        noise_multiplier: Ratio of noise stddev to clipping norm.
        steps: Number of DP-SGD iterations.
        orders: Integer Rényi orders (> 1).
    """
    if not 0 <= q <= 1:
        raise ValueError("sampling probability must be in [0, 1]")
    if noise_multiplier <= 0:
        raise ValueError("noise_multiplier must be positive for accounting")
    return np.array([
        steps * _rdp_order(q, noise_multiplier, int(alpha))
        for alpha in orders
    ])


def rdp_to_epsilon(rdp: np.ndarray, orders: Sequence[int],
                   delta: float) -> float:
    """Convert RDP to (ε, δ)-DP via the standard conversion."""
    if delta <= 0 or delta >= 1:
        raise ValueError("delta must be in (0, 1)")
    orders = np.asarray(orders, dtype=np.float64)
    eps = rdp + math.log(1.0 / delta) / (orders - 1)
    return float(eps.min())


def compute_epsilon(q: float, noise_multiplier: float, steps: int,
                    delta: float,
                    orders: Sequence[int] = DEFAULT_ORDERS) -> float:
    """ε after ``steps`` DP-SGD iterations (convenience wrapper)."""
    return rdp_to_epsilon(compute_rdp(q, noise_multiplier, steps, orders),
                          orders, delta)


def noise_multiplier_for_epsilon(q: float, steps: int, delta: float,
                                 target_epsilon: float,
                                 low: float = 0.3, high: float = 64.0
                                 ) -> float:
    """Binary-search the noise multiplier giving ``target_epsilon``."""
    if compute_epsilon(q, high, steps, delta) > target_epsilon:
        raise ValueError("target epsilon unreachable even at maximum noise")
    for _ in range(60):
        mid = math.sqrt(low * high)
        if compute_epsilon(q, mid, steps, delta) > target_epsilon:
            low = mid
        else:
            high = mid
    return high
