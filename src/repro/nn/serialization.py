"""Save / load module parameters and full training state as ``.npz``.

This implements the "release model parameters" step of the paper's workflow
(Figure 2) -- the data holder trains DoppelGANger and ships the parameter
file to the data consumer, who regenerates synthetic data locally -- plus
the training-state snapshots behind checkpoint/resume in
:mod:`repro.resilience`.

Training-state archives hold everything needed to continue a run
bit-identically: every module parameter, every optimizer moment, the RNG
bit-generator state, and the iteration counter.  Writes are atomic
(temp file + ``os.replace``) so a process killed mid-write can never leave
a truncated checkpoint behind -- the previous checkpoint survives intact.
"""

from __future__ import annotations

import io
import json
import os
import zipfile

import numpy as np

from repro.nn.layers import Module
from repro.nn.optim import Optimizer

__all__ = ["save_module", "load_module", "save_npz_atomic",
           "arrays_to_bytes", "bytes_to_arrays",
           "save_training_state", "load_training_state", "TrainingState"]

_STATE_FORMAT = "repro-training-state"
_STATE_VERSION = 1


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write all named parameters of ``module`` to ``path`` (npz)."""
    state = module.state_dict()
    np.savez(path, **state)


def load_module(module: Module, path: str | os.PathLike) -> None:
    """Load parameters saved by :func:`save_module` into ``module``.

    The archive is validated before any parameter is touched: unreadable
    or truncated files raise a clear :class:`ValueError`, key mismatches
    raise :class:`KeyError` listing the offending names, and shape
    mismatches raise :class:`ValueError` naming the parameter (rather
    than a bare numpy broadcast error deep in the assignment).
    """
    try:
        with np.load(path) as archive:
            state = {name: archive[name] for name in archive.files}
    except (OSError, EOFError, ValueError, zipfile.BadZipFile) as exc:
        raise ValueError(
            f"cannot read module archive {os.fspath(path)!r}: the file is "
            f"missing, corrupted, or truncated ({exc})") from exc
    own = dict(module.named_parameters())
    missing = sorted(set(own) - set(state))
    unexpected = sorted(set(state) - set(own))
    if missing or unexpected:
        raise KeyError(
            f"archive {os.fspath(path)!r} does not match the module: "
            f"missing={missing}, unexpected={unexpected}")
    for name, value in state.items():
        if own[name].data.shape != value.shape:
            raise ValueError(
                f"shape mismatch for parameter {name!r} in "
                f"{os.fspath(path)!r}: module expects "
                f"{own[name].data.shape}, archive holds {value.shape}")
    module.load_state_dict(state)


# -- in-memory archives ------------------------------------------------------

def arrays_to_bytes(arrays: dict) -> bytes:
    """Serialize named arrays to ``.npz`` bytes (no filesystem touch).

    Used to ship model state across process boundaries -- e.g. handing a
    trained generator to the sharded-generation workers of
    :mod:`repro.parallel.generation` -- without a temp file per worker.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def bytes_to_arrays(blob: bytes) -> dict:
    """Inverse of :func:`arrays_to_bytes`; raises ValueError on corruption."""
    try:
        with np.load(io.BytesIO(blob)) as archive:
            return {name: archive[name] for name in archive.files}
    except (OSError, EOFError, ValueError, zipfile.BadZipFile) as exc:
        raise ValueError(
            f"cannot decode in-memory npz archive ({exc})") from exc


# -- atomic writes -----------------------------------------------------------

def save_npz_atomic(path: str | os.PathLike, arrays: dict) -> None:
    """Write an ``.npz`` archive atomically (temp file + rename).

    The archive is first written to ``<path>.tmp`` in the same directory,
    flushed and fsynced, then moved over ``path`` with :func:`os.replace`.
    A crash at any point leaves either the old file or the new file --
    never a truncated mix.  The ``serialization.pre_rename`` fault site
    (see :mod:`repro.resilience.faults`) fires between write and rename so
    tests can prove that property.
    """
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        np.savez(handle, **arrays)
        handle.flush()
        os.fsync(handle.fileno())
    # Imported lazily: repro.resilience.checkpoint imports this module.
    from repro.resilience import faults
    faults.fire("serialization.pre_rename")
    os.replace(tmp, path)


# -- full training state -----------------------------------------------------

class TrainingState:
    """Decoded contents of a training-state archive."""

    def __init__(self, iteration: int, rng_state: dict,
                 module_states: dict, optimizer_states: dict,
                 extra_arrays: dict, extra_meta: dict):
        self.iteration = iteration
        self.rng_state = rng_state
        self.module_states = module_states
        self.optimizer_states = optimizer_states
        self.extra_arrays = extra_arrays
        self.extra_meta = extra_meta


def save_training_state(path: str | os.PathLike, *,
                        modules: dict[str, Module],
                        optimizers: dict[str, Optimizer],
                        rng: np.random.Generator,
                        iteration: int,
                        extra_arrays: dict | None = None,
                        extra_meta: dict | None = None) -> None:
    """Atomically snapshot a full training run to ``path``.

    Args:
        modules: Named modules whose parameters to save.
        optimizers: Named optimizers whose moments/hyper-state to save.
        rng: The training RNG; its bit-generator state is captured so a
            resumed run draws the identical noise sequence.
        iteration: Completed-iteration counter to resume from.
        extra_arrays: Additional named float arrays (e.g. loss traces).
        extra_meta: Additional JSON-serializable metadata.
    """
    arrays: dict[str, np.ndarray] = {}
    optim_meta: dict[str, dict] = {}
    for name, module in modules.items():
        for pname, value in module.state_dict().items():
            arrays[f"module::{name}::{pname}"] = value
    for name, optimizer in optimizers.items():
        scalars = {}
        for key, value in optimizer.state_dict().items():
            if isinstance(value, list):
                for i, arr in enumerate(value):
                    arrays[f"optim::{name}::{key}::{i}"] = arr
            else:
                scalars[key] = value
        optim_meta[name] = scalars
    for key, value in (extra_arrays or {}).items():
        arrays[f"extra::{key}"] = np.asarray(value)
    meta = {
        "format": _STATE_FORMAT,
        "version": _STATE_VERSION,
        "iteration": int(iteration),
        "rng_state": rng.bit_generator.state,
        "optimizers": optim_meta,
        "extra": extra_meta or {},
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    save_npz_atomic(path, arrays)


def load_training_state(path: str | os.PathLike) -> TrainingState:
    """Read a training-state archive written by :func:`save_training_state`.

    Raises a clear :class:`ValueError` for missing, truncated, corrupted,
    or wrong-format files.
    """
    path = os.fspath(path)
    try:
        with np.load(path) as archive:
            raw = {name: archive[name] for name in archive.files}
    except (OSError, EOFError, ValueError, KeyError,
            zipfile.BadZipFile) as exc:
        raise ValueError(
            f"cannot read training state {path!r}: the file is missing, "
            f"corrupted, or truncated ({exc})") from exc
    if "__meta__" not in raw:
        raise ValueError(f"{path!r} is not a training-state archive "
                         f"(no __meta__ entry)")
    try:
        meta = json.loads(bytes(raw.pop("__meta__").tobytes()).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(
            f"training state {path!r} has a corrupted metadata block "
            f"({exc})") from exc
    if meta.get("format") != _STATE_FORMAT:
        raise ValueError(f"{path!r} is not a training-state archive "
                         f"(format={meta.get('format')!r})")

    module_states: dict[str, dict] = {}
    optim_arrays: dict[str, dict[str, dict[int, np.ndarray]]] = {}
    extra_arrays: dict[str, np.ndarray] = {}
    for name, value in raw.items():
        kind, _, rest = name.partition("::")
        if kind == "module":
            mod, _, pname = rest.partition("::")
            module_states.setdefault(mod, {})[pname] = value
        elif kind == "optim":
            opt, _, tail = rest.partition("::")
            key, _, index = tail.partition("::")
            optim_arrays.setdefault(opt, {}).setdefault(
                key, {})[int(index)] = value
        elif kind == "extra":
            extra_arrays[rest] = value

    optimizer_states: dict[str, dict] = {}
    for opt, scalars in meta.get("optimizers", {}).items():
        state = dict(scalars)
        for key, indexed in optim_arrays.get(opt, {}).items():
            state[key] = [indexed[i] for i in sorted(indexed)]
        optimizer_states[opt] = state

    return TrainingState(iteration=int(meta["iteration"]),
                         rng_state=meta["rng_state"],
                         module_states=module_states,
                         optimizer_states=optimizer_states,
                         extra_arrays=extra_arrays,
                         extra_meta=meta.get("extra", {}))
