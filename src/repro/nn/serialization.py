"""Save / load module parameters as ``.npz`` archives.

This implements the "release model parameters" step of the paper's workflow
(Figure 2): the data holder trains DoppelGANger and ships the parameter file
to the data consumer, who regenerates synthetic data locally.
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn.layers import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write all named parameters of ``module`` to ``path`` (npz)."""
    state = module.state_dict()
    np.savez(path, **state)


def load_module(module: Module, path: str | os.PathLike) -> None:
    """Load parameters saved by :func:`save_module` into ``module``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
