"""Fused execution kernels: one graph node per logical operation.

The reference layers in :mod:`repro.nn.layers` build their math out of
:mod:`repro.nn.ops` primitives -- roughly 17 graph nodes per LSTM step and
T of everything for a length-T sequence.  On a numpy substrate the Python
graph bookkeeping, not the arithmetic, is the wall-clock bottleneck.  The
kernels here collapse the hot paths into single graph nodes with
hand-written backward passes:

- :func:`linear` -- fused ``x @ W + b``.  Its VJP is expressed with
  *differentiable* ops, so double backprop (``create_graph=True``) works:
  the WGAN-GP gradient penalty differentiates through the critic MLPs.
- :func:`lstm_cell` -- all four gates in one numpy pass with a closed-form
  (first-order only) VJP.
- :func:`lstm_sequence` -- the whole (B, T, H) scan as ONE graph node; the
  backward is hand-written truncated-free BPTT with batched weight-gradient
  GEMMs.

The raw array math lives in module-level pure helpers
(:func:`_linear_forward`, :func:`_lstm_seq_forward`,
:func:`_lstm_seq_backward`, ...) that the graph-building wrappers resolve
through module globals at call time.  That indirection is the kernels'
*replay hook*: the plan compiler (:mod:`repro.nn.plan`) patches the helpers
during tracing to record their inputs/outputs, then re-invokes them against
preallocated workspaces on every replay.  The helpers accept an optional
``ws=`` workspace dict (see :func:`_lstm_seq_workspace`) so a replay can
run the scan allocation-free; with or without a workspace the arithmetic
(operations, operand order, associativity) is identical, so results are
bit-for-bit the same.

Double-backprop boundary (important): the gradient penalty only needs
second-order gradients through the *discriminator* MLPs, never through the
LSTM generator (fake samples are detached before entering the critic loss).
So ``linear`` keeps a differentiable VJP while the LSTM kernels may use
closed-form numpy VJPs; they raise a clear error if someone tries to build
a higher-order graph through them -- switch to the reference path with
``fused_kernels(False)`` for that.

The reference slow path stays available behind the module-level flag::

    with kernels.fused_kernels(False):   # bit-for-bit reference semantics
        trainer.train(data)
"""

from __future__ import annotations

import contextlib
import time

import numpy as np

from repro.nn import ops
from repro.nn.ops import _sigmoid_stable
from repro.nn.profiler import PROFILER, profiled
from repro.nn.tensor import Tensor, astensor, is_grad_enabled

__all__ = ["linear", "lstm_cell", "lstm_sequence",
           "fused_enabled", "set_fused", "fused_kernels"]

# Global dispatch flag consulted by the layers in repro.nn.layers.
_FUSED = True


def fused_enabled() -> bool:
    """Whether layers dispatch to the fused kernels (default True)."""
    return _FUSED


def set_fused(enabled: bool) -> bool:
    """Set the dispatch flag; returns the previous value."""
    global _FUSED
    previous = _FUSED
    _FUSED = bool(enabled)
    return previous


@contextlib.contextmanager
def fused_kernels(enabled: bool = True):
    """Context manager scoping the fused/reference dispatch flag."""
    previous = set_fused(enabled)
    try:
        yield
    finally:
        set_fused(previous)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Same stable logistic as ops.sigmoid (bit-identical per element).
    return _sigmoid_stable(x)


def _sigmoid_into(x: np.ndarray, out: np.ndarray, tmp: np.ndarray,
                  mask: np.ndarray) -> np.ndarray:
    """Buffered :func:`repro.nn.ops._sigmoid_stable` (bit-identical values).

    ``e = exp(-|clip(x)|)`` is built in ``out``; ``tmp`` holds the shared
    denominator then the x>=0 branch; ``mask`` selects between branches.
    ``|clip(x, -500, 500)|`` is spelled ``minimum(|x|, 500)`` -- the same
    bits (including NaN propagation) in two ufunc calls instead of
    ``np.clip``'s Python wrapper plus ``absolute``, which is measurable
    overhead at one call per gate per timestep.
    """
    np.absolute(x, out=out)
    np.minimum(out, 500.0, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)          # out = e
    np.add(1.0, out, out=tmp)     # tmp = 1 + e
    np.divide(out, tmp, out=out)  # out = e / (1 + e)   (x < 0 branch)
    np.divide(1.0, tmp, out=tmp)  # tmp = 1 / (1 + e)   (x >= 0 branch)
    np.greater_equal(x, 0, out=mask)
    np.copyto(out, tmp, where=mask)
    return out


def _require_first_order(name: str) -> None:
    if is_grad_enabled():
        raise RuntimeError(
            f"{name} has a closed-form first-order VJP; higher-order "
            "gradients (create_graph=True) through the LSTM are not "
            "supported on the fused path.  Wrap the computation in "
            "repro.nn.kernels.fused_kernels(False) to use the "
            "differentiable reference layers instead.")


# -- pure array helpers (plan replay hooks) -----------------------------------

def _linear_forward(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
                    out: np.ndarray | None = None) -> np.ndarray:
    """``x @ W + b`` on raw arrays, optionally into a preallocated ``out``."""
    if out is None:
        return x @ weight + bias
    np.matmul(x, weight, out=out)
    np.add(out, bias, out=out)
    return out


def _lstm_seq_workspace(batch: int, steps: int, in_dim: int, n: int) -> dict:
    """Preallocated buffers for one fixed-shape LSTM sequence scan."""
    big = (batch, steps, n)
    return {
        "x_proj_flat": np.empty((batch * steps, 4 * n)),
        "h_out": np.empty(big), "i_all": np.empty(big),
        "f_all": np.empty(big), "g_all": np.empty(big),
        "o_all": np.empty(big), "c_prev_all": np.empty(big),
        "h_prev_all": np.empty(big), "tanh_c_all": np.empty(big),
        "z": np.empty((batch, 4 * n)),
        "c": np.empty((batch, n)), "h": np.empty((batch, n)),
        "tmp": np.empty((batch, n)), "tanh_c": np.empty((batch, n)),
        # Gate buffers: input+forget share one sigmoid pass over z[:, :2n].
        "i_f": np.empty((batch, 2 * n)), "g": np.empty((batch, n)),
        "o": np.empty((batch, n)),
        "sig_tmp": np.empty((batch, 2 * n)),
        "sig_mask": np.empty((batch, 2 * n), dtype=bool),
        "sig_tmp_o": np.empty((batch, n)),
        "sig_mask_o": np.empty((batch, n), dtype=bool),
    }


def _lstm_seq_forward(x: np.ndarray, h0: np.ndarray, c0: np.ndarray,
                      wih: np.ndarray, whh: np.ndarray, bias: np.ndarray,
                      ws: dict | None = None,
                      need_cache: bool = True) -> tuple:
    """Forward LSTM scan on raw arrays.

    Returns ``(h_out, i_all, f_all, g_all, o_all, c_prev_all, h_prev_all,
    tanh_c_all)`` -- the hidden states plus every cache the backward pass
    needs.  ``ws`` (from :func:`_lstm_seq_workspace`) supplies reusable
    buffers; the arithmetic is identical either way.

    ``need_cache=False`` skips the seven per-timestep cache stores (the
    gate/state snapshots only BPTT reads); the returned cache arrays are
    then stale workspace buffers that must not be consumed.  ``h_out`` is
    computed by the exact same arithmetic either way, so inference-only
    scans (plan replays whose cache slots are dead) stay bit-identical
    while dropping ~7 array copies per timestep.
    """
    batch, steps, in_dim = x.shape
    n = h0.shape[1]
    if ws is None:
        ws = _lstm_seq_workspace(batch, steps, in_dim, n)
    # One GEMM for every step's input contribution.
    x_proj = np.matmul(x.reshape(batch * steps, in_dim), wih,
                       out=ws["x_proj_flat"]).reshape(batch, steps, 4 * n)
    h_out = ws["h_out"]
    i_all, f_all = ws["i_all"], ws["f_all"]
    g_all, o_all = ws["g_all"], ws["o_all"]
    c_prev_all, h_prev_all = ws["c_prev_all"], ws["h_prev_all"]
    tanh_c_all = ws["tanh_c_all"]
    z, c_buf, h_buf, tmp = ws["z"], ws["c"], ws["h"], ws["tmp"]
    tanh_buf = ws["tanh_c"]

    h = h0
    c = c0
    for t in range(steps):
        if need_cache:
            h_prev_all[:, t] = h
            c_prev_all[:, t] = c
        # z = x_proj[:, t] + h @ whh + bias, with the same left-to-right
        # association as the expression form.
        np.matmul(h, whh, out=z)
        np.add(x_proj[:, t], z, out=z)
        np.add(z, bias, out=z)
        # Input+forget gates share one sigmoid pass over the first 2n cols.
        i_f = _sigmoid_into(z[:, 0 * n:2 * n], ws["i_f"], ws["sig_tmp"],
                            ws["sig_mask"])
        i = i_f[:, :n]
        f = i_f[:, n:]
        g_gate = np.tanh(z[:, 2 * n:3 * n], out=ws["g"])
        o = _sigmoid_into(z[:, 3 * n:4 * n], ws["o"], ws["sig_tmp_o"],
                          ws["sig_mask_o"])
        # c = f * c + i * g_gate  (elementwise; in-place is exact)
        np.multiply(f, c, out=c_buf)
        np.multiply(i, g_gate, out=tmp)
        np.add(c_buf, tmp, out=c_buf)
        c = c_buf
        np.tanh(c, out=tanh_buf)
        np.multiply(o, tanh_buf, out=h_buf)
        h = h_buf
        if need_cache:
            i_all[:, t] = i
            f_all[:, t] = f
            g_all[:, t] = g_gate
            o_all[:, t] = o
            tanh_c_all[:, t] = tanh_buf
        h_out[:, t] = h
    return (h_out, i_all, f_all, g_all, o_all, c_prev_all, h_prev_all,
            tanh_c_all)


def _lstm_seq_bwd_workspace(batch: int, steps: int, in_dim: int,
                            n: int) -> dict:
    small = (batch, n)
    return {
        "dz_all": np.empty((batch, steps, 4 * n)),
        "dh": np.empty(small), "dc": np.empty(small),
        "dh_next": np.empty(small), "dc_next": np.empty(small),
        "t1": np.empty(small), "t2": np.empty(small),
        "dx_flat": np.empty((batch * steps, in_dim)),
        "d_wih": np.empty((in_dim, 4 * n)),
        "d_whh": np.empty((n, 4 * n)),
        "d_bias": np.empty(4 * n),
    }


def _lstm_seq_backward(upstream: np.ndarray, x: np.ndarray,
                       wih: np.ndarray, whh: np.ndarray,
                       i_all: np.ndarray, f_all: np.ndarray,
                       g_all: np.ndarray, o_all: np.ndarray,
                       c_prev_all: np.ndarray, h_prev_all: np.ndarray,
                       tanh_c_all: np.ndarray,
                       ws: dict | None = None) -> tuple:
    """Hand-written BPTT on raw arrays (adjoint of :func:`_lstm_seq_forward`).

    Returns ``(dx, dh0, dc0, d_wih, d_whh, d_bias)``.
    """
    batch, steps, in_dim = x.shape
    n = i_all.shape[2]
    if ws is None:
        ws = _lstm_seq_bwd_workspace(batch, steps, in_dim, n)
    dz_all = ws["dz_all"]
    dh, dc = ws["dh"], ws["dc"]
    dh_next, dc_next = ws["dh_next"], ws["dc_next"]
    t1, t2 = ws["t1"], ws["t2"]
    dh_next.fill(0.0)
    dc_next.fill(0.0)
    for t in reversed(range(steps)):
        np.add(upstream[:, t], dh_next, out=dh)
        tanh_c = tanh_c_all[:, t]
        o = o_all[:, t]
        i = i_all[:, t]
        f = f_all[:, t]
        g_gate = g_all[:, t]
        # dc = dc_next + dh * o * (1 - tanh_c^2)
        np.multiply(tanh_c, tanh_c, out=t1)
        np.subtract(1.0, t1, out=t1)
        np.multiply(dh, o, out=t2)
        np.multiply(t2, t1, out=t2)
        np.add(dc_next, t2, out=dc)
        dz = dz_all[:, t]
        # dz_i = (dc * g) * (i * (1 - i))
        np.subtract(1.0, i, out=t1)
        np.multiply(i, t1, out=t1)
        np.multiply(dc, g_gate, out=t2)
        np.multiply(t2, t1, out=dz[:, 0 * n:1 * n])
        # dz_f = (dc * c_prev) * (f * (1 - f))
        np.subtract(1.0, f, out=t1)
        np.multiply(f, t1, out=t1)
        np.multiply(dc, c_prev_all[:, t], out=t2)
        np.multiply(t2, t1, out=dz[:, 1 * n:2 * n])
        # dz_g = (dc * i) * (1 - g^2)
        np.multiply(g_gate, g_gate, out=t1)
        np.subtract(1.0, t1, out=t1)
        np.multiply(dc, i, out=t2)
        np.multiply(t2, t1, out=dz[:, 2 * n:3 * n])
        # dz_o = (dh * tanh_c) * (o * (1 - o))
        np.subtract(1.0, o, out=t1)
        np.multiply(o, t1, out=t1)
        np.multiply(dh, tanh_c, out=t2)
        np.multiply(t2, t1, out=dz[:, 3 * n:4 * n])
        np.matmul(dz, whh.T, out=dh_next)
        np.multiply(dc, f, out=dc_next)
    flat_dz = dz_all.reshape(batch * steps, 4 * n)
    dx = np.matmul(flat_dz, wih.T, out=ws["dx_flat"]).reshape(batch, steps,
                                                              in_dim)
    d_wih = np.matmul(x.reshape(batch * steps, in_dim).T, flat_dz,
                      out=ws["d_wih"])
    d_whh = np.matmul(h_prev_all.reshape(batch * steps, n).T, flat_dz,
                      out=ws["d_whh"])
    d_bias = flat_dz.sum(axis=0, out=ws["d_bias"])
    return dx, dh_next, dc_next, d_wih, d_whh, d_bias


def _lstm_cell_forward(x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray,
                       wih: np.ndarray, whh: np.ndarray, bias: np.ndarray
                       ) -> tuple:
    """One LSTM step on raw arrays; returns ``(h, c, i, f, g, o, tanh_c)``."""
    n = h_prev.shape[1]
    z = x @ wih + h_prev @ whh + bias
    i_f = _sigmoid(z[:, 0 * n:2 * n])  # input+forget gates share one pass
    i = i_f[:, :n]
    f = i_f[:, n:]
    g_gate = np.tanh(z[:, 2 * n:3 * n])
    o = _sigmoid(z[:, 3 * n:4 * n])
    c = f * c_prev + i * g_gate
    tanh_c = np.tanh(c)
    h = o * tanh_c
    return h, c, i, f, g_gate, o, tanh_c


def _lstm_cell_backward(dh: np.ndarray | None, dc_direct: np.ndarray | None,
                        x: np.ndarray, h_prev: np.ndarray,
                        c_prev: np.ndarray, wih: np.ndarray,
                        whh: np.ndarray, i: np.ndarray, f: np.ndarray,
                        g_gate: np.ndarray, o: np.ndarray,
                        tanh_c: np.ndarray) -> tuple:
    """Closed-form cell VJP on raw arrays.

    Returns ``(dx, dh_prev, dc_prev, d_wih, d_whh, d_bias)``.
    """
    n = i.shape[1]
    if dh is not None:
        dc = dh * o * (1.0 - tanh_c * tanh_c)
        dz_o = (dh * tanh_c) * (o * (1.0 - o))
    else:
        dc = np.zeros_like(tanh_c)
        dz_o = np.zeros_like(tanh_c)
    if dc_direct is not None:
        dc = dc + dc_direct
    dz = np.empty((i.shape[0], 4 * n))
    dz[:, 0 * n:1 * n] = (dc * g_gate) * (i * (1.0 - i))
    dz[:, 1 * n:2 * n] = (dc * c_prev) * (f * (1.0 - f))
    dz[:, 2 * n:3 * n] = (dc * i) * (1.0 - g_gate * g_gate)
    dz[:, 3 * n:4 * n] = dz_o
    return (dz @ wih.T, dz @ whh.T, dc * f, x.T @ dz, h_prev.T @ dz,
            dz.sum(axis=0))


# -- fused affine -------------------------------------------------------------

def linear(x, weight, bias) -> Tensor:
    """Fused ``x @ W + b`` for 2-D ``x``: one graph node instead of two.

    The VJP is written with differentiable primitives, so this op sits on
    the *differentiable* side of the double-backprop boundary and is safe
    inside WGAN-GP critics.
    """
    x, weight, bias = astensor(x), astensor(weight), astensor(bias)
    if x.ndim != 2:
        raise ValueError("kernels.linear requires a 2-D input")
    out = _linear_forward(x.data, weight.data, bias.data)

    def vjp(g):
        return (ops.matmul(g, ops.transpose(weight)),
                ops.matmul(ops.transpose(x), g),
                ops.sum_(g, axis=0))

    return ops._result(out, (x, weight, bias), vjp)


# -- fused LSTM cell ----------------------------------------------------------

def lstm_cell(x, h_prev, c_prev, weight_ih, weight_hh, bias
              ) -> tuple[Tensor, Tensor]:
    """One LSTM step, all four gates in a single numpy pass.

    Gate order in the fused weight matrices: input, forget, cell, output
    (matching :class:`repro.nn.layers.LSTMCell`).  Returns ``(h, c)`` as
    two graph nodes sharing one forward cache; the closed-form VJP of each
    assumes zero upstream gradient on the other output, which is exact
    because gradient contributions add linearly in the engine.
    """
    x, h_prev, c_prev = astensor(x), astensor(h_prev), astensor(c_prev)
    weight_ih, weight_hh, bias = (astensor(weight_ih), astensor(weight_hh),
                                  astensor(bias))
    h, c, i, f, g_gate, o, tanh_c = _lstm_cell_forward(
        x.data, h_prev.data, c_prev.data, weight_ih.data, weight_hh.data,
        bias.data)

    parents = (x, h_prev, c_prev, weight_ih, weight_hh, bias)

    def backward(dh: np.ndarray | None, dc_direct: np.ndarray | None):
        started = time.perf_counter()
        arrays = _lstm_cell_backward(dh, dc_direct, x.data, h_prev.data,
                                     c_prev.data, weight_ih.data,
                                     weight_hh.data, i, f, g_gate, o,
                                     tanh_c)
        grads = tuple(Tensor(a) for a in arrays)
        if PROFILER.active:
            PROFILER.record("lstm_cell.backward",
                            time.perf_counter() - started)
        return grads

    def vjp_h(g):
        _require_first_order("lstm_cell")
        return backward(g.data, None)

    def vjp_c(g):
        _require_first_order("lstm_cell")
        return backward(None, g.data)

    return (ops._result(h, parents, vjp_h),
            ops._result(c, parents, vjp_c))


# -- fused LSTM sequence scan -------------------------------------------------

def lstm_sequence(x, h0, c0, weight_ih, weight_hh, bias) -> Tensor:
    """Full LSTM scan over (B, T, D) inputs as ONE graph node.

    Forward precomputes the input projection for all steps in a single
    GEMM, then runs the recurrence caching gate activations.  The VJP is
    hand-written backpropagation-through-time: a reverse python loop for
    the recurrent part plus batched GEMMs for the weight gradients.
    First-order only (see module docstring); gradients flow into the
    inputs, both initial states, and all three parameters.

    Returns the hidden states for every step, shape (B, T, H).
    """
    x, h0, c0 = astensor(x), astensor(h0), astensor(c0)
    weight_ih, weight_hh, bias = (astensor(weight_ih), astensor(weight_hh),
                                  astensor(bias))
    if x.ndim != 3:
        raise ValueError("lstm_sequence requires (batch, time, features)")
    (h_out, i_all, f_all, g_all, o_all, c_prev_all, h_prev_all,
     tanh_c_all) = _lstm_seq_forward(x.data, h0.data, c0.data,
                                     weight_ih.data, weight_hh.data,
                                     bias.data)

    parents = (x, h0, c0, weight_ih, weight_hh, bias)

    def vjp(g):
        _require_first_order("lstm_sequence")
        started = time.perf_counter()
        arrays = _lstm_seq_backward(g.data, x.data, weight_ih.data,
                                    weight_hh.data, i_all, f_all, g_all,
                                    o_all, c_prev_all, h_prev_all,
                                    tanh_c_all)
        grads = tuple(Tensor(a) for a in arrays)
        if PROFILER.active:
            PROFILER.record("lstm_sequence.backward",
                            time.perf_counter() - started)
        return grads

    return ops._result(h_out, parents, vjp)


# Profile the fused kernels alongside the ops primitives.
linear = profiled(linear, name="linear")
lstm_cell = profiled(lstm_cell, name="lstm_cell")
lstm_sequence = profiled(lstm_sequence, name="lstm_sequence")
