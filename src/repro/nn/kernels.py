"""Fused execution kernels: one graph node per logical operation.

The reference layers in :mod:`repro.nn.layers` build their math out of
:mod:`repro.nn.ops` primitives -- roughly 17 graph nodes per LSTM step and
T of everything for a length-T sequence.  On a numpy substrate the Python
graph bookkeeping, not the arithmetic, is the wall-clock bottleneck.  The
kernels here collapse the hot paths into single graph nodes with
hand-written backward passes:

- :func:`linear` -- fused ``x @ W + b``.  Its VJP is expressed with
  *differentiable* ops, so double backprop (``create_graph=True``) works:
  the WGAN-GP gradient penalty differentiates through the critic MLPs.
- :func:`lstm_cell` -- all four gates in one numpy pass with a closed-form
  (first-order only) VJP.
- :func:`lstm_sequence` -- the whole (B, T, H) scan as ONE graph node; the
  backward is hand-written truncated-free BPTT with batched weight-gradient
  GEMMs.

Double-backprop boundary (important): the gradient penalty only needs
second-order gradients through the *discriminator* MLPs, never through the
LSTM generator (fake samples are detached before entering the critic loss).
So ``linear`` keeps a differentiable VJP while the LSTM kernels may use
closed-form numpy VJPs; they raise a clear error if someone tries to build
a higher-order graph through them -- switch to the reference path with
``fused_kernels(False)`` for that.

The reference slow path stays available behind the module-level flag::

    with kernels.fused_kernels(False):   # bit-for-bit reference semantics
        trainer.train(data)
"""

from __future__ import annotations

import contextlib
import time

import numpy as np

from repro.nn import ops
from repro.nn.profiler import PROFILER, profiled
from repro.nn.tensor import Tensor, astensor, is_grad_enabled

__all__ = ["linear", "lstm_cell", "lstm_sequence",
           "fused_enabled", "set_fused", "fused_kernels"]

# Global dispatch flag consulted by the layers in repro.nn.layers.
_FUSED = True


def fused_enabled() -> bool:
    """Whether layers dispatch to the fused kernels (default True)."""
    return _FUSED


def set_fused(enabled: bool) -> bool:
    """Set the dispatch flag; returns the previous value."""
    global _FUSED
    previous = _FUSED
    _FUSED = bool(enabled)
    return previous


@contextlib.contextmanager
def fused_kernels(enabled: bool = True):
    """Context manager scoping the fused/reference dispatch flag."""
    previous = set_fused(enabled)
    try:
        yield
    finally:
        set_fused(previous)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Same stable piecewise logistic as ops.sigmoid (bit-identical per
    # element), but masked so each branch's exp runs only on its own
    # elements instead of np.where evaluating both on the full array.
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-np.clip(x[pos], -500, 500)))
    neg = ~pos
    e = np.exp(np.clip(x[neg], -500, 500))
    out[neg] = e / (1.0 + e)
    return out


def _require_first_order(name: str) -> None:
    if is_grad_enabled():
        raise RuntimeError(
            f"{name} has a closed-form first-order VJP; higher-order "
            "gradients (create_graph=True) through the LSTM are not "
            "supported on the fused path.  Wrap the computation in "
            "repro.nn.kernels.fused_kernels(False) to use the "
            "differentiable reference layers instead.")


# -- fused affine -------------------------------------------------------------

def linear(x, weight, bias) -> Tensor:
    """Fused ``x @ W + b`` for 2-D ``x``: one graph node instead of two.

    The VJP is written with differentiable primitives, so this op sits on
    the *differentiable* side of the double-backprop boundary and is safe
    inside WGAN-GP critics.
    """
    x, weight, bias = astensor(x), astensor(weight), astensor(bias)
    if x.ndim != 2:
        raise ValueError("kernels.linear requires a 2-D input")
    out = x.data @ weight.data + bias.data

    def vjp(g):
        return (ops.matmul(g, ops.transpose(weight)),
                ops.matmul(ops.transpose(x), g),
                ops.sum_(g, axis=0))

    return ops._result(out, (x, weight, bias), vjp)


# -- fused LSTM cell ----------------------------------------------------------

def lstm_cell(x, h_prev, c_prev, weight_ih, weight_hh, bias
              ) -> tuple[Tensor, Tensor]:
    """One LSTM step, all four gates in a single numpy pass.

    Gate order in the fused weight matrices: input, forget, cell, output
    (matching :class:`repro.nn.layers.LSTMCell`).  Returns ``(h, c)`` as
    two graph nodes sharing one forward cache; the closed-form VJP of each
    assumes zero upstream gradient on the other output, which is exact
    because gradient contributions add linearly in the engine.
    """
    x, h_prev, c_prev = astensor(x), astensor(h_prev), astensor(c_prev)
    weight_ih, weight_hh, bias = (astensor(weight_ih), astensor(weight_hh),
                                  astensor(bias))
    n = h_prev.shape[1]
    z = x.data @ weight_ih.data + h_prev.data @ weight_hh.data + bias.data
    i_f = _sigmoid(z[:, 0 * n:2 * n])  # input+forget gates share one pass
    i = i_f[:, :n]
    f = i_f[:, n:]
    g_gate = np.tanh(z[:, 2 * n:3 * n])
    o = _sigmoid(z[:, 3 * n:4 * n])
    c = f * c_prev.data + i * g_gate
    tanh_c = np.tanh(c)
    h = o * tanh_c

    parents = (x, h_prev, c_prev, weight_ih, weight_hh, bias)

    def backward(dh: np.ndarray | None, dc_direct: np.ndarray | None):
        started = time.perf_counter()
        if dh is not None:
            dc = dh * o * (1.0 - tanh_c * tanh_c)
            dz_o = (dh * tanh_c) * (o * (1.0 - o))
        else:
            dc = np.zeros_like(c)
            dz_o = np.zeros_like(c)
        if dc_direct is not None:
            dc = dc + dc_direct
        dz = np.empty_like(z)
        dz[:, 0 * n:1 * n] = (dc * g_gate) * (i * (1.0 - i))
        dz[:, 1 * n:2 * n] = (dc * c_prev.data) * (f * (1.0 - f))
        dz[:, 2 * n:3 * n] = (dc * i) * (1.0 - g_gate * g_gate)
        dz[:, 3 * n:4 * n] = dz_o
        grads = (Tensor(dz @ weight_ih.data.T),
                 Tensor(dz @ weight_hh.data.T),
                 Tensor(dc * f),
                 Tensor(x.data.T @ dz),
                 Tensor(h_prev.data.T @ dz),
                 Tensor(dz.sum(axis=0)))
        if PROFILER.active:
            PROFILER.record("lstm_cell.backward",
                            time.perf_counter() - started)
        return grads

    def vjp_h(g):
        _require_first_order("lstm_cell")
        return backward(g.data, None)

    def vjp_c(g):
        _require_first_order("lstm_cell")
        return backward(None, g.data)

    return (ops._result(h, parents, vjp_h),
            ops._result(c, parents, vjp_c))


# -- fused LSTM sequence scan -------------------------------------------------

def lstm_sequence(x, h0, c0, weight_ih, weight_hh, bias) -> Tensor:
    """Full LSTM scan over (B, T, D) inputs as ONE graph node.

    Forward precomputes the input projection for all steps in a single
    GEMM, then runs the recurrence caching gate activations.  The VJP is
    hand-written backpropagation-through-time: a reverse python loop for
    the recurrent part plus batched GEMMs for the weight gradients.
    First-order only (see module docstring); gradients flow into the
    inputs, both initial states, and all three parameters.

    Returns the hidden states for every step, shape (B, T, H).
    """
    x, h0, c0 = astensor(x), astensor(h0), astensor(c0)
    weight_ih, weight_hh, bias = (astensor(weight_ih), astensor(weight_hh),
                                  astensor(bias))
    if x.ndim != 3:
        raise ValueError("lstm_sequence requires (batch, time, features)")
    batch, steps, in_dim = x.shape
    n = h0.shape[1]
    whh = weight_hh.data
    # One GEMM for every step's input contribution.
    x_proj = (x.data.reshape(batch * steps, in_dim)
              @ weight_ih.data).reshape(batch, steps, 4 * n)

    i_all = np.empty((batch, steps, n))
    f_all = np.empty((batch, steps, n))
    g_all = np.empty((batch, steps, n))
    o_all = np.empty((batch, steps, n))
    c_prev_all = np.empty((batch, steps, n))
    h_prev_all = np.empty((batch, steps, n))
    tanh_c_all = np.empty((batch, steps, n))
    h_out = np.empty((batch, steps, n))

    h = h0.data
    c = c0.data
    for t in range(steps):
        h_prev_all[:, t] = h
        c_prev_all[:, t] = c
        z = x_proj[:, t] + h @ whh + bias.data
        i_f = _sigmoid(z[:, 0 * n:2 * n])  # input+forget gates, one pass
        i = i_f[:, :n]
        f = i_f[:, n:]
        g_gate = np.tanh(z[:, 2 * n:3 * n])
        o = _sigmoid(z[:, 3 * n:4 * n])
        c = f * c + i * g_gate
        tanh_c = np.tanh(c)
        h = o * tanh_c
        i_all[:, t] = i
        f_all[:, t] = f
        g_all[:, t] = g_gate
        o_all[:, t] = o
        tanh_c_all[:, t] = tanh_c
        h_out[:, t] = h

    parents = (x, h0, c0, weight_ih, weight_hh, bias)

    def vjp(g):
        _require_first_order("lstm_sequence")
        started = time.perf_counter()
        upstream = g.data
        dz_all = np.empty((batch, steps, 4 * n))
        dh_next = np.zeros((batch, n))
        dc_next = np.zeros((batch, n))
        for t in reversed(range(steps)):
            dh = upstream[:, t] + dh_next
            tanh_c = tanh_c_all[:, t]
            o = o_all[:, t]
            i = i_all[:, t]
            f = f_all[:, t]
            g_gate = g_all[:, t]
            dc = dc_next + dh * o * (1.0 - tanh_c * tanh_c)
            dz = dz_all[:, t]
            dz[:, 0 * n:1 * n] = (dc * g_gate) * (i * (1.0 - i))
            dz[:, 1 * n:2 * n] = (dc * c_prev_all[:, t]) * (f * (1.0 - f))
            dz[:, 2 * n:3 * n] = (dc * i) * (1.0 - g_gate * g_gate)
            dz[:, 3 * n:4 * n] = (dh * tanh_c) * (o * (1.0 - o))
            dh_next = dz @ whh.T
            dc_next = dc * f
        flat_dz = dz_all.reshape(batch * steps, 4 * n)
        dx = (flat_dz @ weight_ih.data.T).reshape(batch, steps, in_dim)
        d_wih = x.data.reshape(batch * steps, in_dim).T @ flat_dz
        d_whh = h_prev_all.reshape(batch * steps, n).T @ flat_dz
        d_bias = flat_dz.sum(axis=0)
        grads = (Tensor(dx), Tensor(dh_next), Tensor(dc_next),
                 Tensor(d_wih), Tensor(d_whh), Tensor(d_bias))
        if PROFILER.active:
            PROFILER.record("lstm_sequence.backward",
                            time.perf_counter() - started)
        return grads

    return ops._result(h_out, parents, vjp)


# Profile the fused kernels alongside the ops primitives.
linear = profiled(linear, name="linear")
lstm_cell = profiled(lstm_cell, name="lstm_cell")
lstm_sequence = profiled(lstm_sequence, name="lstm_sequence")
