"""Neural-network modules: Linear, MLP, LSTM.

Mirrors the architecture palette the paper uses (Appendix B): MLPs with a few
hidden layers for generators/discriminators, and a single-layer LSTM for the
feature generator.

Hot paths (Linear, LSTMCell, LSTM) dispatch to the fused kernels in
:mod:`repro.nn.kernels` by default; the op-by-op reference implementations
remain available under ``kernels.fused_kernels(False)`` and are the ground
truth the fused kernels are parity-tested against.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn import init, kernels, ops
from repro.nn.tensor import Parameter, Tensor

__all__ = ["Module", "Linear", "MLP", "LSTMCell", "LSTM", "GRUCell",
           "LayerNorm", "Sequential"]


class Module:
    """Minimal module base class: parameter registration + (de)serialisation."""

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        params: list[Parameter] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            for p in _collect_parameters(value):
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        return params

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        named: list[tuple[str, Parameter]] = []
        for key, value in self.__dict__.items():
            path = f"{prefix}{key}"
            if isinstance(value, Parameter):
                named.append((path, value))
            elif isinstance(value, Module):
                named.extend(value.named_parameters(prefix=f"{path}."))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        named.extend(item.named_parameters(prefix=f"{path}.{i}."))
                    elif isinstance(item, Parameter):
                        named.append((f"{path}.{i}", item))
        return named

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}")
            p.data = np.array(state[name], dtype=np.float64)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _collect_parameters(value) -> Iterable[Parameter]:
    if isinstance(value, Parameter):
        yield value
    elif isinstance(value, Module):
        yield from value.parameters()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_parameters(item)


class Linear(Module):
    """Affine map ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform(rng, in_features, out_features), name="weight")
        self.bias = Parameter(init.zeros(out_features), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        if kernels.fused_enabled() and x.ndim == 2:
            return kernels.linear(x, self.weight, self.bias)
        return ops.matmul(x, self.weight) + self.bias


# Late-bound through the ops/functional module globals (not direct function
# references) so runtime instrumentation of those globals -- the profiler's
# _instrument_ops and the plan tracer's shims -- is visible to MLP forwards.
_ACTIVATIONS = {
    "relu": lambda x: ops.relu(x),
    "tanh": lambda x: ops.tanh(x),
    "sigmoid": lambda x: ops.sigmoid(x),
    "leaky_relu": lambda x: F.leaky_relu(x),
    "none": lambda x: x,
}


class MLP(Module):
    """Multi-layer perceptron with a configurable hidden activation.

    The paper's generators use 2 hidden layers of 100 units; discriminators
    use 4 hidden layers of 200 units (Appendix B).
    """

    def __init__(self, in_features: int, hidden: Sequence[int],
                 out_features: int, activation: str = "relu",
                 rng: np.random.Generator | None = None):
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}; "
                             f"choose from {sorted(_ACTIVATIONS)}")
        rng = rng or np.random.default_rng()
        sizes = [in_features, *hidden, out_features]
        self.layers = [Linear(a, b, rng=rng) for a, b in zip(sizes, sizes[1:])]
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        act = _ACTIVATIONS[self.activation]
        for layer in self.layers[:-1]:
            x = act(layer(x))
        return self.layers[-1](x)


class LSTMCell(Module):
    """Standard LSTM cell (Hochreiter & Schmidhuber, 1997).

    Gate order in the fused weight matrices: input, forget, cell, output.
    The forget-gate bias is initialised to 1 (common practice; helps memory).
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            init.xavier_uniform(rng, input_size, 4 * hidden_size),
            name="weight_ih")
        self.weight_hh = Parameter(
            np.concatenate(
                [init.orthogonal(rng, hidden_size, hidden_size)
                 for _ in range(4)], axis=1),
            name="weight_hh")
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias, name="bias")

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]
                ) -> tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        if kernels.fused_enabled():
            return kernels.lstm_cell(x, h_prev, c_prev, self.weight_ih,
                                     self.weight_hh, self.bias)
        gates = (ops.matmul(x, self.weight_ih)
                 + ops.matmul(h_prev, self.weight_hh) + self.bias)
        n = self.hidden_size
        i = ops.sigmoid(gates[:, 0 * n:1 * n])
        f = ops.sigmoid(gates[:, 1 * n:2 * n])
        g = ops.tanh(gates[:, 2 * n:3 * n])
        o = ops.sigmoid(gates[:, 3 * n:4 * n])
        c = f * c_prev + i * g
        h = o * ops.tanh(c)
        return h, c

    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class GRUCell(Module):
    """Gated recurrent unit cell (Cho et al., 2014).

    A lighter-weight alternative to the LSTM for the feature generator;
    gate order in the fused weights: reset, update, candidate.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            init.xavier_uniform(rng, input_size, 3 * hidden_size),
            name="weight_ih")
        self.weight_hh = Parameter(
            np.concatenate(
                [init.orthogonal(rng, hidden_size, hidden_size)
                 for _ in range(3)], axis=1),
            name="weight_hh")
        self.bias = Parameter(init.zeros(3 * hidden_size), name="bias")

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        n = self.hidden_size
        gates_x = ops.matmul(x, self.weight_ih) + self.bias
        gates_h = ops.matmul(h_prev, self.weight_hh)
        r = ops.sigmoid(gates_x[:, 0:n] + gates_h[:, 0:n])
        z = ops.sigmoid(gates_x[:, n:2 * n] + gates_h[:, n:2 * n])
        candidate = ops.tanh(gates_x[:, 2 * n:3 * n]
                             + r * gates_h[:, 2 * n:3 * n])
        return z * h_prev + (Tensor(1.0) - z) * candidate

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class LSTM(Module):
    """Single-layer LSTM over a (batch, time, features) tensor."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor,
                state: tuple[Tensor, Tensor] | None = None) -> Tensor:
        """Run over all time steps; returns hidden states (B, T, H)."""
        batch, steps = x.shape[0], x.shape[1]
        if state is None:
            state = self.cell.initial_state(batch)
        h, c = state
        if kernels.fused_enabled():
            return kernels.lstm_sequence(x, h, c, self.cell.weight_ih,
                                         self.cell.weight_hh, self.cell.bias)
        outputs = []
        for t in range(steps):
            h, c = self.cell(x[:, t, :], (h, c))
            outputs.append(h)
        return ops.stack(outputs, axis=1)


class LayerNorm(Module):
    """Layer normalisation over the last axis (Ba et al., 2016).

    Useful for stabilising deeper discriminators; WGAN-GP forbids batch
    normalisation in the critic (it couples samples, breaking the
    per-sample gradient penalty), so layer norm is the standard choice.
    """

    def __init__(self, normalized_dim: int, eps: float = 1e-5):
        self.normalized_dim = normalized_dim
        self.eps = eps
        self.gain = Parameter(np.ones(normalized_dim), name="gain")
        self.bias = Parameter(np.zeros(normalized_dim), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        inv = ops.power(variance + Tensor(self.eps), -0.5)
        return centred * inv * self.gain + self.bias


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x
