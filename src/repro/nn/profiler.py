"""Op-level profiler for the :mod:`repro.nn` execution layer.

Every primitive in :mod:`repro.nn.ops` and every fused kernel in
:mod:`repro.nn.kernels` reports into a process-global :class:`OpProfiler`
when profiling is active.  Timings are *inclusive*: an op that calls other
ops inside its VJP (or its own implementation, e.g. ``mean`` -> ``sum``)
accumulates their time too, so the table reads like a flat flame graph.

Besides call counts and seconds, each op records how many *fresh result
arrays* it allocated (views -- reshape, transpose, basic slicing -- count
zero).  The compiled-plan replay path (:mod:`repro.nn.plan`) reports its
per-step allocation counts through the same channel, so eager-vs-compiled
allocation behaviour is directly comparable in one table.

Typical use::

    from repro.nn import profiler

    with profiler.profile() as prof:
        trainer.train(data, iterations=50)
    print(prof.summary(top=10))

When inactive (the default) the instrumentation adds one attribute check
per op call, so uninstrumented runs pay essentially nothing.
"""

from __future__ import annotations

import contextlib
import functools
import time

__all__ = ["OpProfiler", "PROFILER", "profile", "profiled", "count_allocs"]


def count_allocs(result) -> int:
    """Number of freshly allocated arrays in an op result.

    An array *owns* its buffer when ``base is None``; views (reshape,
    transpose, basic slicing) share their parent's buffer and count zero.
    Walks one level of tuple/list nesting (``lstm_cell`` returns a pair).
    """
    try:
        import numpy as np
    except Exception:  # pragma: no cover - numpy is a hard dependency
        return 0
    if isinstance(result, (tuple, list)):
        return sum(count_allocs(item) for item in result)
    data = getattr(result, "data", result)
    if isinstance(data, np.ndarray):
        return 1 if data.base is None else 0
    return 0


class OpProfiler:
    """Accumulates per-op call counts, wall-clock seconds and allocations."""

    __slots__ = ("active", "_calls", "_seconds", "_allocs")

    def __init__(self):
        self.active = False
        self._calls: dict[str, int] = {}
        self._seconds: dict[str, float] = {}
        self._allocs: dict[str, int] = {}

    def reset(self) -> None:
        self._calls.clear()
        self._seconds.clear()
        self._allocs.clear()

    def record(self, name: str, seconds: float, allocs: int = 0) -> None:
        """Add one call of ``name`` taking ``seconds`` (inclusive) that
        allocated ``allocs`` fresh result arrays."""
        self._calls[name] = self._calls.get(name, 0) + 1
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._allocs[name] = self._allocs.get(name, 0) + allocs

    # -- reporting -----------------------------------------------------------
    def stats(self) -> dict[str, dict[str, float]]:
        """Per-op ``{"calls": n, "seconds": s, "allocs": a}``, sorted by
        seconds desc; seconds ties break by op name so reports are
        deterministic regardless of op execution (insertion) order."""
        return {
            name: {"calls": self._calls[name],
                   "seconds": self._seconds[name],
                   "allocs": self._allocs.get(name, 0)}
            for name in sorted(self._seconds,
                               key=lambda n: (-self._seconds[n], n))
        }

    def total_calls(self) -> int:
        return sum(self._calls.values())

    def total_allocs(self) -> int:
        """Total fresh result arrays allocated across all recorded ops."""
        return sum(self._allocs.values())

    def publish(self, emit) -> int:
        """Attach the profile to an event log via ``emit(kind, payload,
        volatile=...)`` (e.g. :func:`repro.observability.emit`).

        Call and allocation *counts* are deterministic for a fixed
        config+seed, so they form the event payload; wall-clock seconds
        are run-dependent and travel in the volatile side-channel.  Ops
        are emitted in name order so the event stream is reproducible.
        Returns the number of events emitted.
        """
        emitted = 0
        for name in sorted(self._calls):
            emit("profile.op", {"op": name, "calls": self._calls[name],
                                "allocs": self._allocs.get(name, 0)},
                 volatile={"seconds": self._seconds[name]})
            emitted += 1
        return emitted

    def summary(self, top: int | None = None) -> str:
        """An aligned text table of the heaviest ops."""
        rows = list(self.stats().items())
        if top is not None:
            rows = rows[:top]
        if not rows:
            return "(no ops recorded)"
        name_w = max(len(name) for name, _ in rows)
        lines = [f"{'op'.ljust(name_w)}  {'calls':>9}  {'seconds':>10}  "
                 f"{'allocs':>9}"]
        for name, entry in rows:
            lines.append(f"{name.ljust(name_w)}  {entry['calls']:>9d}  "
                         f"{entry['seconds']:>10.4f}  "
                         f"{entry['allocs']:>9d}")
        return "\n".join(lines)


PROFILER = OpProfiler()


@contextlib.contextmanager
def profile(reset: bool = True):
    """Enable op profiling inside the block; yields the global profiler."""
    if reset:
        PROFILER.reset()
    previous = PROFILER.active
    PROFILER.active = True
    try:
        yield PROFILER
    finally:
        PROFILER.active = previous


def profiled(fn, name: str | None = None):
    """Wrap an op so its calls are recorded when profiling is active."""
    op_name = name or fn.__name__

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if not PROFILER.active:
            return fn(*args, **kwargs)
        started = time.perf_counter()
        try:
            result = fn(*args, **kwargs)
        except BaseException:
            PROFILER.record(op_name, time.perf_counter() - started)
            raise
        PROFILER.record(op_name, time.perf_counter() - started,
                        count_allocs(result))
        return result

    return wrapper
