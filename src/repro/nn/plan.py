"""Trace-and-replay plan compiler for fixed-shape training/serving steps.

The autodiff engine in :mod:`repro.nn` rebuilds its graph from scratch on
every step: each primitive allocates a result array, a Tensor node, and a
VJP closure, and the backward pass re-derives the same op sequence every
iteration.  For GAN training the step shape is *fixed* after the first
iteration -- same batch size, same architecture, same loss -- so all of
that per-step bookkeeping is pure overhead.

:class:`PlanFunction` removes it by tracing one eager execution and
replaying the recorded op schedule afterwards:

1. **Trace** -- the first call with a given input-shape signature runs
   eagerly under a tracer that temporarily patches the :mod:`repro.nn.ops`
   primitives (and the :mod:`repro.nn.kernels` array helpers) with
   recording shims.  Every op call is logged as a step: op name, input
   references, static arguments, and output slots.  Because VJP closures
   and operator overloads resolve op names through module globals at call
   time, the *backward* pass is captured by the same shims -- the plan
   covers forward, loss, and gradients in one schedule.
2. **Replay** -- subsequent calls with the same signature execute the
   recorded schedule directly against a preallocated arena: in-place
   ``out=`` ufunc and BLAS calls, no Tensor/tape construction, no per-step
   allocation.  Every replay expression is chosen to be **bit-identical**
   to its eager counterpart (verified property-by-property in
   ``tests/nn/test_plan.py``), so compiled and eager runs produce the same
   bytes.
3. **Fallback** -- any new input signature (shape/dtype change, fused-mode
   flip) re-traces; anything the tracer cannot prove safe (unconsumed
   inputs, aliased outputs, too many signatures) permanently falls back to
   eager execution for that signature.  Correctness never depends on the
   plan: the trace itself *is* an eager run, and replay is opt-out via
   ``REPRO_PLAN=0`` or :func:`set_plan_enabled`.

Tracing rules (what the shims record):

- Tensor-level primitives (``add`` ... ``getitem``, ``_scatter``) record
  one step each.  Composites (``sqrt``, ``mean``, ``clip``, ``swapaxes``,
  ``stack``) decompose through the patched globals, so they need no shims.
- Data-dependent closure constants (relu masks, abs signs, max-shift
  values, the stable-sigmoid output) are produced by array-level helpers
  (``ops._relu_mask`` et al.) that are shimmed too -- a replay recomputes
  them instead of snapshotting stale trace values.
- The fused kernels record through their pure array helpers
  (``kernels._lstm_seq_forward`` ...), which accept preallocated
  workspaces on replay.
- Arrays not produced by any recorded step are snapshotted as constants
  (e.g. the all-ones seed gradient).  Python scalars pass through as
  literals.  Model parameters are re-read live (``p.data``) at every
  replay, so optimizer updates and checkpoint restores are honoured.

Arena lifetime: each plan owns its buffers for as long as the
:class:`PlanFunction` is alive.  Replay outputs may alias arena storage --
they are only valid until the next replay of the same plan.  Callers that
retain outputs across calls (e.g. the serving batcher) construct the plan
with ``copy_outputs=True``; outputs that alias constant or parameter
storage are always copied so in-place consumers cannot corrupt the plan.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time

import numpy as np

from repro.nn import kernels, ops
from repro.nn.profiler import PROFILER
from repro.nn.tensor import Tensor

__all__ = ["PlanFunction", "PlanUnsupported", "plan_enabled",
           "set_plan_enabled", "plan_mode"]


class PlanUnsupported(Exception):
    """A traced step cannot be compiled; the caller falls back to eager."""


_PLAN_ENABLED = os.environ.get("REPRO_PLAN", "1").lower() not in (
    "0", "false", "off", "no")


def plan_enabled() -> bool:
    """Whether traced signatures are replayed (default on; ``REPRO_PLAN=0``
    disables)."""
    return _PLAN_ENABLED


def set_plan_enabled(enabled: bool) -> bool:
    """Set the global replay flag; returns the previous value."""
    global _PLAN_ENABLED
    previous = _PLAN_ENABLED
    _PLAN_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def plan_mode(enabled: bool = True):
    """Context manager scoping the global replay flag."""
    previous = set_plan_enabled(enabled)
    try:
        yield
    finally:
        set_plan_enabled(previous)


# Only one trace may patch the op modules at a time.
_TRACE_LOCK = threading.Lock()


class _Active:
    tracer = None


_ACTIVE = _Active()


# Tensor-level primitives: name -> number of leading tensor arguments
# (remaining positional/keyword arguments are static).  ``sigmoid`` is
# absent on purpose: its output array is produced by the shimmed
# ``_sigmoid_stable`` helper, so a second record would alias the slot.
_TENSOR_OPS = {
    "add": 2, "sub": 2, "mul": 2, "div": 2, "maximum": 2, "minimum": 2,
    "matmul": 2, "neg": 1, "exp": 1, "log": 1, "tanh": 1, "relu": 1,
    "abs_": 1, "power": 1, "sum_": 1, "reshape": 1, "transpose": 1,
    "broadcast_to": 1, "getitem": 1, "_scatter": 1,
}

# Array-level helpers on ops (inputs/outputs are raw ndarrays).
_OPS_HELPERS = {
    "_sigmoid_stable": 1, "_relu_mask": 1, "_sign_of": 1,
    "_ge_masks": 2, "_le_masks": 2, "_amax": 1,
}

# Array-level helpers on kernels.  ``None`` means "every positional
# argument is a tensor input" (optional trailing ``out``/``ws`` arguments
# are never passed on the traced paths).
_KERNEL_HELPERS = {
    "_linear_forward": 3, "_lstm_cell_forward": 6, "_lstm_cell_backward": 12,
    "_lstm_seq_forward": 6, "_lstm_seq_backward": 11,
}

# Replay-schedule display names, aligned with the eager profiler's naming.
_DISPLAY = {
    "sum_": "sum", "abs_": "abs", "_scatter": "scatter",
    "_sigmoid_stable": "sigmoid", "_relu_mask": "relu.mask",
    "_sign_of": "abs.sign", "_ge_masks": "maximum.mask",
    "_le_masks": "minimum.mask", "_amax": "amax",
    "_linear_forward": "linear", "_lstm_cell_forward": "lstm_cell",
    "_lstm_cell_backward": "lstm_cell.backward",
    "_lstm_seq_forward": "lstm_sequence",
    "_lstm_seq_backward": "lstm_sequence.backward",
}


def _freeze(value):
    """Deep-copy ndarray components of static arguments (e.g. indices)."""
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, (tuple, list)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return {k: _freeze(v) for k, v in value.items()}
    return value


class _Step:
    __slots__ = ("name", "in_refs", "in_meta", "static", "out_slots",
                 "out_meta")

    def __init__(self, name, in_refs, in_meta, static, out_slots, out_meta):
        self.name = name
        self.in_refs = in_refs      # ("s", slot) | ("lit", value)
        self.in_meta = in_meta      # (shape, dtype) | None per input
        self.static = static        # frozen (args_tail, kwargs)
        self.out_slots = out_slots
        self.out_meta = out_meta    # (shape, dtype, is_view) per output


class _Tracer:
    """Records one eager execution as a step schedule."""

    def __init__(self):
        self.thread_id = threading.get_ident()
        self.failed: str | None = None
        self.steps: list[_Step] = []
        self.slot_of: dict[int, int] = {}    # id(array) -> slot
        self.n_slots = 0
        self.keepalive: list = []            # id stability for slot_of
        self.const_slots: dict[int, np.ndarray] = {}  # slot -> snapshot
        self.input_slots: list[int] = []
        self.input_ids: set[int] = set()
        self.param_refs: list[tuple[int, Tensor]] = []
        self.param_ids: set[int] = set()
        self.used_slots: set[int] = set()
        self.view_root: dict[int, int] = {}  # view slot -> storage root slot

    def on_this_thread(self) -> bool:
        return threading.get_ident() == self.thread_id

    def fail(self, reason: str) -> None:
        if self.failed is None:
            self.failed = reason

    def _new_slot(self, arr: np.ndarray) -> int:
        slot = self.n_slots
        self.n_slots += 1
        self.slot_of[id(arr)] = slot
        self.keepalive.append(arr)
        return slot

    def seed_inputs(self, arrays) -> None:
        for arr in arrays:
            if id(arr) in self.slot_of:
                self.fail("duplicate input array")
                return
            slot = self._new_slot(arr)
            self.input_slots.append(slot)
            self.input_ids.add(id(arr))

    def seed_params(self, params) -> None:
        for p in params:
            if id(p.data) in self.slot_of:
                continue  # parameter also passed as input; input wins
            slot = self._new_slot(p.data)
            self.param_refs.append((slot, p))
            self.param_ids.add(id(p.data))

    def _ref_of(self, value):
        if isinstance(value, Tensor):
            arr = value.data
        elif isinstance(value, np.ndarray):
            arr = value
        elif isinstance(value, (np.floating, np.integer)):
            return ("lit", float(value)), None
        else:
            return ("lit", value), None
        slot = self.slot_of.get(id(arr))
        if slot is None:
            # Not produced by any recorded step: snapshot as a constant.
            slot = self._new_slot(arr)
            self.const_slots[slot] = np.array(arr, copy=True)
        self.used_slots.add(slot)
        return ("s", slot), (arr.shape, arr.dtype)

    def record(self, name: str, tensor_args, static, outputs) -> None:
        if self.failed is not None:
            return
        in_refs, in_meta = [], []
        for value in tensor_args:
            ref, meta = self._ref_of(value)
            in_refs.append(ref)
            in_meta.append(meta)
        out_slots, out_meta = [], []
        for out in outputs:
            arr = out.data if isinstance(out, Tensor) else out
            if not isinstance(arr, np.ndarray):
                self.fail(f"{name} returned a non-array output")
                return
            if id(arr) in self.slot_of:
                self.fail(f"{name} returned an already-mapped array")
                return
            slot = self._new_slot(arr)
            out_slots.append(slot)
            out_meta.append((arr.shape, arr.dtype, arr.base is not None))
        self.steps.append(_Step(name, in_refs, in_meta, _freeze(static),
                                out_slots, out_meta))
        # Track storage roots so outputs aliasing constant/parameter
        # storage can be copied on return.
        if name in ("reshape", "transpose", "getitem"):
            src = in_refs[0]
            if src[0] == "s":
                root = self.view_root.get(src[1], src[1])
                for slot in out_slots:
                    self.view_root[slot] = root


def _shim_tensor_op(name: str, original, n_tensor: int):
    def shim(*args, **kwargs):
        out = original(*args, **kwargs)
        tr = _ACTIVE.tracer
        if tr is not None and tr.on_this_thread():
            tr.record(name, args[:n_tensor], (args[n_tensor:], kwargs),
                      (out,))
        return out
    return shim


def _shim_concat(original):
    def shim(tensors, axis=0):
        out = original(tensors, axis=axis)
        tr = _ACTIVE.tracer
        if tr is not None and tr.on_this_thread():
            tr.record("concat", tuple(tensors), ((), {"axis": axis}), (out,))
        return out
    return shim


def _shim_helper(name: str, original, n_tensor: int):
    def shim(*args, **kwargs):
        out = original(*args, **kwargs)
        tr = _ACTIVE.tracer
        if tr is not None and tr.on_this_thread():
            outputs = out if isinstance(out, tuple) else (out,)
            tr.record(name, args[:n_tensor], (args[n_tensor:], kwargs),
                      outputs)
        return out
    return shim


def _patch_modules():
    """Install recording shims; returns the saved originals."""
    saved = []
    for name, n in _TENSOR_OPS.items():
        original = getattr(ops, name)
        saved.append((ops, name, original))
        setattr(ops, name, _shim_tensor_op(name, original, n))
    original = ops.concat
    saved.append((ops, "concat", original))
    ops.concat = _shim_concat(original)
    for name, n in _OPS_HELPERS.items():
        original = getattr(ops, name)
        saved.append((ops, name, original))
        setattr(ops, name, _shim_helper(name, original, n))
    for name, n in _KERNEL_HELPERS.items():
        original = getattr(kernels, name)
        saved.append((kernels, name, original))
        setattr(kernels, name, _shim_helper(name, original, n))
    return saved


def _unpatch_modules(saved) -> None:
    for module, name, original in saved:
        setattr(module, name, original)


# -- replay-schedule builders -------------------------------------------------

_BIN_UFUNCS = {
    "add": np.add, "sub": np.subtract, "mul": np.multiply,
    "div": np.divide, "maximum": np.maximum, "minimum": np.minimum,
}
_UNARY_UFUNCS = {
    "neg": np.negative, "exp": np.exp, "log": np.log, "tanh": np.tanh,
    "abs_": np.absolute, "_sign_of": np.sign,
}


def _static_arg(step: _Step, position: int, keyword: str, default=None):
    args, kwargs = step.static
    if len(args) > position:
        return args[position]
    return kwargs.get(keyword, default)


class _PlanBuilder:
    """Turns a completed trace into preallocated buffers + run closures."""

    def __init__(self, tracer: _Tracer, outputs, copy_outputs: bool):
        self.tracer = tracer
        self.arena: list = [None] * tracer.n_slots
        for slot, snapshot in tracer.const_slots.items():
            self.arena[slot] = snapshot
        self.out_refs = self._resolve_outputs(outputs, copy_outputs)
        # Slot liveness: a produced slot is live iff some later step reads
        # it or the plan returns it.  Dead slots let replay builders skip
        # work whose results nothing consumes (e.g. BPTT caches of a
        # no-grad LSTM forward).
        self.live_slots = {ref[1] for step in tracer.steps
                           for ref in step.in_refs if ref[0] == "s"}
        self.live_slots.update(ref[0] for ref in self.out_refs
                               if ref is not None)
        self.schedule: list[tuple] = []
        for step in tracer.steps:
            name, run, allocs = self._build_step(step)
            self.schedule.append((_DISPLAY.get(name, name), run, allocs))

    # output resolution ------------------------------------------------------
    def _resolve_outputs(self, outputs, copy_outputs):
        tr = self.tracer
        protected = (set(tr.const_slots) | {s for s, _ in tr.param_refs}
                     | set(tr.input_slots))
        refs = []
        for out in outputs:
            if out is None:
                refs.append(None)
                continue
            arr = out.data if isinstance(out, Tensor) else out
            slot = tr.slot_of.get(id(arr))
            if slot is None:
                raise PlanUnsupported("an output was not produced by any "
                                      "recorded step")
            root = tr.view_root.get(slot, slot)
            refs.append((slot, copy_outputs or root in protected))
        return refs

    # step builders ----------------------------------------------------------
    def _buf(self, slot: int, meta) -> np.ndarray:
        shape, dtype, _ = meta
        buf = np.empty(shape, dtype=dtype)
        self.arena[slot] = buf
        return buf

    def _operand(self, ref):
        """Returns (is_slot, slot_or_literal)."""
        return (True, ref[1]) if ref[0] == "s" else (False, ref[1])

    def _build_step(self, step: _Step):
        name = step.name
        builder = getattr(self, "_build_" + name.strip("_"), None)
        if builder is None:
            builder = self._build_generic(name)
        return (name,) + builder(step)

    def _build_generic(self, name: str):
        def build(step):
            if name in _BIN_UFUNCS:
                return self._binary(step, _BIN_UFUNCS[name])
            if name in _UNARY_UFUNCS:
                return self._unary(step, _UNARY_UFUNCS[name])
            raise PlanUnsupported(f"no replay builder for op {name!r}")
        return build

    def _binary(self, step, ufunc):
        (sa, a), (sb, b) = map(self._operand, step.in_refs)
        buf = self._buf(step.out_slots[0], step.out_meta[0])
        if sa and sb:
            def run(arena):
                ufunc(arena[a], arena[b], out=buf)
        elif sa:
            def run(arena):
                ufunc(arena[a], b, out=buf)
        else:
            def run(arena):
                ufunc(a, arena[b], out=buf)
        return run, 0

    def _unary(self, step, ufunc):
        _, a = self._operand(step.in_refs[0])
        buf = self._buf(step.out_slots[0], step.out_meta[0])

        def run(arena):
            ufunc(arena[a], out=buf)
        return run, 0

    def _build_relu(self, step):
        _, a = self._operand(step.in_refs[0])
        buf = self._buf(step.out_slots[0], step.out_meta[0])

        def run(arena):
            np.maximum(arena[a], 0.0, out=buf)
        return run, 0

    def _build_power(self, step):
        _, a = self._operand(step.in_refs[0])
        exponent = float(_static_arg(step, 0, "exponent"))
        buf = self._buf(step.out_slots[0], step.out_meta[0])

        def run(arena):
            np.power(arena[a], exponent, out=buf)
        return run, 0

    def _build_matmul(self, step):
        (_, a), (_, b) = map(self._operand, step.in_refs)
        buf = self._buf(step.out_slots[0], step.out_meta[0])

        def run(arena):
            np.matmul(arena[a], arena[b], out=buf)
        return run, 0

    def _build_sum(self, step):
        _, a = self._operand(step.in_refs[0])
        ndim = len(step.in_meta[0][0])
        axes = ops._normalize_axis(_static_arg(step, 0, "axis"), ndim)
        axis_arg = axes or None
        keepdims = bool(_static_arg(step, 1, "keepdims", False))
        buf = self._buf(step.out_slots[0], step.out_meta[0])

        def run(arena):
            # np.sum's exact reduction path, minus its Python wrapper.
            np.add.reduce(arena[a], axis=axis_arg, keepdims=keepdims,
                          out=buf)
        return run, 0

    def _build_reshape(self, step):
        _, a = self._operand(step.in_refs[0])
        shape = tuple(_static_arg(step, 0, "shape"))
        slot = step.out_slots[0]
        allocs = 0 if step.out_meta[0][2] else 1

        def run(arena):
            arena[slot] = arena[a].reshape(shape)
        return run, allocs

    def _build_transpose(self, step):
        _, a = self._operand(step.in_refs[0])
        ndim = len(step.in_meta[0][0])
        axes = _static_arg(step, 0, "axes")
        if axes is None:
            axes = tuple(reversed(range(ndim)))
        axes = tuple(ax % ndim for ax in axes)
        slot = step.out_slots[0]

        def run(arena):
            arena[slot] = arena[a].transpose(axes)
        return run, 0

    def _build_broadcast_to(self, step):
        _, a = self._operand(step.in_refs[0])
        buf = self._buf(step.out_slots[0], step.out_meta[0])

        def run(arena):
            np.copyto(buf, arena[a])
        return run, 0

    def _build_concat(self, step):
        slots = [self._operand(r)[1] for r in step.in_refs]
        axis = int(_static_arg(step, 0, "axis", 0)) % len(step.in_meta[0][0])
        buf = self._buf(step.out_slots[0], step.out_meta[0])

        def run(arena):
            np.concatenate([arena[s] for s in slots], axis=axis, out=buf)
        return run, 0

    def _build_getitem(self, step):
        _, a = self._operand(step.in_refs[0])
        index = _static_arg(step, 0, "index")
        slot = step.out_slots[0]
        allocs = 0 if step.out_meta[0][2] else 1

        def run(arena):
            arena[slot] = arena[a][index]
        return run, allocs

    def _build_scatter(self, step):
        _, g = self._operand(step.in_refs[0])
        index = _static_arg(step, 0, "index")
        buf = self._buf(step.out_slots[0], step.out_meta[0])

        def run(arena):
            buf.fill(0.0)
            np.add.at(buf, index, arena[g])
        return run, 0

    def _build_sigmoid_stable(self, step):
        _, a = self._operand(step.in_refs[0])
        buf = self._buf(step.out_slots[0], step.out_meta[0])
        tmp = np.empty_like(buf)
        mask = np.empty(buf.shape, dtype=bool)

        def run(arena):
            kernels._sigmoid_into(arena[a], buf, tmp, mask)
        return run, 0

    def _build_relu_mask(self, step):
        _, a = self._operand(step.in_refs[0])
        buf = self._buf(step.out_slots[0], step.out_meta[0])
        mask = np.empty(buf.shape, dtype=bool)

        def run(arena):
            np.greater(arena[a], 0, out=mask)
            np.copyto(buf, mask)
        return run, 0

    def _cmp_masks(self, step, ufunc):
        (sa, a), (sb, b) = map(self._operand, step.in_refs)
        buf_a = self._buf(step.out_slots[0], step.out_meta[0])
        buf_b = self._buf(step.out_slots[1], step.out_meta[1])
        mask = np.empty(buf_a.shape, dtype=bool)

        def run(arena):
            ufunc(arena[a] if sa else a, arena[b] if sb else b, out=mask)
            np.copyto(buf_a, mask)
            np.logical_not(mask, out=mask)
            np.copyto(buf_b, mask)
        return run, 0

    def _build_ge_masks(self, step):
        return self._cmp_masks(step, np.greater_equal)

    def _build_le_masks(self, step):
        return self._cmp_masks(step, np.less_equal)

    def _build_amax(self, step):
        _, a = self._operand(step.in_refs[0])
        axis = _static_arg(step, 0, "axis")
        keepdims = bool(_static_arg(step, 1, "keepdims", False))
        buf = self._buf(step.out_slots[0], step.out_meta[0])

        def run(arena):
            # np.amax's exact reduction path, minus its Python wrapper.
            np.maximum.reduce(arena[a], axis=axis, keepdims=keepdims,
                              out=buf)
        return run, 0

    def _build_linear_forward(self, step):
        x, w, b = (self._operand(r)[1] for r in step.in_refs)
        buf = self._buf(step.out_slots[0], step.out_meta[0])

        def run(arena):
            kernels._linear_forward(arena[x], arena[w], arena[b], out=buf)
        return run, 0

    def _assign_outputs(self, slots):
        def assign(arena, results):
            for slot, arr in zip(slots, results):
                arena[slot] = arr
        return assign

    def _build_lstm_cell_forward(self, step):
        ins = [self._operand(r)[1] for r in step.in_refs]
        assign = self._assign_outputs(step.out_slots)
        allocs = sum(1 for meta in step.out_meta if not meta[2])

        def run(arena):
            assign(arena, kernels._lstm_cell_forward(
                *(arena[s] for s in ins)))
        return run, allocs

    def _build_lstm_cell_backward(self, step):
        operands = [self._operand(r) for r in step.in_refs]
        assign = self._assign_outputs(step.out_slots)
        allocs = len(step.out_slots)

        def run(arena):
            args = [arena[v] if is_slot else v for is_slot, v in operands]
            assign(arena, kernels._lstm_cell_backward(*args))
        return run, allocs

    def _build_lstm_seq_forward(self, step):
        ins = [self._operand(r)[1] for r in step.in_refs]
        batch, steps_, in_dim = step.in_meta[0][0]
        n = step.in_meta[1][0][1]
        ws = kernels._lstm_seq_workspace(batch, steps_, in_dim, n)
        # Dead-cache elimination: out_slots[1:] are the seven BPTT caches.
        # When nothing in the plan consumes them (a no-grad forward: the
        # d-step's detached generator pass, serving generation), replay
        # the scan with need_cache=False and bind only h_out -- same
        # arithmetic, ~7 fewer array copies per timestep.
        need_cache = any(s in self.live_slots for s in step.out_slots[1:])
        if need_cache:
            assign = self._assign_outputs(step.out_slots)

            def run(arena):
                assign(arena, kernels._lstm_seq_forward(
                    *(arena[s] for s in ins), ws=ws))
        else:
            h_slot = step.out_slots[0]

            def run(arena):
                arena[h_slot] = kernels._lstm_seq_forward(
                    *(arena[s] for s in ins), ws=ws, need_cache=False)[0]
        return run, 0

    def _build_lstm_seq_backward(self, step):
        ins = [self._operand(r)[1] for r in step.in_refs]
        batch, steps_, in_dim = step.in_meta[1][0]
        n = step.in_meta[4][0][2]
        ws = kernels._lstm_seq_bwd_workspace(batch, steps_, in_dim, n)
        assign = self._assign_outputs(step.out_slots)

        def run(arena):
            assign(arena, kernels._lstm_seq_backward(
                *(arena[s] for s in ins), ws=ws))
        return run, 0


class _Plan:
    """A compiled schedule bound to its preallocated arena."""

    __slots__ = ("schedule", "arena", "input_slots", "param_refs",
                 "out_refs", "allocs_per_replay")

    def __init__(self, builder: _PlanBuilder):
        self.schedule = builder.schedule
        self.arena = builder.arena
        self.input_slots = builder.tracer.input_slots
        self.param_refs = builder.tracer.param_refs
        self.out_refs = builder.out_refs
        self.allocs_per_replay = (
            sum(allocs for _, _, allocs in self.schedule)
            + sum(1 for ref in self.out_refs if ref is not None and ref[1]))

    def replay(self, inputs):
        arena = self.arena
        for slot, arr in zip(self.input_slots, inputs):
            arena[slot] = arr
        for slot, p in self.param_refs:
            arena[slot] = p.data
        if PROFILER.active:
            record = PROFILER.record
            clock = time.perf_counter
            for name, run, allocs in self.schedule:
                started = clock()
                run(arena)
                record(name, clock() - started, allocs)
        else:
            for _, run, _ in self.schedule:
                run(arena)
        outputs = []
        for ref in self.out_refs:
            if ref is None:
                outputs.append(None)
                continue
            slot, copy = ref
            arr = arena[slot]
            outputs.append(arr.copy() if copy else arr)
        return outputs


class PlanFunction:
    """Trace-and-replay wrapper around a fixed-shape array function.

    ``fn`` takes raw float64 ndarrays and returns a tuple of Tensors,
    ndarrays, or ``None``; a call always returns a list of
    ndarrays/``None``.  One plan is compiled per input signature
    ``(fused-mode, shapes, dtypes)``; signatures beyond ``max_plans`` and
    anything the tracer rejects run eagerly forever.  ``params`` lists the
    Parameters whose ``.data`` must be re-read live on every replay.

    Thread-safe: traces serialize globally, replays serialize per
    instance (each plan owns mutable buffers).
    """

    def __init__(self, fn, params=(), name: str = "plan",
                 copy_outputs: bool = False, max_plans: int = 8):
        self.fn = fn
        self.params = list(params)
        self.name = name
        self.copy_outputs = copy_outputs
        self.max_plans = max_plans
        self._plans: dict = {}
        self._lock = threading.Lock()
        self.stats = {"traces": 0, "replays": 0, "eager_calls": 0,
                      "fallbacks": 0}

    def signature(self, inputs) -> tuple:
        return (kernels.fused_enabled(),) + tuple(
            (a.shape, a.dtype.str) for a in inputs)

    def __call__(self, inputs):
        inputs = tuple(inputs)
        if not plan_enabled():
            self.stats["eager_calls"] += 1
            return self._eager(inputs)
        key = self.signature(inputs)
        with self._lock:
            entry = self._plans.get(key)
            if entry is None:
                if len(self._plans) >= self.max_plans:
                    self.stats["eager_calls"] += 1
                    return self._eager(inputs)
                plan, outputs = self._trace(inputs)
                self._plans[key] = plan if plan is not None else "eager"
                if plan is None:
                    self.stats["fallbacks"] += 1
                return outputs
            if entry == "eager":
                self.stats["eager_calls"] += 1
                return self._eager(inputs)
            self.stats["replays"] += 1
            return entry.replay(inputs)

    def allocs_per_replay(self) -> int | None:
        """Allocation count of the most recently compiled plan, if any."""
        for entry in reversed(list(self._plans.values())):
            if entry != "eager":
                return entry.allocs_per_replay
        return None

    def _eager(self, inputs):
        return _unwrap(self.fn(*inputs))

    def _trace(self, inputs):
        self.stats["traces"] += 1
        with _TRACE_LOCK:
            tracer = _Tracer()
            tracer.seed_inputs(inputs)
            tracer.seed_params(self.params)
            saved = _patch_modules()
            _ACTIVE.tracer = tracer
            try:
                raw = self.fn(*inputs)
            finally:
                _ACTIVE.tracer = None
                _unpatch_modules(saved)
        outputs = tuple(raw)
        plan = None
        if tracer.failed is None:
            # Every input must be consumed by a recorded step (or returned
            # as-is): a dtype-coerced copy of an input would otherwise be
            # baked into the plan as a stale constant.
            returned_slots = {
                tracer.slot_of.get(id(o.data if isinstance(o, Tensor)
                                      else o))
                for o in outputs if o is not None}
            unconsumed = [s for s in tracer.input_slots
                          if s not in tracer.used_slots
                          and s not in returned_slots]
            if unconsumed:
                tracer.fail("input array never consumed by a recorded step")
        if tracer.failed is None and tracer.steps:
            try:
                plan = _Plan(_PlanBuilder(tracer, outputs,
                                          self.copy_outputs))
            except PlanUnsupported:
                plan = None
        return plan, _unwrap(outputs)


def _unwrap(outputs):
    return [o.data if isinstance(o, Tensor) else o for o in outputs]
