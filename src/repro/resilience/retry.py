"""Bounded retry with deterministic exponential backoff.

Transient failures -- a serve client connecting before the server has
bound its port, a registry manifest read racing a (non-atomic) writer, a
supervised training worker that was SIGKILLed -- all want the same tiny
policy: try again a bounded number of times, waiting a little longer each
time.  Scattering ad-hoc ``for attempt in range(3)`` loops around the
codebase breeds subtle divergence (different caps, accidental wall-clock
jitter, swallowed exceptions), so this module centralises it.

Design constraints, matching the rest of :mod:`repro.resilience`:

- **Deterministic**: the backoff schedule is a pure function of the
  policy -- ``base_delay * multiplier**k`` capped at ``max_delay`` -- with
  no randomised jitter.  Two runs of the same failing call sleep the
  same amounts, so retry behaviour is reproducible in tests and the
  schedule can be asserted exactly.
- **Injectable clock**: callers (and tests) pass their own ``sleep``;
  nothing here reads the wall clock.
- **Bounded**: ``max_attempts`` is a hard cap.  When the budget is
  exhausted the *last* exception propagates unchanged, so callers keep
  their existing error semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["RetryPolicy", "retry_call"]


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded, deterministic exponential-backoff schedule.

    Args:
        max_attempts: Total tries, including the first (must be >= 1).
        base_delay: Seconds slept after the first failure.
        multiplier: Growth factor between consecutive delays.
        max_delay: Upper bound on any single delay.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.base_delay * self.multiplier ** (attempt - 1),
                   self.max_delay)

    def delays(self) -> tuple[float, ...]:
        """The full backoff schedule (``max_attempts - 1`` entries)."""
        return tuple(self.delay(a) for a in
                     range(1, self.max_attempts))


def retry_call(fn, *, retry_on: tuple[type[BaseException], ...],
               policy: RetryPolicy | None = None, sleep=time.sleep,
               on_retry=None):
    """Call ``fn()`` under ``policy``, retrying on ``retry_on``.

    Args:
        fn: Zero-argument callable; its return value is passed through.
        retry_on: Exception types that trigger a retry.  Anything else
            propagates immediately (a corrupt input should not be
            retried into a timeout).
        policy: Backoff schedule (default :class:`RetryPolicy()`).
        sleep: Injectable delay function (tests pass a recorder).
        on_retry: Optional ``on_retry(attempt, exc, delay)`` observer
            called before each sleep.

    Raises the final exception unchanged once ``max_attempts`` is
    exhausted.
    """
    policy = policy or RetryPolicy()
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt >= policy.max_attempts:
                raise
            delay = policy.delay(attempt)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                sleep(delay)
