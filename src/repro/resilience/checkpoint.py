"""Checkpoint/resume and in-memory rollback snapshots for ``DGTrainer``.

Two flavours of the same capture:

- **Disk checkpoints** (:func:`save_checkpoint` / :func:`load_checkpoint`)
  go through :func:`repro.nn.serialization.save_training_state`, so a run
  killed at any point -- including mid-write -- resumes from its last
  complete checkpoint with a bit-identical loss trace.
- **In-memory snapshots** (:func:`snapshot_trainer` /
  :func:`restore_trainer`) back the divergence sentinel's rollback: cheap
  enough to refresh every few iterations, no filesystem involved.

Both capture every module parameter, both Adam states (moments + step
count), the RNG bit-generator state, the iteration counter, and the loss
history -- the complete closure of the training loop.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.nn.serialization import load_training_state, save_training_state
from repro.observability import events as obs_events

__all__ = ["trainer_modules", "trainer_optimizers", "snapshot_trainer",
           "restore_trainer", "save_checkpoint", "load_checkpoint",
           "trainer_params_finite"]

_TRACE_FIELDS = ("iterations", "d_loss", "g_loss", "wasserstein")
_COUNTER_FIELDS = ("nan_events", "runaway_events", "step_faults",
                   "rollbacks", "lr_decays", "resumes")


def trainer_modules(trainer) -> dict:
    """Named modules owned by a :class:`~repro.core.trainer.DGTrainer`."""
    modules = {
        "attribute_generator": trainer.attribute_generator,
        "minmax_generator": trainer.minmax_generator,
        "feature_generator": trainer.feature_generator,
        "discriminator": trainer.discriminator,
    }
    if trainer.aux_discriminator is not None:
        modules["aux_discriminator"] = trainer.aux_discriminator
    return modules


def trainer_optimizers(trainer) -> dict:
    """Named optimizers owned by a trainer."""
    return {"g": trainer.g_optimizer, "d": trainer.d_optimizer}


def trainer_params_finite(trainer) -> bool:
    """True when every generator/discriminator parameter is finite.

    Used to refuse to snapshot a silently poisoned state (NaN weights
    whose loss has not blown up *yet*) -- rolling back to such a snapshot
    would loop forever.
    """
    for p in trainer.generator_params + trainer.discriminator_params:
        if not np.all(np.isfinite(p.data)):
            return False
    return True


# -- in-memory snapshots (sentinel rollback) --------------------------------

def snapshot_trainer(trainer, iteration: int, history) -> dict:
    """Deep-copy the full training state into a plain dict."""
    return {
        "iteration": int(iteration),
        "modules": {name: module.state_dict()
                    for name, module in trainer_modules(trainer).items()},
        "optimizers": {name: opt.state_dict()
                       for name, opt in trainer_optimizers(trainer).items()},
        "rng_state": copy.deepcopy(trainer.rng.bit_generator.state),
        "traces": {f: list(getattr(history, f)) for f in _TRACE_FIELDS},
    }


def restore_trainer(trainer, snapshot: dict, history) -> int:
    """Restore a snapshot in place; returns its iteration counter.

    History *traces* are truncated back to the snapshot point, but the
    instability counters (rollbacks, nan_events, ...) are left untouched:
    they describe the whole run, including the failures being rolled back.
    """
    for name, module in trainer_modules(trainer).items():
        module.load_state_dict(snapshot["modules"][name])
    for name, opt in trainer_optimizers(trainer).items():
        opt.load_state_dict(snapshot["optimizers"][name])
    trainer.rng.bit_generator.state = copy.deepcopy(snapshot["rng_state"])
    for field in _TRACE_FIELDS:
        getattr(history, field)[:] = snapshot["traces"][field]
    return snapshot["iteration"]


# -- disk checkpoints (kill/resume) -----------------------------------------

def save_checkpoint(trainer, path, iteration: int, history) -> None:
    """Atomically write a resumable checkpoint of ``trainer`` to ``path``."""
    extra_arrays = {
        "history_iterations": np.asarray(history.iterations,
                                         dtype=np.int64),
        "history_d_loss": np.asarray(history.d_loss, dtype=np.float64),
        "history_g_loss": np.asarray(history.g_loss, dtype=np.float64),
        "history_wasserstein": np.asarray(history.wasserstein,
                                          dtype=np.float64),
    }
    extra_meta = {"counters": {f: int(getattr(history, f))
                               for f in _COUNTER_FIELDS}}
    save_training_state(path, modules=trainer_modules(trainer),
                        optimizers=trainer_optimizers(trainer),
                        rng=trainer.rng, iteration=iteration,
                        extra_arrays=extra_arrays, extra_meta=extra_meta)
    # The destination path varies run-to-run (tmp dirs), so it rides in
    # the volatile side-channel; the iteration is the deterministic fact.
    obs_events.emit("checkpoint.save", {"iteration": int(iteration)},
                    volatile={"path": str(path)})


def load_checkpoint(trainer, path, history) -> int:
    """Restore ``trainer`` and ``history`` from ``path``.

    Returns the iteration to resume from (the number of completed
    iterations at save time).  Raises :class:`ValueError` on corrupted
    files or on checkpoints whose shapes do not match the trainer.
    """
    state = load_training_state(path)
    modules = trainer_modules(trainer)
    missing = sorted(set(modules) - set(state.module_states))
    unexpected = sorted(set(state.module_states) - set(modules))
    if missing or unexpected:
        raise ValueError(
            f"checkpoint {path!r} does not match this trainer: missing "
            f"modules {missing}, unexpected modules {unexpected}")
    for name, module in modules.items():
        module.load_state_dict(state.module_states[name])
    for name, opt in trainer_optimizers(trainer).items():
        if name not in state.optimizer_states:
            raise ValueError(f"checkpoint {path!r} has no state for "
                             f"optimizer {name!r}")
        opt.load_state_dict(state.optimizer_states[name])
    trainer.rng.bit_generator.state = state.rng_state
    history.iterations[:] = [int(v) for v in
                             state.extra_arrays["history_iterations"]]
    history.d_loss[:] = [float(v) for v in
                         state.extra_arrays["history_d_loss"]]
    history.g_loss[:] = [float(v) for v in
                         state.extra_arrays["history_g_loss"]]
    history.wasserstein[:] = [float(v) for v in
                              state.extra_arrays["history_wasserstein"]]
    for field, value in state.extra_meta.get("counters", {}).items():
        if field in _COUNTER_FIELDS:
            setattr(history, field, int(value))
    # Resuming is an execution-mode fact (a fresh run has no such event),
    # so it is transient: it never appears in the canonical log, keeping
    # kill/resume runs byte-identical to uninterrupted ones.
    obs_events.emit("checkpoint.load", {"iteration": int(state.iteration)},
                    volatile={"path": str(path)}, transient=True)
    return state.iteration
