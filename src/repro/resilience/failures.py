"""Structured failure records for multi-model sweeps.

A benchmark sweep trains many (dataset, model) pairs; one diverging model
must not abort the other nineteen.  The harness catches per-model failures
into :class:`FailureRecord` instances and keeps going; the report layer
renders them as a summary table instead of a traceback.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FailureRecord"]


@dataclass
class FailureRecord:
    """One model that failed to train during a sweep.

    Args:
        dataset: Dataset name the model was being trained on.
        model: Model name (harness key, e.g. ``"dg"``).
        exception_type: Class name of the exception that escaped ``fit``.
        message: ``str(exception)``.
        iteration: Last iteration recorded before the failure, if the
            model exposes a training history (``None`` otherwise).
        retries: Sentinel rollback count before the run was abandoned.
        elapsed: Wall-clock seconds spent before the failure.
    """

    dataset: str
    model: str
    exception_type: str
    message: str
    iteration: int | None = None
    retries: int = 0
    elapsed: float = 0.0

    @classmethod
    def from_exception(cls, dataset: str, model_name: str, exc: Exception,
                       model=None, elapsed: float = 0.0) -> "FailureRecord":
        """Build a record from an exception, mining the model's partial
        training history (iteration reached, rollback count) when present."""
        iteration = getattr(exc, "iteration", None)
        retries = getattr(exc, "rollbacks", 0)
        history = getattr(getattr(model, "trainer", None), "history", None)
        if history is not None:
            if iteration is None and history.iterations:
                iteration = history.iterations[-1]
            retries = max(retries, getattr(history, "rollbacks", 0))
        return cls(dataset=dataset, model=model_name,
                   exception_type=type(exc).__name__,
                   message=str(exc), iteration=iteration,
                   retries=retries, elapsed=elapsed)

    def row(self) -> list:
        """Render as a row for :func:`repro.experiments.print_table`."""
        return [self.dataset, self.model, self.exception_type,
                "-" if self.iteration is None else self.iteration,
                self.retries,
                self.message if len(self.message) <= 60
                else self.message[:57] + "..."]
