"""Deterministic fault injection for resilience testing.

Long unattended GAN training fails in ways that are hard to reproduce on
demand: a NaN loss at iteration 31 417, a process kill between a checkpoint
write and its rename, an exception in the middle of a critic step.  This
module gives tests a way to *schedule* those failures deterministically so
every recovery path in :mod:`repro.resilience` is provable, not aspirational.

Hook points ("sites") are compiled into the production code paths and are
free when no fault is armed (a single empty-list check).  Current sites:

- ``trainer.step`` -- fired at the top of each training iteration.
- ``trainer.critic_loss`` -- fired with the critic loss value after the
  discriminator update(s); ``nan``/``inf`` actions poison the value.
- ``trainer.generator_loss`` -- same, for the generator loss.
- ``serialization.pre_rename`` -- fired between the temp-file write and the
  atomic rename of a checkpoint; a ``kill`` action here simulates a process
  dying at the worst possible moment.

Usage::

    from repro.resilience import faults

    with faults.injected(faults.nan_at("trainer.critic_loss", step=4)):
        model.fit(data, sentinel=True)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Fault", "FaultInjected", "SimulatedKill", "install", "clear",
           "injected", "fire", "active", "nan_at", "inf_at", "raise_at",
           "kill_at"]

_ACTIONS = ("nan", "inf", "raise", "kill")


class FaultInjected(RuntimeError):
    """Raised by a ``raise`` action; recoverable by the sentinel."""

    def __init__(self, message: str):
        super().__init__(message)
        self.reason = "fault"


class SimulatedKill(BaseException):
    """Raised by a ``kill`` action.

    Derives from :class:`BaseException` (like ``SystemExit``) so ordinary
    ``except Exception`` recovery code cannot accidentally swallow it --
    a real ``SIGKILL`` is not catchable either.
    """


@dataclass
class Fault:
    """One scheduled failure.

    Args:
        site: Hook-point name (see module docstring).
        action: One of ``nan``/``inf`` (poison the value passed to
            :func:`fire`), ``raise`` (:class:`FaultInjected`), or ``kill``
            (:class:`SimulatedKill`).
        step: Only fire when :func:`fire` is called with this step index
            (``None`` = fire at the first opportunity).
        times: How many times to fire before disarming (one-shot by
            default, so a retry after rollback succeeds).
    """

    site: str
    action: str
    step: int | None = None
    times: int = 1
    fired: int = field(default=0, init=False)

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}, "
                             f"got {self.action!r}")


_ACTIVE: list[Fault] = []


def install(*faults: Fault) -> None:
    """Arm one or more faults (in addition to any already armed)."""
    _ACTIVE.extend(faults)


def clear() -> None:
    """Disarm all faults."""
    _ACTIVE.clear()


def active() -> list[Fault]:
    """The currently armed faults (live list of dataclasses)."""
    return list(_ACTIVE)


@contextmanager
def injected(*faults: Fault):
    """Context manager: arm ``faults`` for the block, disarm after."""
    install(*faults)
    try:
        yield list(faults)
    finally:
        for f in faults:
            try:
                _ACTIVE.remove(f)
            except ValueError:
                pass


def fire(site: str, step: int | None = None, value=None):
    """Called at hook points; returns ``value``, possibly poisoned.

    A ``raise`` fault raises :class:`FaultInjected`; a ``kill`` fault
    raises :class:`SimulatedKill`.  Fast no-op when nothing is armed.
    """
    if not _ACTIVE:
        return value
    for fault in _ACTIVE:
        if fault.site != site or fault.fired >= fault.times:
            continue
        if fault.step is not None and step is not None \
                and step != fault.step:
            continue
        fault.fired += 1
        if fault.action == "nan":
            return float("nan")
        if fault.action == "inf":
            return float("inf")
        if fault.action == "raise":
            raise FaultInjected(
                f"injected fault at {site} (step={step})")
        raise SimulatedKill(f"simulated process kill at {site} "
                            f"(step={step})")
    return value


def nan_at(site: str, step: int | None = None, times: int = 1) -> Fault:
    """A fault that replaces the value at ``site`` with NaN."""
    return Fault(site=site, action="nan", step=step, times=times)


def inf_at(site: str, step: int | None = None, times: int = 1) -> Fault:
    """A fault that replaces the value at ``site`` with +Inf."""
    return Fault(site=site, action="inf", step=step, times=times)


def raise_at(site: str, step: int | None = None, times: int = 1) -> Fault:
    """A fault that raises :class:`FaultInjected` at ``site``."""
    return Fault(site=site, action="raise", step=step, times=times)


def kill_at(site: str, step: int | None = None, times: int = 1) -> Fault:
    """A fault that raises :class:`SimulatedKill` at ``site``."""
    return Fault(site=site, action="kill", step=step, times=times)
