"""Training resilience layer: checkpoint/resume, divergence rollback,
deterministic fault injection, and structured sweep-failure records.

WGAN-GP training (the paper's substrate, §4.3-4.4) is unstable by nature;
long unattended runs additionally face process kills and partial writes.
This package makes the training loop survive all of it:

- :mod:`repro.resilience.checkpoint` -- full-state snapshots (parameters,
  Adam moments, RNG state, iteration counter, loss history) written
  atomically; a killed run resumes bit-identically.
- :mod:`repro.resilience.sentinel` -- per-step NaN/Inf/runaway detection
  with rollback to the last good snapshot and a bounded retry policy.
- :mod:`repro.resilience.faults` -- deterministic fault injection used by
  tests to prove every recovery path.
- :mod:`repro.resilience.failures` -- :class:`FailureRecord` used by the
  experiment harness to isolate per-model failures in a sweep.
- :mod:`repro.resilience.retry` -- bounded, deterministic
  retry-with-backoff used by the serve client, registry reads, and the
  job supervisor.
"""

from repro.resilience import faults
from repro.resilience.checkpoint import (load_checkpoint, restore_trainer,
                                         save_checkpoint, snapshot_trainer,
                                         trainer_params_finite)
from repro.resilience.failures import FailureRecord
from repro.resilience.faults import FaultInjected, SimulatedKill
from repro.resilience.retry import RetryPolicy, retry_call
from repro.resilience.sentinel import (DivergenceDetected,
                                       DivergenceSentinel, SentinelPolicy,
                                       TrainingDiverged)

__all__ = [
    "faults", "FaultInjected", "SimulatedKill",
    "SentinelPolicy", "DivergenceSentinel", "DivergenceDetected",
    "TrainingDiverged",
    "FailureRecord",
    "RetryPolicy", "retry_call",
    "save_checkpoint", "load_checkpoint", "snapshot_trainer",
    "restore_trainer", "trainer_params_finite",
]
