"""Divergence sentinel: detect NaN/Inf/runaway losses and direct recovery.

WGAN-GP training can diverge without warning (the paper's §5.1 discussion of
mode collapse and training instability); on a long unattended run a single
non-finite loss silently poisons every subsequent update.  The sentinel
checks each step's losses and Wasserstein estimate, and when something is
wrong raises :class:`DivergenceDetected`, which the trainer turns into a
rollback to the last good snapshot plus a bounded retry governed by
:class:`SentinelPolicy`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.observability import events as obs_events
from repro.observability import metrics as obs_metrics

__all__ = ["SentinelPolicy", "DivergenceSentinel", "DivergenceDetected",
           "TrainingDiverged"]


class DivergenceDetected(RuntimeError):
    """One bad step; recoverable via rollback (internal control flow)."""

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason  # "nan" | "runaway"


class TrainingDiverged(RuntimeError):
    """Raised when the retry budget is exhausted; the run is unrecoverable.

    Carries the last recorded iteration and the rollback count so harness
    code can build a :class:`repro.resilience.failures.FailureRecord`.
    """

    def __init__(self, message: str, iteration: int, rollbacks: int):
        super().__init__(message)
        self.iteration = iteration
        self.rollbacks = rollbacks


@dataclass
class SentinelPolicy:
    """How to detect and react to a diverging run.

    Args:
        max_retries: Rollback/retry budget per snapshot window.  Retries
            reset every time a new good snapshot is taken, so the budget
            bounds *consecutive* failures, not failures per run.
        lr_decay: Multiplier applied to both optimizers' learning rates on
            each rollback (compounding across consecutive retries); 1.0
            disables the decay.
        reseed: Draw a fresh, deterministically derived noise seed on each
            rollback so the retry takes a different sample path.
        snapshot_every: Iterations between in-memory last-good snapshots.
        loss_limit: Absolute loss value considered runaway.
        wasserstein_limit: Absolute Wasserstein estimate considered runaway.
    """

    max_retries: int = 3
    lr_decay: float = 0.5
    reseed: bool = True
    snapshot_every: int = 10
    loss_limit: float = 1e8
    wasserstein_limit: float = 1e6

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0 < self.lr_decay <= 1:
            raise ValueError("lr_decay must be in (0, 1]")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")


class DivergenceSentinel:
    """Per-step guard; raises :class:`DivergenceDetected` on a bad step."""

    def __init__(self, policy: SentinelPolicy | None = None):
        self.policy = policy or SentinelPolicy()

    @classmethod
    def coerce(cls, value) -> "DivergenceSentinel | None":
        """Accept ``None`` / ``True`` / policy / sentinel interchangeably."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, SentinelPolicy):
            return cls(value)
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"sentinel must be a bool, SentinelPolicy, or "
            f"DivergenceSentinel, got {type(value).__name__}")

    def _trigger(self, iteration: int, reason: str, detail: str,
                 message: str) -> None:
        """Record one detection in the telemetry stream, then raise."""
        obs_events.emit("sentinel.trigger",
                        {"iteration": int(iteration), "reason": reason,
                         "detail": detail})
        obs_metrics.counter(f"sentinel.triggers.{reason}").inc()
        raise DivergenceDetected(reason, message)

    def check(self, iteration: int, d_loss: float, g_loss: float,
              wasserstein: float) -> None:
        """Validate one step's scalars; raise on NaN/Inf or runaway."""
        for name, value in (("d_loss", d_loss), ("g_loss", g_loss),
                            ("wasserstein", wasserstein)):
            if not math.isfinite(value):
                self._trigger(
                    iteration, "nan", name,
                    f"non-finite {name}={value!r} at iteration {iteration}")
        if abs(d_loss) > self.policy.loss_limit \
                or abs(g_loss) > self.policy.loss_limit:
            self._trigger(
                iteration, "runaway", "loss",
                f"loss exceeded {self.policy.loss_limit:g} at iteration "
                f"{iteration} (d={d_loss:g}, g={g_loss:g})")
        if abs(wasserstein) > self.policy.wasserstein_limit:
            self._trigger(
                iteration, "runaway", "wasserstein",
                f"Wasserstein estimate {wasserstein:g} exceeded "
                f"{self.policy.wasserstein_limit:g} at iteration "
                f"{iteration}")
