"""Experiment harness shared by the benchmark suite."""

from repro.experiments.configs import (BENCH, BenchScale, baseline_kwargs,
                                       make_dataset, make_dg_config)
from repro.experiments.harness import (MODEL_NAMES, clear_cache, get_dataset,
                                       get_model, get_split, print_series,
                                       print_table)

__all__ = [
    "BENCH", "BenchScale", "make_dataset", "make_dg_config",
    "baseline_kwargs",
    "MODEL_NAMES", "get_dataset", "get_model", "get_split",
    "print_table", "print_series", "clear_cache",
]
