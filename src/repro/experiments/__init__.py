"""Experiment harness shared by the benchmark suite."""

from repro.experiments.configs import (BENCH, SCALES, TINY, BenchScale,
                                       baseline_kwargs, make_dataset,
                                       make_dg_config)
from repro.experiments.harness import (MODEL_NAMES, SweepResult, clear_cache,
                                       configure_cache, get_dataset,
                                       get_failures, get_model, get_split,
                                       print_series, print_table, run_sweep)

__all__ = [
    "BENCH", "TINY", "SCALES", "BenchScale", "make_dataset",
    "make_dg_config", "baseline_kwargs",
    "MODEL_NAMES", "get_dataset", "get_model", "get_split",
    "print_table", "print_series", "clear_cache", "configure_cache",
    "get_failures", "run_sweep", "SweepResult",
]
