"""Benchmark-scale experiment configurations.

Paper-scale training (100k samples x 550-step series x 200k batches on GPUs)
is far beyond a CPU-only numpy substrate, so every experiment runs at a
scaled-down size that preserves the qualitative structure:

- WWT: length 112 with weekly period 7 and "annual" period 28 (two
  timescales, like the paper's 7/365), 400 samples;
- MBA: length 56 (the paper's real length), 400 samples;
- GCUT: max length 24 with a bimodal duration distribution, 400 samples.

EXPERIMENTS.md records the paper-vs-measured comparison for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DGConfig
from repro.data.simulators import (generate_flashcrowd, generate_gcut,
                                   generate_mba, generate_regime,
                                   generate_wwt)

__all__ = ["BenchScale", "BENCH", "TINY", "SCALES", "make_dataset",
           "make_dg_config", "baseline_kwargs"]


@dataclass(frozen=True)
class BenchScale:
    """Knobs shared by all benchmark experiments."""

    n_samples: int = 400
    wwt_length: int = 56
    wwt_short_period: int = 7
    wwt_long_period: int = 28
    mba_length: int = 56
    gcut_length: int = 24
    flashcrowd_length: int = 56
    regime_length: int = 48
    dg_iterations: int = 800
    baseline_iterations: int = 300
    hidden_width: int = 64
    rnn_units: int = 48
    batch_size: int = 32
    seed: int = 42


BENCH = BenchScale()

# Smoke-test scale: seconds per cell instead of minutes.  Used by the CLI
# ``sweep`` command (``--scale tiny``), the CI parallel smoke step, and the
# parallel-sweep benchmark, where only determinism and plumbing matter.
TINY = BenchScale(n_samples=30, wwt_length=14, wwt_short_period=7,
                  wwt_long_period=14, mba_length=8, gcut_length=8,
                  flashcrowd_length=12, regime_length=12,
                  dg_iterations=4, baseline_iterations=4, hidden_width=12,
                  rnn_units=8, batch_size=8)

SCALES = {"bench": BENCH, "tiny": TINY}


def make_dataset(name: str, scale: BenchScale = BENCH, seed: int | None = None,
                 n: int | None = None):
    """Build one of the three bench datasets by name."""
    rng = np.random.default_rng(scale.seed if seed is None else seed)
    n = n or scale.n_samples
    if name == "wwt":
        return generate_wwt(n, rng, length=scale.wwt_length,
                            short_period=scale.wwt_short_period,
                            long_period=scale.wwt_long_period)
    if name == "mba":
        return generate_mba(n, rng, length=scale.mba_length)
    if name == "gcut":
        return generate_gcut(n, rng, max_length=scale.gcut_length)
    if name == "flashcrowd":
        return generate_flashcrowd(n, rng, length=scale.flashcrowd_length)
    if name == "regime":
        return generate_regime(n, rng, max_length=scale.regime_length)
    raise ValueError(f"unknown dataset {name!r}")


def make_dg_config(dataset_name: str, scale: BenchScale = BENCH,
                   **overrides) -> DGConfig:
    """Bench-scale DoppelGANger config for one dataset."""
    lengths = {"wwt": scale.wwt_length, "mba": scale.mba_length,
               "gcut": scale.gcut_length,
               "flashcrowd": scale.flashcrowd_length,
               "regime": scale.regime_length}
    length = lengths[dataset_name]
    # S chosen so one RNN pass covers a natural period of the data (§4.4's
    # "use the collection frequency"): a week for WWT, a day for MBA.
    sample_len = {"wwt": 7, "mba": 4, "gcut": 4,
                  "flashcrowd": 4, "regime": 4}[dataset_name]
    # MBA's heavy-tailed byte counters need the saturation guard and a
    # longer schedule (see EXPERIMENTS.md notes on Table 3).
    per_dataset = {
        "mba": dict(generator_logit_bound=5.0,
                    iterations=2 * scale.dg_iterations),
    }.get(dataset_name, {})
    defaults = dict(
        sample_len=sample_len,
        attribute_hidden=(scale.hidden_width, scale.hidden_width),
        minmax_hidden=(scale.hidden_width, scale.hidden_width),
        feature_rnn_units=scale.rnn_units,
        feature_mlp_hidden=(scale.hidden_width,),
        discriminator_hidden=(scale.hidden_width, scale.hidden_width),
        aux_discriminator_hidden=(scale.hidden_width, scale.hidden_width),
        batch_size=scale.batch_size,
        iterations=scale.dg_iterations,
        seed=scale.seed,
    )
    defaults.update(per_dataset)
    defaults.update(overrides)
    config = DGConfig(**defaults)
    config.validate_for_length(length)
    return config


def baseline_kwargs(name: str, scale: BenchScale = BENCH) -> dict:
    """Bench-scale constructor kwargs for each baseline by name."""
    w = scale.hidden_width
    if name == "hmm":
        return dict(n_states=10, n_iter=15, seed=scale.seed)
    if name == "ar":
        return dict(p=3, hidden=(w, w), iterations=scale.baseline_iterations,
                    batch_size=scale.batch_size, seed=scale.seed)
    if name == "rnn":
        return dict(hidden_size=scale.rnn_units,
                    iterations=max(scale.baseline_iterations // 3, 60),
                    batch_size=scale.batch_size, seed=scale.seed)
    if name == "naive_gan":
        return dict(generator_hidden=(w, w), discriminator_hidden=(w, w),
                    iterations=scale.baseline_iterations,
                    batch_size=scale.batch_size, seed=scale.seed)
    raise ValueError(f"unknown baseline {name!r}")
