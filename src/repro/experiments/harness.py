"""Shared benchmark harness.

Training a GAN is expensive relative to the metrics computed on it, and many
figures evaluate the *same* trained models, so this module memoises datasets
and trained models per (dataset, model) key within the process.  The caches
are LRU-bounded (:func:`configure_cache`) so long sweeps cannot grow memory
without limit.  Benchmarks print the same rows/series the paper reports via
:func:`print_table`.

Failure isolation: a model that diverges or raises during ``fit`` is turned
into a structured :class:`~repro.resilience.failures.FailureRecord` (see
:func:`run_sweep` / :func:`get_failures`), so one bad model cannot abort a
multi-model comparison.
"""

from __future__ import annotations

import os
import sys
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.experiments.configs import BENCH, BenchScale, make_dataset
from repro.nn import profiler as nn_profiler
from repro.resilience.failures import FailureRecord
from repro.resilience.faults import SimulatedKill

__all__ = ["MODEL_NAMES", "get_dataset", "get_model", "get_split",
           "print_table", "print_series", "clear_cache", "configure_cache",
           "get_failures", "run_sweep", "SweepResult", "LRUCache"]

# Paper display names, in the order figures list them; ``dg`` is the
# historical short name (an alias of the ``doppelganger`` backend).
MODEL_NAMES = {
    "dg": "DoppelGANger",
    "doppelganger": "DoppelGANger",
    "dlgan": "DLGAN",
    "ar": "AR",
    "rnn": "RNN",
    "hmm": "HMM",
    "naive_gan": "Naive GAN",
}


class LRUCache:
    """A small bounded mapping with least-recently-used eviction.

    Reads refresh recency; inserting past ``maxsize`` evicts the coldest
    entry.  This bounds the harness's memory during long sweeps where
    hundreds of (dataset, model, overrides) keys would otherwise pile up.
    """

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, key):
        value = self._data[key]
        self._data.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def keys(self):
        return list(self._data.keys())

    def clear(self) -> None:
        self._data.clear()

    def set_maxsize(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        while len(self._data) > maxsize:
            self._data.popitem(last=False)


_DATASETS = LRUCache(8)
_MODELS = LRUCache(16)
_SPLITS = LRUCache(8)
_FAILURES: list[FailureRecord] = []


def clear_cache() -> None:
    """Drop all memoised datasets/models and failure records."""
    _DATASETS.clear()
    _MODELS.clear()
    _SPLITS.clear()
    _FAILURES.clear()


def configure_cache(max_datasets: int | None = None,
                    max_models: int | None = None,
                    max_splits: int | None = None) -> None:
    """Re-bound the harness caches (evicting immediately if shrinking)."""
    if max_datasets is not None:
        _DATASETS.set_maxsize(max_datasets)
    if max_models is not None:
        _MODELS.set_maxsize(max_models)
    if max_splits is not None:
        _SPLITS.set_maxsize(max_splits)


def get_failures() -> list[FailureRecord]:
    """Failure records accumulated by :func:`get_model` this process."""
    return list(_FAILURES)


def get_dataset(name: str, scale: BenchScale = BENCH):
    key = (name, scale)
    if key not in _DATASETS:
        _DATASETS[key] = make_dataset(name, scale)
    return _DATASETS[key]


def get_split(dataset_name: str, model_name: str, scale: BenchScale = BENCH):
    """Figure-10 split with synthetic halves from the named model."""
    from repro.data.splits import make_split, synthesize_split

    key = (dataset_name, model_name, scale)
    if key not in _SPLITS:
        rng = np.random.default_rng(scale.seed + 1)
        split = make_split(get_dataset(dataset_name, scale), rng)
        model = get_model(dataset_name, model_name, scale,
                          train_data=split.train_real)
        _SPLITS[key] = synthesize_split(
            split, model, rng=np.random.default_rng(scale.seed + 2))
    return _SPLITS[key]


def _build_model(dataset_name: str, model_name: str, scale: BenchScale,
                 schema, seed: int | None = None, **config_overrides):
    """Construct an untrained model through the backend registry."""
    from repro.backends import get_backend

    backend = get_backend(model_name)
    config = backend.make_config(dataset_name, scale, seed=seed,
                                 **config_overrides)
    return backend.from_config(schema, config)


def get_model(dataset_name: str, model_name: str, scale: BenchScale = BENCH,
              train_data=None, cache_tag: str = "", seed: int | None = None,
              **config_overrides):
    """Train (or fetch the cached) model for a dataset.

    ``model_name`` is any registered backend name or alias (``dg`` is
    an alias of ``doppelganger``); the cache key uses the canonical
    backend name so aliases share one entry.  ``config_overrides`` that
    do not apply to the chosen architecture are ignored by its backend;
    give ablation variants a distinct ``cache_tag``.  ``seed`` overrides
    the scale's training seed for any model type (used by multi-seed
    sweeps).  A custom ``train_data`` is keyed by its content
    fingerprint, so two equal datasets share a cache entry regardless of
    object identity.
    """
    from repro.backends import get_backend
    from repro.parallel.cache import dataset_fingerprint

    backend = get_backend(model_name)
    key = (dataset_name, backend.name, scale, cache_tag, seed,
           tuple(sorted(config_overrides.items())),
           dataset_fingerprint(train_data) if train_data is not None
           else None)
    if key in _MODELS:
        return _MODELS[key]
    data = train_data if train_data is not None else get_dataset(
        dataset_name, scale)
    model = _build_model(dataset_name, model_name, scale, data.schema,
                         seed=seed, **config_overrides)
    # monotonic: wall-clock adjustments must not produce negative elapsed
    # (matches serve/batcher.py timing).
    started = time.monotonic()
    try:
        # REPRO_PROFILE=1 prints the op-level hot list of every run.
        if os.environ.get("REPRO_PROFILE"):
            with nn_profiler.profile() as prof:
                model.fit(data)
            print(f"[harness] op profile for {model_name} on "
                  f"{dataset_name}:\n{prof.summary(top=12)}",
                  file=sys.stderr)
        else:
            model.fit(data)
    except SimulatedKill:
        raise
    except Exception as exc:
        record = FailureRecord.from_exception(
            dataset_name, model_name, exc, model=model,
            elapsed=time.monotonic() - started)
        _FAILURES.append(record)
        print(f"[harness] FAILED {MODEL_NAMES.get(model_name, model_name)} "
              f"on {dataset_name}: {record.exception_type}: "
              f"{record.message}", file=sys.stderr)
        raise
    elapsed = time.monotonic() - started
    print(f"[harness] trained {MODEL_NAMES.get(model_name, model_name)} "
          f"on {dataset_name}{' (' + cache_tag + ')' if cache_tag else ''} "
          f"in {elapsed:.1f}s", file=sys.stderr)
    _MODELS[key] = model
    return model


@dataclass
class SweepResult:
    """Outcome of :func:`run_sweep`: models, isolated failures, timings.

    ``models`` maps ``(dataset, model)`` -- or ``(dataset, model, seed)``
    for multi-seed sweeps -- to the trained model; ``timings`` maps the
    same keys to :class:`~repro.parallel.sweep.CellTiming` records
    measured where each cell ran (worker or parent process).
    ``quality`` (filled when ``run_sweep(quality=...)``) maps the same
    keys to :class:`~repro.quality.QualityReport` instances computed in
    the parent process -- so they are identical at any worker count.
    """

    models: dict = field(default_factory=dict)
    failures: list[FailureRecord] = field(default_factory=list)
    timings: dict = field(default_factory=dict)
    quality: dict = field(default_factory=dict)

    @property
    def failed_keys(self) -> list[tuple[str, str]]:
        return [(f.dataset, f.model) for f in self.failures]


def _run_sweep_cells(cells, scale, config_overrides: dict, workers: int,
                     cache_dir, isolate: bool,
                     telemetry=None) -> SweepResult:
    """Execute built cells through the parallel layer into a SweepResult."""
    from repro.parallel.sweep import run_cells

    result = SweepResult()
    outcomes = run_cells(cells, scale, config_overrides, workers=workers,
                         cache_dir=cache_dir, telemetry=telemetry)
    for outcome in outcomes:
        result.timings[outcome.label] = outcome.timing
        if outcome.failure is not None:
            if not isolate:
                raise RuntimeError(
                    f"sweep cell {outcome.label} failed: "
                    f"{outcome.failure.exception_type}: "
                    f"{outcome.failure.message}")
            result.failures.append(outcome.failure)
            _FAILURES.append(outcome.failure)
        else:
            result.models[outcome.label] = outcome.model
    return result


def _score_sweep(result: SweepResult, scale: BenchScale,
                 quality) -> None:
    """Fill ``result.quality`` with one QualityReport per trained cell.

    Runs in the parent process *after* the models come back, generating
    from a fresh seeded rng per cell -- since the trained models are
    bit-identical at any worker count, so are the reports.  ``quality``
    is ``True`` for defaults or a dict of :class:`QualityReport` kwargs
    plus ``n`` (objects generated per cell) and ``seed``; the expensive
    ``downstream`` section defaults to off in sweeps.
    """
    from repro.quality import QualityReport

    kwargs = dict(quality) if isinstance(quality, dict) else {}
    n = int(kwargs.pop("n", 64))
    seed = int(kwargs.pop("seed", scale.seed))
    kwargs.setdefault("downstream", False)
    for key in sorted(result.models, key=str):
        dataset_name = key[0] if isinstance(key, tuple) else str(key)
        real = get_dataset(dataset_name, scale)
        synthetic = result.models[key].generate(
            n, rng=np.random.default_rng(seed))
        result.quality[key] = QualityReport(real, synthetic, seed=seed,
                                            **kwargs)


def run_sweep(dataset_names, model_names, scale: BenchScale = BENCH,
              isolate: bool = True, verbose: bool = True, workers: int = 1,
              seeds=None, cache_dir=None, telemetry=None, quality=False,
              **config_overrides) -> SweepResult:
    """Train every (dataset, model[, seed]) cell, isolating failures.

    With ``isolate=True`` (the default) a model whose ``fit`` raises is
    recorded as a :class:`FailureRecord` and the sweep continues with the
    remaining cells; the failures are printed as a summary table at the
    end instead of aborting with a traceback.  ``isolate=False`` restores
    fail-fast behaviour (serial in-process sweeps only).

    Args:
        workers: Worker subprocesses to farm cells to.  ``workers=1`` runs
            in-process; any worker count produces bit-identical models
            (see docs/architecture.md, "Parallel execution").
        seeds: ``None`` for one cell per pair at the scale's seed; an int
            ``k`` for k replicas with decorrelated spawned seeds; or an
            explicit list of training seeds.  Multi-seed cells are keyed
            ``(dataset, model, replica-or-seed)`` in the result.
        cache_dir: Optional directory for the on-disk result cache keyed
            by (config hash, dataset fingerprint, seed); cached cells are
            skipped and marked ``cached`` in the timing table.
        quality: ``True`` (or a dict of :class:`~repro.quality.
            QualityReport` kwargs plus ``n``/``seed``) to score every
            trained cell with a quality report, computed in the parent
            so it is worker-count invariant; sweep reports then rank
            cells by overall score (see render_sweep_report).
        telemetry: Optional directory for a telemetry run.  Workers write
            per-cell event/metric files and the parent merges them into
            ``events.jsonl`` / ``metrics.json`` / ``report.md`` -- all
            deterministic and worker-count invariant (see
            docs/observability.md).  Forces the cell execution path so
            serial and parallel sweeps log identically; note that cells
            already memoised in this process's harness cache skip
            training (and its events), so start from a fresh process or
            :func:`clear_cache` for byte-comparable logs.
    """
    from repro.parallel.sweep import build_cells, run_cells

    if telemetry is not None:
        from repro.observability import TelemetryRun, emit

        with TelemetryRun(telemetry, run_id="sweep") as run:
            emit("sweep.start", {
                "datasets": list(dataset_names),
                "models": list(model_names),
                "seeds": None if seeds is None
                else int(seeds) if isinstance(seeds, (int, np.integer))
                else [int(s) for s in seeds],
                "cached": cache_dir is not None,
            }, volatile={"workers": workers})
            cells = build_cells(dataset_names, model_names, seeds,
                                scale.seed)
            result = _run_sweep_cells(
                cells, scale, config_overrides, workers, cache_dir,
                isolate, telemetry=(run.root, run.run_id))
            emit("sweep.finish", {"trained": len(result.models),
                                  "failed": len(result.failures)})
        run.finalize(cell_labels=[c.label for c in cells])
        if quality:
            _score_sweep(result, scale, quality)
        if verbose and result.failures:
            print_table(
                "Sweep failures",
                ["dataset", "model", "exception", "iteration", "retries",
                 "message"],
                [f.row() for f in result.failures])
        return result

    result = SweepResult()
    use_cells = workers > 1 or seeds is not None or cache_dir is not None
    if not use_cells:
        # In-process fast path: shares this process's model/dataset caches.
        for dataset_name in dataset_names:
            for model_name in model_names:
                wall0, cpu0 = time.perf_counter(), time.process_time()
                failed = False
                try:
                    result.models[(dataset_name, model_name)] = get_model(
                        dataset_name, model_name, scale, **config_overrides)
                except (KeyboardInterrupt, SimulatedKill):
                    raise
                except Exception as exc:
                    if not isolate:
                        raise
                    failed = True
                    if _FAILURES and _FAILURES[-1].dataset == dataset_name \
                            and _FAILURES[-1].model == model_name:
                        record = _FAILURES[-1]
                    else:
                        # Failure before fit() (dataset build, bad config).
                        record = FailureRecord.from_exception(
                            dataset_name, model_name, exc)
                        _FAILURES.append(record)
                    result.failures.append(record)
                from repro.parallel.sweep import CellTiming
                result.timings[(dataset_name, model_name)] = CellTiming(
                    wall=time.perf_counter() - wall0,
                    cpu=time.process_time() - cpu0,
                    failed=failed, pid=os.getpid())
    else:
        cells = build_cells(dataset_names, model_names, seeds, scale.seed)
        result = _run_sweep_cells(cells, scale, config_overrides, workers,
                                  cache_dir, isolate)
    if quality:
        _score_sweep(result, scale, quality)
    if verbose and result.failures:
        print_table(
            "Sweep failures",
            ["dataset", "model", "exception", "iteration", "retries",
             "message"],
            [f.row() for f in result.failures])
    return result


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned table mirroring one of the paper's tables."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(v.ljust(w) for v, w in zip(row, widths)))


def print_series(title: str, x_label: str, x_values, series: dict) -> None:
    """Print figure-style series: one column of x, one per curve."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    print_table(title, headers, rows)
