"""Shared benchmark harness.

Training a GAN is expensive relative to the metrics computed on it, and many
figures evaluate the *same* trained models, so this module memoises datasets
and trained models per (dataset, model) key within the process.  Benchmarks
print the same rows/series the paper reports via :func:`print_table`.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.baselines import (ARBaseline, HMMBaseline, NaiveGANBaseline,
                             RNNBaseline)
from repro.core.doppelganger import DoppelGANger
from repro.experiments.configs import (BENCH, BenchScale, baseline_kwargs,
                                       make_dataset, make_dg_config)
from repro.nn import profiler as nn_profiler

__all__ = ["MODEL_NAMES", "get_dataset", "get_model", "get_split",
           "print_table", "print_series", "clear_cache"]

# Paper display names, in the order figures list them.
MODEL_NAMES = {
    "dg": "DoppelGANger",
    "ar": "AR",
    "rnn": "RNN",
    "hmm": "HMM",
    "naive_gan": "Naive GAN",
}

_DATASETS: dict = {}
_MODELS: dict = {}
_SPLITS: dict = {}


def clear_cache() -> None:
    """Drop all memoised datasets/models (used by tests)."""
    _DATASETS.clear()
    _MODELS.clear()
    _SPLITS.clear()


def get_dataset(name: str, scale: BenchScale = BENCH):
    key = (name, scale)
    if key not in _DATASETS:
        _DATASETS[key] = make_dataset(name, scale)
    return _DATASETS[key]


def get_split(dataset_name: str, model_name: str, scale: BenchScale = BENCH):
    """Figure-10 split with synthetic halves from the named model."""
    from repro.data.splits import make_split, synthesize_split

    key = (dataset_name, model_name, scale)
    if key not in _SPLITS:
        rng = np.random.default_rng(scale.seed + 1)
        split = make_split(get_dataset(dataset_name, scale), rng)
        model = get_model(dataset_name, model_name, scale,
                          train_data=split.train_real)
        synthesize_split(split, model, rng=np.random.default_rng(
            scale.seed + 2))
        _SPLITS[key] = split
    return _SPLITS[key]


def _build_model(dataset_name: str, model_name: str, scale: BenchScale,
                 schema, **config_overrides):
    if model_name == "dg":
        return DoppelGANger(schema,
                            make_dg_config(dataset_name, scale,
                                           **config_overrides))
    classes = {"hmm": HMMBaseline, "ar": ARBaseline, "rnn": RNNBaseline,
               "naive_gan": NaiveGANBaseline}
    return classes[model_name](**baseline_kwargs(model_name, scale))


def get_model(dataset_name: str, model_name: str, scale: BenchScale = BENCH,
              train_data=None, cache_tag: str = "", **config_overrides):
    """Train (or fetch the cached) model for a dataset.

    ``config_overrides`` only apply to DoppelGANger variants (ablations);
    give such variants a distinct ``cache_tag``.
    """
    key = (dataset_name, model_name, scale, cache_tag,
           tuple(sorted(config_overrides.items())),
           id(train_data) if train_data is not None else None)
    if key in _MODELS:
        return _MODELS[key]
    data = train_data if train_data is not None else get_dataset(
        dataset_name, scale)
    model = _build_model(dataset_name, model_name, scale, data.schema,
                         **config_overrides)
    started = time.time()
    # REPRO_PROFILE=1 prints the op-level hot list of every training run.
    if os.environ.get("REPRO_PROFILE"):
        with nn_profiler.profile() as prof:
            model.fit(data)
        print(f"[harness] op profile for {model_name} on {dataset_name}:\n"
              f"{prof.summary(top=12)}", file=sys.stderr)
    else:
        model.fit(data)
    elapsed = time.time() - started
    print(f"[harness] trained {MODEL_NAMES.get(model_name, model_name)} "
          f"on {dataset_name}{' (' + cache_tag + ')' if cache_tag else ''} "
          f"in {elapsed:.1f}s", file=sys.stderr)
    _MODELS[key] = model
    return model


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned table mirroring one of the paper's tables."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(v.ljust(w) for v, w in zip(row, widths)))


def print_series(title: str, x_label: str, x_values, series: dict) -> None:
    """Print figure-style series: one column of x, one per curve."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    print_table(title, headers, rows)
