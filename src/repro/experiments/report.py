"""Fidelity report: the §5.1 microbenchmarks for any trained model.

Data holders deciding whether a model is good enough to release need the
paper's structural checks in one place.  :func:`fidelity_report` compares a
synthetic dataset against the real one and returns a structured
:class:`FidelityReport`; :func:`render_markdown` turns it into a shareable
model card.

Checks included (paper section in brackets):

- per-feature autocorrelation MSE (§5.1, Figure 1);
- series-length Wasserstein-1 distance (Figure 7);
- per-attribute Jensen-Shannon divergence (Figure 8, Figures 15-23);
- sample-diversity ratio, flagging mode collapse (Figure 5);
- nearest-neighbour memorization ratio (§5.1, Figures 24-26).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.metrics import (autocorrelation_mse, average_autocorrelation,
                           categorical_jsd, cross_correlation_error,
                           diversity_score, memorization_ratio,
                           wasserstein1)
from repro.observability.report import render_run_report
from repro.resilience.failures import FailureRecord

__all__ = ["FidelityReport", "fidelity_report", "render_markdown",
           "failure_summary", "timing_summary", "sweep_digest",
           "render_sweep_report", "render_run_report"]

# Thresholds used for the pass/warn verdicts in the rendered report.
_DIVERSITY_COLLAPSE_RATIO = 0.3
_MEMORIZATION_FLOOR = 0.3


@dataclass
class FidelityReport:
    """Structured output of :func:`fidelity_report`."""

    n_real: int
    n_synthetic: int
    acf_mse: dict[str, float] = field(default_factory=dict)
    length_w1: float | None = None
    cross_correlation: float | None = None
    attribute_jsd: dict[str, float] = field(default_factory=dict)
    diversity_real: dict[str, float] = field(default_factory=dict)
    diversity_synthetic: dict[str, float] = field(default_factory=dict)
    memorization: dict[str, float] = field(default_factory=dict)

    @property
    def mode_collapse_suspected(self) -> bool:
        """True when any feature's diversity ratio collapses (Figure 5)."""
        for name, real in self.diversity_real.items():
            if real <= 0:
                continue
            if (self.diversity_synthetic.get(name, 0.0) / real
                    < _DIVERSITY_COLLAPSE_RATIO):
                return True
        return False

    @property
    def memorization_suspected(self) -> bool:
        """True when synthetic data hugs the training set (Figures 24-26)."""
        return any(v < _MEMORIZATION_FLOOR for v in
                   self.memorization.values())


def fidelity_report(real: TimeSeriesDataset, synthetic: TimeSeriesDataset,
                    holdout: TimeSeriesDataset | None = None,
                    max_lag: int | None = None) -> FidelityReport:
    """Compute the §5.1 microbenchmarks of ``synthetic`` vs ``real``.

    Args:
        real: The (training) dataset the model was fit on.
        synthetic: Generated data to evaluate.
        holdout: Optional real data NOT used for training; enables the
            memorization check (ratio of NN distances).
        max_lag: ACF horizon (defaults to half the series length).
    """
    if real.schema != synthetic.schema:
        raise ValueError("real and synthetic schemas differ")
    report = FidelityReport(n_real=len(real), n_synthetic=len(synthetic))
    max_lag = max_lag or max(real.schema.max_length // 2, 1)

    for spec in real.schema.features:
        if spec.is_categorical:
            continue
        real_acf = average_autocorrelation(real.feature_column(spec.name),
                                           real.lengths, max_lag=max_lag)
        syn_acf = average_autocorrelation(
            synthetic.feature_column(spec.name), synthetic.lengths,
            max_lag=max_lag)
        try:
            report.acf_mse[spec.name] = autocorrelation_mse(real_acf,
                                                            syn_acf)
        except ValueError:
            report.acf_mse[spec.name] = float("nan")
        report.diversity_real[spec.name] = diversity_score(
            real.feature_column(spec.name))
        report.diversity_synthetic[spec.name] = diversity_score(
            synthetic.feature_column(spec.name))

    if sum(1 for f in real.schema.features if not f.is_categorical) > 1:
        try:
            report.cross_correlation = cross_correlation_error(real,
                                                               synthetic)
        except ValueError:
            report.cross_correlation = None

    if real.lengths.std() > 0 or synthetic.lengths.std() > 0:
        report.length_w1 = wasserstein1(real.lengths.astype(float),
                                        synthetic.lengths.astype(float))

    for spec in real.schema.attributes:
        if not spec.is_categorical:
            continue
        report.attribute_jsd[spec.name] = categorical_jsd(
            real.attribute_column(spec.name).astype(int),
            synthetic.attribute_column(spec.name).astype(int),
            spec.dimension)

    if holdout is not None:
        for spec in real.schema.features:
            if spec.is_categorical:
                continue
            report.memorization[spec.name] = memorization_ratio(
                _normalise(synthetic.feature_column(spec.name)),
                _normalise(real.feature_column(spec.name)),
                _normalise(holdout.feature_column(spec.name)))
    return report


def render_markdown(report: FidelityReport, title: str = "Fidelity report"
                    ) -> str:
    """Render a report as a markdown model card."""
    lines = [f"# {title}", "",
             f"- real objects: {report.n_real}",
             f"- synthetic objects: {report.n_synthetic}", ""]
    if report.acf_mse:
        lines += ["## Temporal correlations (Figure 1)", "",
                  "| feature | ACF MSE |", "|---|---|"]
        lines += [f"| {k} | {v:.4f} |" for k, v in report.acf_mse.items()]
        lines.append("")
    if report.length_w1 is not None:
        lines += ["## Series lengths (Figure 7)", "",
                  f"Wasserstein-1 distance: **{report.length_w1:.3f}**", ""]
    if report.cross_correlation is not None:
        lines += ["## Cross-feature correlations", "",
                  "Mean absolute error of the feature-feature correlation "
                  f"matrix: **{report.cross_correlation:.3f}**", ""]
    if report.attribute_jsd:
        lines += ["## Attribute marginals (Figure 8)", "",
                  "| attribute | JSD |", "|---|---|"]
        lines += [f"| {k} | {v:.4f} |"
                  for k, v in report.attribute_jsd.items()]
        lines.append("")
    if report.diversity_synthetic:
        verdict = ("**suspected — inspect samples (Figure 5)**"
                   if report.mode_collapse_suspected else "not detected")
        lines += ["## Mode collapse", "",
                  "| feature | real diversity | synthetic diversity |",
                  "|---|---|---|"]
        lines += [f"| {k} | {report.diversity_real[k]:.3f} | "
                  f"{report.diversity_synthetic[k]:.3f} |"
                  for k in report.diversity_synthetic]
        lines += ["", f"Verdict: {verdict}", ""]
    if report.memorization:
        verdict = ("**suspected — do not release (Figures 24-26)**"
                   if report.memorization_suspected else "not detected")
        lines += ["## Memorization", "",
                  "| feature | NN-distance ratio |", "|---|---|"]
        lines += [f"| {k} | {v:.3f} |"
                  for k, v in report.memorization.items()]
        lines += ["", f"Verdict: {verdict}", ""]
    return "\n".join(lines)


def failure_summary(failures: list[FailureRecord],
                    title: str = "Sweep failures") -> str:
    """Render sweep failures as a markdown summary table.

    A multi-model comparison where one model diverged should report that
    divergence alongside the surviving results -- not die with the failed
    model's traceback.  Returns an empty string when nothing failed.
    """
    if not failures:
        return ""
    lines = [f"# {title}", "",
             f"{len(failures)} of the sweep's models failed to train; the "
             "remaining models completed normally.", "",
             "| dataset | model | exception | iteration | retries | "
             "message |",
             "|---|---|---|---|---|---|"]
    for f in failures:
        iteration = "-" if f.iteration is None else str(f.iteration)
        message = f.message if len(f.message) <= 60 \
            else f.message[:57] + "..."
        lines.append(f"| {f.dataset} | {f.model} | {f.exception_type} | "
                     f"{iteration} | {f.retries} | {message} |")
    lines.append("")
    return "\n".join(lines)


def _cell_label(key) -> str:
    """Render a sweep-result key (tuple or string) as ``a/b[/c]``."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def timing_summary(timings: dict, title: str = "Sweep timings") -> str:
    """Render per-cell wall/CPU timings as a markdown table.

    Timings are measured in whichever process ran the cell (worker or
    parent), so this table is inherently run-dependent -- keep it out of
    files that are compared byte-for-byte across runs (use
    :func:`render_sweep_report` for those) and print it to stdout instead.
    Returns an empty string when there are no timings.
    """
    if not timings:
        return ""
    lines = [f"# {title}", "",
             "| cell | status | wall (s) | cpu (s) | pid |",
             "|---|---|---|---|---|"]
    total_wall = 0.0
    for key in sorted(timings, key=_cell_label):
        t = timings[key]
        status = "failed" if t.failed else ("cached" if t.cached else "ok")
        lines.append(f"| {_cell_label(key)} | {status} | {t.wall:.2f} | "
                     f"{t.cpu:.2f} | {t.pid} |")
        total_wall += t.wall
    lines += ["", f"Total cell wall time: {total_wall:.2f}s "
                  f"({len(timings)} cells)", ""]
    return "\n".join(lines)


def sweep_digest(models: dict, n: int = 16, seed: int = 0) -> dict[str, str]:
    """Deterministic per-cell fingerprints of a sweep's trained models.

    Each model generates ``n`` objects from a fresh ``default_rng(seed)``
    and the resulting arrays are hashed, so two sweeps trained the same
    way -- serial or parallel, any worker count -- produce byte-identical
    digests.  This is the identity check behind the CI parallel smoke
    step (see docs/architecture.md, "Parallel execution").
    """
    import hashlib

    digests: dict[str, str] = {}
    for key in sorted(models, key=_cell_label):
        synthetic = models[key].generate(n, rng=np.random.default_rng(seed))
        hasher = hashlib.sha256()
        for array in (synthetic.features, synthetic.attributes,
                      synthetic.lengths):
            arr = np.ascontiguousarray(array)
            hasher.update(str(arr.dtype).encode())
            hasher.update(str(arr.shape).encode())
            hasher.update(arr.tobytes())
        digests[_cell_label(key)] = hasher.hexdigest()
    return digests


def render_sweep_report(result, n: int = 16, seed: int = 0,
                        title: str = "Sweep report") -> str:
    """Render a sweep as deterministic markdown: quality ranking (when
    the sweep ran with ``quality=``), digests, and failures.

    Everything in the output is a pure function of the trained models and
    the failure records -- no timestamps, timings, or process ids -- so a
    serial and a parallel run of the same sweep produce byte-identical
    files (the property CI asserts with ``cmp``).
    """
    lines = [f"# {title}", "",
             f"- cells trained: {len(result.models)}",
             f"- cells failed: {len(result.failures)}", ""]
    quality = getattr(result, "quality", None)
    if quality:
        ranked = sorted(quality,
                        key=lambda k: (-quality[k].overall,
                                       _cell_label(k)))
        lines += ["## Quality ranking", "",
                  "| rank | cell | overall | properties |",
                  "|---|---|---|---|"]
        for rank, key in enumerate(ranked, start=1):
            report = quality[key]
            breakdown = " ".join(
                f"{p.name}={p.score:.3f}" for p in report.properties)
            lines.append(f"| {rank} | {_cell_label(key)} | "
                         f"{report.overall:.4f} | {breakdown} |")
        lines.append("")
    digests = sweep_digest(result.models, n=n, seed=seed)
    if digests:
        lines += [f"## Generation digests (n={n}, seed={seed})", "",
                  "| cell | sha256 |", "|---|---|"]
        lines += [f"| {label} | {digest} |"
                  for label, digest in digests.items()]
        lines.append("")
    failures = failure_summary(result.failures)
    if failures:
        lines.append(failures)
    return "\n".join(lines)


def _normalise(rows: np.ndarray) -> np.ndarray:
    mean = rows.mean(axis=1, keepdims=True)
    std = rows.std(axis=1, keepdims=True) + 1e-9
    return (rows - mean) / std
