"""Flexibility: retargeting the attribute distribution (§5.2, Figure 30).

A data consumer who wants more of some class of data (e.g. failure events,
or a Gaussian-shaped joint over domain x access type) supplies samples from
the desired attribute distribution; only the attribute generator is
retrained, so P(features | attributes) -- and hence the realism of each
conditional time series -- is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.core.doppelganger import DoppelGANger

__all__ = ["joint_categorical_target", "retrain_to_joint",
           "joint_histogram"]


def joint_categorical_target(model: DoppelGANger, attribute_a: str,
                             attribute_b: str, joint_probs: np.ndarray,
                             n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample raw attribute rows with a prescribed joint over two attributes.

    ``joint_probs`` is (|a|, |b|); remaining attributes are sampled from the
    model's current generated distribution.
    """
    spec_a = model.schema.attribute(attribute_a)
    spec_b = model.schema.attribute(attribute_b)
    joint = np.asarray(joint_probs, dtype=np.float64)
    if joint.shape != (spec_a.dimension, spec_b.dimension):
        raise ValueError("joint_probs shape does not match the attributes")
    joint = joint / joint.sum()
    flat_idx = rng.choice(joint.size, size=n, p=joint.ravel())
    a_vals, b_vals = np.unravel_index(flat_idx, joint.shape)
    rows = model.generate(n, rng=rng).attributes.copy()
    names = [f.name for f in model.schema.attributes]
    rows[:, names.index(attribute_a)] = a_vals
    rows[:, names.index(attribute_b)] = b_vals
    return rows


def retrain_to_joint(model: DoppelGANger, attribute_a: str, attribute_b: str,
                     joint_probs: np.ndarray, rng: np.random.Generator,
                     n_target_samples: int = 500,
                     iterations: int = 200) -> list[float]:
    """The Figure-30 experiment: retrain attributes to a target joint."""
    targets = joint_categorical_target(model, attribute_a, attribute_b,
                                       joint_probs, n_target_samples, rng)
    return model.retrain_attribute_generator(targets, iterations=iterations,
                                             rng=rng)


def joint_histogram(dataset, attribute_a: str, attribute_b: str
                    ) -> np.ndarray:
    """Empirical joint histogram (counts) over two categorical attributes."""
    spec_a = dataset.schema.attribute(attribute_a)
    spec_b = dataset.schema.attribute(attribute_b)
    a = dataset.attribute_column(attribute_a).astype(np.int64)
    b = dataset.attribute_column(attribute_b).astype(np.int64)
    out = np.zeros((spec_a.dimension, spec_b.dimension))
    np.add.at(out, (a, b), 1.0)
    return out
