"""Flexibility mechanisms: attribute-distribution retargeting (§5.2)."""

from repro.flexibility.retraining import (joint_categorical_target,
                                          joint_histogram, retrain_to_joint)

__all__ = ["joint_categorical_target", "retrain_to_joint", "joint_histogram"]
