"""Naive GAN baseline (§3.3, Appendix B).

The "first GAN architecture one might think of": an MLP generator that emits
attributes and the whole (flattened) time series *jointly* in one shot, an
MLP discriminator, Wasserstein loss with gradient penalty.  No decoupled
attribute generation, no RNN, no batched generation, no auto-normalisation.
This is the architecture whose failures (Figure 1 autocorrelation, Figure 8
dropped attribute category via mode collapse) motivate DoppelGANger.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GenerativeModel, make_baseline_encoder
from repro.core.generator import BlockActivation, OutputBlock
from repro.core.losses import critic_loss, generator_loss
from repro.data.dataset import TimeSeriesDataset
from repro.nn import MLP, Adam, Tensor, grad, no_grad

__all__ = ["NaiveGANBaseline"]


class NaiveGANBaseline(GenerativeModel):
    """Joint MLP WGAN-GP over [attributes || flattened features+flags]."""

    name = "Naive GAN"

    def __init__(self, noise_dim: int = 20,
                 generator_hidden: tuple[int, ...] = (200, 200, 200, 200),
                 discriminator_hidden: tuple[int, ...] = (200, 200, 200, 200),
                 learning_rate: float = 1e-3, batch_size: int = 100,
                 iterations: int = 500, gradient_penalty_weight: float = 10.0,
                 seed: int = 0):
        self.noise_dim = noise_dim
        self.generator_hidden = generator_hidden
        self.discriminator_hidden = discriminator_hidden
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.iterations = iterations
        self.gradient_penalty_weight = gradient_penalty_weight
        self.seed = seed
        self.encoder = None
        self.schema = None
        self.generator: MLP | None = None
        self.discriminator: MLP | None = None
        self.activation: BlockActivation | None = None
        self.loss_history: list[float] = []

    def _build_blocks(self) -> list[OutputBlock]:
        blocks = [OutputBlock(f.dimension, "softmax" if f.is_categorical
                              else "sigmoid")
                  for f in self.schema.attributes]
        step = [OutputBlock(f.dimension, "softmax" if f.is_categorical
                            else "sigmoid")
                for f in self.schema.features] + [OutputBlock(2, "softmax")]
        blocks.extend(step * self.schema.max_length)
        return blocks

    def fit(self, dataset: TimeSeriesDataset) -> "NaiveGANBaseline":
        rng = np.random.default_rng(self.seed)
        self.schema = dataset.schema
        self.encoder = make_baseline_encoder(dataset.schema).fit(dataset)
        encoded = self.encoder.transform(dataset)
        n = len(encoded)
        flat_real = np.concatenate(
            [encoded.attributes,
             encoded.features.reshape(n, -1)], axis=1)
        out_dim = flat_real.shape[1]

        self.activation = BlockActivation(self._build_blocks())
        if self.activation.dimension != out_dim:
            raise RuntimeError("output block layout does not match data")
        self.generator = MLP(self.noise_dim, list(self.generator_hidden),
                             out_dim, rng=rng)
        self.discriminator = MLP(out_dim, list(self.discriminator_hidden), 1,
                                 rng=rng)
        g_params = self.generator.parameters()
        d_params = self.discriminator.parameters()
        g_opt = Adam(g_params, lr=self.learning_rate)
        d_opt = Adam(d_params, lr=self.learning_rate)

        self.loss_history = []
        batch = min(self.batch_size, n)
        for _ in range(self.iterations):
            # Critic step.
            idx = rng.integers(0, n, size=batch)
            real = Tensor(flat_real[idx])
            with no_grad():
                z = Tensor(rng.normal(size=(batch, self.noise_dim)))
                fake_const = self.activation(self.generator(z)).detach()
            d_loss = critic_loss(self.discriminator, real, fake_const,
                                 self.gradient_penalty_weight, rng)
            d_opt.step(grad(d_loss, d_params, allow_unused=True))
            # Generator step.
            z = Tensor(rng.normal(size=(batch, self.noise_dim)))
            fake = self.activation(self.generator(z))
            g_loss = generator_loss(self.discriminator, fake)
            g_opt.step(grad(g_loss, g_params, allow_unused=True))
            self.loss_history.append(g_loss.item())
        return self

    def generate(self, n: int,
                 rng: np.random.Generator | None = None) -> TimeSeriesDataset:
        if self.generator is None:
            raise RuntimeError("fit() must be called before generate()")
        rng = rng or np.random.default_rng()
        attr_dim = self.encoder.attribute_dim
        tmax = self.schema.max_length
        dim = self.encoder.feature_dim
        with no_grad():
            z = Tensor(rng.normal(size=(n, self.noise_dim)))
            flat = self.activation(self.generator(z)).data
        attrs = flat[:, :attr_dim]
        features = flat[:, attr_dim:].reshape(n, tmax, dim)
        minmax = np.zeros((n, 0))
        return self.encoder.inverse(attrs, minmax, features)
