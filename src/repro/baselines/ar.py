"""Nonlinear auto-regressive baseline (§2.2, §5.0.1).

The paper's "advanced" AR: an MLP f such that
``R_t = f(A, R_{t-1}, ..., R_{t-p}) + W_t`` with white noise ``W_t`` whose
scale is the training residual.  Attributes are drawn empirically; the first
record is drawn from a Gaussian fit on training first-records; generation
flags (§4.1.1) are part of the regressed step vector and terminate series.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (EmpiricalAttributeSampler, GenerativeModel,
                                  make_baseline_encoder)
from repro.data.dataset import TimeSeriesDataset
from repro.nn import MLP, Adam, Tensor, grad
from repro.nn import functional as F

__all__ = ["ARBaseline"]


class ARBaseline(GenerativeModel):
    """MLP auto-regression of order ``p`` conditioned on attributes."""

    name = "AR"

    def __init__(self, p: int = 3, hidden: tuple[int, ...] = (200, 200, 200, 200),
                 learning_rate: float = 1e-3, batch_size: int = 100,
                 iterations: int = 500, noise_scale: float = 1.0,
                 seed: int = 0):
        if p < 1:
            raise ValueError("AR order p must be >= 1")
        self.p = p
        self.hidden = hidden
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.iterations = iterations
        self.noise_scale = noise_scale
        self.seed = seed
        self.attribute_sampler = EmpiricalAttributeSampler()
        self.encoder = None
        self.schema = None
        self.mlp: MLP | None = None
        self._residual_std: np.ndarray | None = None
        self._first_mean: np.ndarray | None = None
        self._first_std: np.ndarray | None = None
        self.loss_history: list[float] = []

    # -- training -----------------------------------------------------------
    def fit(self, dataset: TimeSeriesDataset) -> "ARBaseline":
        rng = np.random.default_rng(self.seed)
        self.schema = dataset.schema
        self.encoder = make_baseline_encoder(dataset.schema).fit(dataset)
        encoded = self.encoder.transform(dataset)
        attrs, feats, lengths = (encoded.attributes, encoded.features,
                                 encoded.lengths)
        dim = feats.shape[2]

        inputs, targets = [], []
        for i in range(len(feats)):
            history = np.zeros((self.p, dim))
            for t in range(lengths[i]):
                inputs.append(np.concatenate([attrs[i], history.ravel()]))
                targets.append(feats[i, t])
                history = np.roll(history, -1, axis=0)
                history[-1] = feats[i, t]
        x = np.asarray(inputs)
        y = np.asarray(targets)

        self.mlp = MLP(x.shape[1], list(self.hidden), dim, rng=rng)
        optimizer = Adam(self.mlp.parameters(), lr=self.learning_rate)
        params = self.mlp.parameters()
        self.loss_history = []
        for _ in range(self.iterations):
            idx = rng.integers(0, len(x), size=min(self.batch_size, len(x)))
            pred = self.mlp(Tensor(x[idx]))
            loss = F.mse_loss(pred, Tensor(y[idx]))
            optimizer.step(grad(loss, params))
            self.loss_history.append(loss.item())

        # Residual scale for the white-noise term and the R1 Gaussian.
        preds = self._predict_numpy(x)
        self._residual_std = (y - preds).std(axis=0) + 1e-6
        firsts = feats[np.arange(len(feats)), 0]
        self._first_mean = firsts.mean(axis=0)
        self._first_std = firsts.std(axis=0) + 1e-6
        self.attribute_sampler.fit(dataset)
        return self

    def _predict_numpy(self, x: np.ndarray) -> np.ndarray:
        out = self.mlp(Tensor(x))
        return out.data

    # -- generation -----------------------------------------------------------
    def generate(self, n: int,
                 rng: np.random.Generator | None = None) -> TimeSeriesDataset:
        if self.mlp is None:
            raise RuntimeError("fit() must be called before generate()")
        rng = rng or np.random.default_rng()
        tmax = self.schema.max_length
        dim = self.encoder.feature_dim
        attrs_raw = self.attribute_sampler.sample(n, rng)
        attrs_enc = self.encoder.encode_attributes(attrs_raw)

        features = np.zeros((n, tmax, dim))
        history = np.zeros((n, self.p, dim))
        record = np.clip(
            rng.normal(self._first_mean, self._first_std, size=(n, dim)),
            0.0, 1.0)
        alive = np.ones(n, dtype=bool)
        for t in range(tmax):
            features[alive, t] = record[alive]
            ended = record[:, -1] > record[:, -2]
            alive &= ~ended
            if not alive.any():
                break
            history = np.roll(history, -1, axis=1)
            history[:, -1] = record
            x = np.concatenate([attrs_enc, history.reshape(n, -1)], axis=1)
            pred = self._predict_numpy(x)
            noise = rng.normal(0.0, self._residual_std * self.noise_scale,
                               size=pred.shape)
            record = np.clip(pred + noise, 0.0, 1.0)
        minmax = np.zeros((n, 0))
        return self.encoder.inverse(attrs_enc, minmax, features)
