"""Save/load support for the baseline models.

Baselines are release artifacts too (a data holder might ship an HMM where
a GAN is overkill), so each gets the same npz persistence as DoppelGANger.
One caveat the paper's threat model makes explicit: these baselines carry
the *empirical attribute rows* of the training data inside the sampler, so
their parameter files leak training attributes verbatim -- unlike
DoppelGANger's learned attribute generator.  ``save_baseline`` records that
fact in the archive metadata.
"""

from __future__ import annotations

import json

import numpy as np

from repro.baselines.ar import ARBaseline
from repro.baselines.hmm import HMMBaseline
from repro.baselines.naive_gan import NaiveGANBaseline
from repro.baselines.rnn import RNNBaseline
from repro.data.schema import schema_from_dict, schema_to_dict

__all__ = ["save_baseline", "load_baseline"]

_KINDS = {
    "HMM": HMMBaseline,
    "AR": ARBaseline,
    "RNN": RNNBaseline,
    "Naive GAN": NaiveGANBaseline,
}


def save_baseline(model, path) -> None:
    """Persist a fitted baseline (HMM/AR/RNN/Naive GAN) to npz."""
    if model.encoder is None:
        raise RuntimeError("model must be fitted before saving")
    meta = {
        "kind": model.name,
        "schema": schema_to_dict(model.schema),
        "encoder": model.encoder.state(),
        "hyper": _hyperparameters(model),
        "leaks_training_attributes": hasattr(model, "attribute_sampler"),
    }
    arrays = {"__meta__": np.frombuffer(json.dumps(meta).encode("utf-8"),
                                        dtype=np.uint8)}
    arrays.update(_arrays(model))
    np.savez(path, **arrays)


def load_baseline(path):
    """Restore a baseline saved with :func:`save_baseline`."""
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["__meta__"].tobytes()).decode())
        arrays = {k: archive[k] for k in archive.files if k != "__meta__"}
    cls = _KINDS[meta["kind"]]
    model = cls(**meta["hyper"])
    model.schema = schema_from_dict(meta["schema"])
    from repro.baselines.base import make_baseline_encoder

    model.encoder = make_baseline_encoder(model.schema).load_state(
        meta["encoder"])
    _restore_arrays(model, arrays)
    return model


def _hyperparameters(model) -> dict:
    if isinstance(model, HMMBaseline):
        return {"n_states": model.hmm.n_states, "n_iter": model.hmm.n_iter,
                "seed": model.hmm.seed}
    if isinstance(model, ARBaseline):
        return {"p": model.p, "hidden": list(model.hidden),
                "noise_scale": model.noise_scale, "seed": model.seed}
    if isinstance(model, RNNBaseline):
        return {"hidden_size": model.hidden_size, "seed": model.seed}
    if isinstance(model, NaiveGANBaseline):
        return {"noise_dim": model.noise_dim,
                "generator_hidden": list(model.generator_hidden),
                "discriminator_hidden": list(model.discriminator_hidden),
                "seed": model.seed}
    raise TypeError(f"unsupported baseline {type(model).__name__}")


def _arrays(model) -> dict[str, np.ndarray]:
    out: dict[str, np.ndarray] = {}
    if hasattr(model, "attribute_sampler"):
        out["sampler::rows"] = model.attribute_sampler._rows
    if isinstance(model, HMMBaseline):
        hmm = model.hmm
        out.update({"hmm::start": hmm.start_prob,
                    "hmm::transition": hmm.transition,
                    "hmm::means": hmm.means,
                    "hmm::variances": hmm.variances})
    elif isinstance(model, ARBaseline):
        out.update({f"mlp::{k}": v for k, v in
                    model.mlp.state_dict().items()})
        out.update({"ar::residual_std": model._residual_std,
                    "ar::first_mean": model._first_mean,
                    "ar::first_std": model._first_std})
    elif isinstance(model, RNNBaseline):
        out.update({f"cell::{k}": v for k, v in
                    model.cell.state_dict().items()})
        out.update({f"readout::{k}": v for k, v in
                    model.readout.state_dict().items()})
        out.update({"rnn::first_mean": model._first_mean,
                    "rnn::first_std": model._first_std})
    elif isinstance(model, NaiveGANBaseline):
        out.update({f"generator::{k}": v for k, v in
                    model.generator.state_dict().items()})
        out.update({f"discriminator::{k}": v for k, v in
                    model.discriminator.state_dict().items()})
    return out


def _restore_arrays(model, arrays: dict[str, np.ndarray]) -> None:
    import numpy as np

    if hasattr(model, "attribute_sampler"):
        model.attribute_sampler._rows = arrays["sampler::rows"]
    if isinstance(model, HMMBaseline):
        hmm = model.hmm
        hmm.start_prob = arrays["hmm::start"]
        hmm.transition = arrays["hmm::transition"]
        hmm.means = arrays["hmm::means"]
        hmm.variances = arrays["hmm::variances"]
        return
    if isinstance(model, ARBaseline):
        encoded = model.encoder
        dim = encoded.feature_dim
        attr_dim = encoded.attribute_dim
        from repro.nn import MLP
        model.mlp = MLP(attr_dim + model.p * dim, list(model.hidden), dim,
                        rng=np.random.default_rng(model.seed))
        model.mlp.load_state_dict(
            {k.split("::", 1)[1]: v for k, v in arrays.items()
             if k.startswith("mlp::")})
        model._residual_std = arrays["ar::residual_std"]
        model._first_mean = arrays["ar::first_mean"]
        model._first_std = arrays["ar::first_std"]
        return
    if isinstance(model, RNNBaseline):
        from repro.nn import Linear, LSTMCell
        dim = model.encoder.feature_dim
        attr_dim = model.encoder.attribute_dim
        rng = np.random.default_rng(model.seed)
        model.cell = LSTMCell(attr_dim + dim, model.hidden_size, rng=rng)
        model.readout = Linear(model.hidden_size, dim, rng=rng)
        model.cell.load_state_dict(
            {k.split("::", 1)[1]: v for k, v in arrays.items()
             if k.startswith("cell::")})
        model.readout.load_state_dict(
            {k.split("::", 1)[1]: v for k, v in arrays.items()
             if k.startswith("readout::")})
        model._first_mean = arrays["rnn::first_mean"]
        model._first_std = arrays["rnn::first_std"]
        return
    if isinstance(model, NaiveGANBaseline):
        from repro.nn import MLP
        rng = np.random.default_rng(model.seed)
        n_steps = model.schema.max_length
        out_dim = (model.encoder.attribute_dim
                   + n_steps * model.encoder.feature_dim)
        model.activation = _rebuild_naive_activation(model)
        model.generator = MLP(model.noise_dim,
                              list(model.generator_hidden), out_dim,
                              rng=rng)
        model.discriminator = MLP(out_dim,
                                  list(model.discriminator_hidden), 1,
                                  rng=rng)
        model.generator.load_state_dict(
            {k.split("::", 1)[1]: v for k, v in arrays.items()
             if k.startswith("generator::")})
        model.discriminator.load_state_dict(
            {k.split("::", 1)[1]: v for k, v in arrays.items()
             if k.startswith("discriminator::")})


def _rebuild_naive_activation(model: NaiveGANBaseline):
    from repro.core.generator import BlockActivation

    return BlockActivation(model._build_blocks())
