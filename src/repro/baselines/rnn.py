"""RNN (teacher-forced LSTM) baseline (§2.2, §5.0.1).

An LSTM is trained with teacher forcing to predict the next encoded record
from the previous one plus the attributes.  At generation time the model's
own outputs are fed back.  As the paper notes, this family "incorporates too
little randomness": the only stochasticity is the attribute draw and the
Gaussian first record, which is what makes it miss multi-modal structure
(Figure 7).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (EmpiricalAttributeSampler, GenerativeModel,
                                  make_baseline_encoder)
from repro.data.dataset import TimeSeriesDataset, padding_mask
from repro.nn import LSTMCell, Linear, Adam, Tensor, grad, kernels, no_grad, ops
from repro.nn import functional as F

__all__ = ["RNNBaseline"]


class RNNBaseline(GenerativeModel):
    """Teacher-forced LSTM next-step predictor conditioned on attributes."""

    name = "RNN"

    def __init__(self, hidden_size: int = 100, learning_rate: float = 1e-3,
                 batch_size: int = 100, iterations: int = 200,
                 seed: int = 0):
        self.hidden_size = hidden_size
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.iterations = iterations
        self.seed = seed
        self.attribute_sampler = EmpiricalAttributeSampler()
        self.encoder = None
        self.schema = None
        self.cell: LSTMCell | None = None
        self.readout: Linear | None = None
        self._first_mean: np.ndarray | None = None
        self._first_std: np.ndarray | None = None
        self.loss_history: list[float] = []

    def fit(self, dataset: TimeSeriesDataset) -> "RNNBaseline":
        rng = np.random.default_rng(self.seed)
        self.schema = dataset.schema
        self.encoder = make_baseline_encoder(dataset.schema).fit(dataset)
        encoded = self.encoder.transform(dataset)
        attrs, feats, lengths = (encoded.attributes, encoded.features,
                                 encoded.lengths)
        n, tmax, dim = feats.shape

        self.cell = LSTMCell(attrs.shape[1] + dim, self.hidden_size, rng=rng)
        self.readout = Linear(self.hidden_size, dim, rng=rng)
        params = self.cell.parameters() + self.readout.parameters()
        optimizer = Adam(params, lr=self.learning_rate)

        mask_all = padding_mask(lengths, tmax)
        self.loss_history = []
        for _ in range(self.iterations):
            idx = rng.integers(0, n, size=min(self.batch_size, n))
            mask = mask_all[idx]
            if kernels.fused_enabled():
                loss = self._fused_loss(attrs[idx], feats[idx], mask)
            else:
                loss = self._reference_loss(attrs[idx], feats[idx], mask)
            optimizer.step(grad(loss, params))
            self.loss_history.append(loss.item())

        firsts = feats[np.arange(n), 0]
        self._finalize_fit(dataset, firsts)
        return self

    def _fused_loss(self, attrs: np.ndarray, feats: np.ndarray,
                    mask: np.ndarray) -> Tensor:
        """Masked next-step MSE via one fused LSTM scan.

        Teacher forcing means every step's input -- [attributes, previous
        *target* record] -- is known up front, so the whole batch runs as a
        single :func:`repro.nn.kernels.lstm_sequence` node with the readout
        applied to all steps at once.
        """
        batch, _, dim = feats.shape
        t_used = max(int(mask.sum(axis=1).max()), 1)
        prev = np.zeros((batch, t_used, dim))
        prev[:, 1:] = feats[:, :t_used - 1]
        cond = np.repeat(attrs[:, None, :], t_used, axis=1)
        inputs = Tensor(np.concatenate([cond, prev], axis=2))
        h0, c0 = self.cell.initial_state(batch)
        h_seq = kernels.lstm_sequence(inputs, h0, c0, self.cell.weight_ih,
                                      self.cell.weight_hh, self.cell.bias)
        flat_h = ops.reshape(h_seq, (batch * t_used, -1))
        pred = ops.sigmoid(self.readout(flat_h))
        diff = ((ops.reshape(pred, (batch, t_used, dim))
                 - Tensor(feats[:, :t_used]))
                * Tensor(mask[:, :t_used, None].astype(np.float64)))
        denom = float(mask.sum() * dim)
        return (diff * diff).sum() / Tensor(denom)

    def _reference_loss(self, attrs: np.ndarray, feats: np.ndarray,
                        mask: np.ndarray) -> Tensor:
        """Step-by-step reference path (kept for parity testing)."""
        batch, _, dim = feats.shape
        a = Tensor(attrs)
        state = self.cell.initial_state(batch)
        prev = Tensor(np.zeros((batch, dim)))
        step_losses = []
        for t in range(feats.shape[1]):
            m = mask[:, t]
            if not m.any():
                break
            h, c = self.cell(ops.concat([a, prev], axis=1), state)
            state = (h, c)
            pred = ops.sigmoid(self.readout(h))
            target = Tensor(feats[:, t])
            weight = Tensor(m[:, None])
            diff = (pred - target) * weight
            step_losses.append((diff * diff).sum())
            prev = target  # teacher forcing
        denom = float(mask.sum() * dim)
        return ops.concat(
            [ops.reshape(l, (1,)) for l in step_losses], axis=0
        ).sum() / Tensor(denom)

    def _finalize_fit(self, dataset: TimeSeriesDataset,
                      firsts: np.ndarray) -> None:
        self._first_mean = firsts.mean(axis=0)
        self._first_std = firsts.std(axis=0) + 1e-6
        self.attribute_sampler.fit(dataset)

    def generate(self, n: int,
                 rng: np.random.Generator | None = None) -> TimeSeriesDataset:
        if self.cell is None:
            raise RuntimeError("fit() must be called before generate()")
        rng = rng or np.random.default_rng()
        tmax = self.schema.max_length
        dim = self.encoder.feature_dim
        attrs_raw = self.attribute_sampler.sample(n, rng)
        attrs_enc = self.encoder.encode_attributes(attrs_raw)

        features = np.zeros((n, tmax, dim))
        record = np.clip(
            rng.normal(self._first_mean, self._first_std, size=(n, dim)),
            0.0, 1.0)
        alive = np.ones(n, dtype=bool)
        with no_grad():
            a = Tensor(attrs_enc)
            state = self.cell.initial_state(n)
            for t in range(tmax):
                features[alive, t] = record[alive]
                ended = record[:, -1] > record[:, -2]
                alive &= ~ended
                if not alive.any():
                    break
                h, c = self.cell(ops.concat([a, Tensor(record)], axis=1),
                                 state)
                state = (h, c)
                record = ops.sigmoid(self.readout(h)).data
        minmax = np.zeros((n, 0))
        return self.encoder.inverse(attrs_enc, minmax, features)
