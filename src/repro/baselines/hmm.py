"""Hidden Markov model baseline (§2.2, §5.0.1).

A diagonal-covariance Gaussian HMM trained with Baum-Welch (EM with scaled
forward-backward) on the encoded feature sequences *including* the two
generation-flag channels, which is "the same technique discussed in §4.1.1"
the paper uses to give every baseline variable-length generation.

Attributes are drawn from the empirical training distribution, independent
of the series -- exactly the paper's HMM configuration.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (EmpiricalAttributeSampler, GenerativeModel,
                                  make_baseline_encoder)
from repro.data.dataset import TimeSeriesDataset

__all__ = ["GaussianHMM", "HMMBaseline"]

_VAR_FLOOR = 1e-4


class GaussianHMM:
    """Diagonal-covariance Gaussian HMM with Baum-Welch training."""

    def __init__(self, n_states: int = 10, n_iter: int = 20,
                 seed: int = 0):
        if n_states < 1:
            raise ValueError("n_states must be >= 1")
        self.n_states = n_states
        self.n_iter = n_iter
        self.seed = seed
        self.start_prob: np.ndarray | None = None
        self.transition: np.ndarray | None = None
        self.means: np.ndarray | None = None
        self.variances: np.ndarray | None = None

    # -- training --------------------------------------------------------
    def fit(self, sequences: list[np.ndarray]) -> "GaussianHMM":
        """Run EM on a list of (T_i, D) float arrays."""
        if not sequences:
            raise ValueError("no training sequences")
        rng = np.random.default_rng(self.seed)
        dim = sequences[0].shape[1]
        stacked = np.concatenate(sequences, axis=0)
        k = self.n_states
        # Initialise means from random data points, variances from data.
        idx = rng.choice(len(stacked), size=k, replace=len(stacked) < k)
        self.means = stacked[idx].copy()
        self.variances = np.tile(stacked.var(axis=0) + _VAR_FLOOR, (k, 1))
        self.start_prob = np.full(k, 1.0 / k)
        self.transition = rng.dirichlet(np.full(k, 5.0), size=k)

        for _ in range(self.n_iter):
            start_acc = np.zeros(k)
            trans_acc = np.zeros((k, k))
            gamma_sum = np.zeros(k)
            mean_acc = np.zeros((k, dim))
            sq_acc = np.zeros((k, dim))
            for seq in sequences:
                gamma, xi_sum, _ = self._e_step(seq)
                start_acc += gamma[0]
                trans_acc += xi_sum
                gamma_sum += gamma.sum(axis=0)
                mean_acc += gamma.T @ seq
                sq_acc += gamma.T @ (seq * seq)
            self.start_prob = _normalize(start_acc)
            self.transition = _normalize(trans_acc, axis=1)
            denom = gamma_sum[:, None] + 1e-12
            self.means = mean_acc / denom
            self.variances = np.maximum(
                sq_acc / denom - self.means ** 2, _VAR_FLOOR)
        return self

    def _emission_prob(self, seq: np.ndarray) -> np.ndarray:
        """p(x_t | state), shape (T, K), computed via stable log-density."""
        diff = seq[:, None, :] - self.means[None, :, :]
        log_p = -0.5 * (
            (diff * diff / self.variances[None, :, :]).sum(axis=2)
            + np.log(2 * np.pi * self.variances).sum(axis=1)[None, :])
        log_p -= log_p.max(axis=1, keepdims=True)
        return np.exp(log_p) + 1e-300

    def _e_step(self, seq: np.ndarray):
        """Scaled forward-backward; returns (gamma, xi summed over t, ll)."""
        emission = self._emission_prob(seq)
        steps = len(seq)
        k = self.n_states
        alpha = np.zeros((steps, k))
        scale = np.zeros(steps)
        alpha[0] = self.start_prob * emission[0]
        scale[0] = alpha[0].sum() + 1e-300
        alpha[0] /= scale[0]
        for t in range(1, steps):
            alpha[t] = (alpha[t - 1] @ self.transition) * emission[t]
            scale[t] = alpha[t].sum() + 1e-300
            alpha[t] /= scale[t]
        beta = np.zeros((steps, k))
        beta[-1] = 1.0
        for t in range(steps - 2, -1, -1):
            beta[t] = (self.transition @ (emission[t + 1]
                                          * beta[t + 1])) / scale[t + 1]
        gamma = alpha * beta
        gamma /= gamma.sum(axis=1, keepdims=True) + 1e-300
        xi_sum = np.zeros((k, k))
        for t in range(steps - 1):
            xi = (alpha[t][:, None] * self.transition
                  * (emission[t + 1] * beta[t + 1])[None, :]) / scale[t + 1]
            xi_sum += xi / (xi.sum() + 1e-300)
        return gamma, xi_sum, float(np.log(scale).sum())

    def log_likelihood(self, seq: np.ndarray) -> float:
        return self._e_step(seq)[2]

    # -- sampling ------------------------------------------------------------
    def sample(self, max_steps: int, rng: np.random.Generator) -> np.ndarray:
        """Draw one emission sequence of exactly ``max_steps`` steps."""
        k = self.n_states
        out = np.zeros((max_steps, self.means.shape[1]))
        state = rng.choice(k, p=self.start_prob)
        for t in range(max_steps):
            out[t] = rng.normal(self.means[state],
                                np.sqrt(self.variances[state]))
            state = rng.choice(k, p=self.transition[state])
        return out


class HMMBaseline(GenerativeModel):
    """The paper's HMM baseline over encoded features + generation flags."""

    name = "HMM"

    def __init__(self, n_states: int = 10, n_iter: int = 20, seed: int = 0):
        self.hmm = GaussianHMM(n_states=n_states, n_iter=n_iter, seed=seed)
        self.attribute_sampler = EmpiricalAttributeSampler()
        self.encoder = None
        self.schema = None

    def fit(self, dataset: TimeSeriesDataset) -> "HMMBaseline":
        self.schema = dataset.schema
        self.encoder = make_baseline_encoder(dataset.schema).fit(dataset)
        encoded = self.encoder.transform(dataset)
        sequences = [encoded.features[i, :encoded.lengths[i]]
                     for i in range(len(encoded))]
        self.hmm.fit(sequences)
        self.attribute_sampler.fit(dataset)
        return self

    def generate(self, n: int,
                 rng: np.random.Generator | None = None) -> TimeSeriesDataset:
        if self.encoder is None:
            raise RuntimeError("fit() must be called before generate()")
        rng = rng or np.random.default_rng()
        tmax = self.schema.max_length
        dim = self.encoder.feature_dim
        features = np.zeros((n, tmax, dim))
        for i in range(n):
            seq = self.hmm.sample(tmax, rng)
            end = _first_end_step(seq[:, -2:])
            seq[end + 1:] = 0.0
            # Clean the flag channels so decoding sees a crisp end marker.
            seq[:end, -2:] = [1.0, 0.0]
            seq[end, -2:] = [0.0, 1.0]
            features[i] = seq
        attrs_raw = self.attribute_sampler.sample(n, rng)
        attrs_enc = self.encoder.encode_attributes(attrs_raw)
        minmax = np.zeros((n, 0))
        return self.encoder.inverse(attrs_enc, minmax, features)


def _first_end_step(flags: np.ndarray) -> int:
    """Index of the first step whose end flag dominates (or the last step)."""
    ends = flags[:, 1] > flags[:, 0]
    if ends.any():
        return int(ends.argmax())
    return len(flags) - 1


def _normalize(x: np.ndarray, axis=None) -> np.ndarray:
    """Normalise to a probability vector; empty mass becomes uniform."""
    total = x.sum(axis=axis, keepdims=axis is not None)
    out = x / (total + 1e-300)
    if axis is None:
        if total <= 0:
            out = np.full_like(x, 1.0 / x.size)
        return out / out.sum()
    dead = np.asarray(total).squeeze(axis) <= 0
    if np.any(dead):
        out[dead] = 1.0 / x.shape[axis]
    return out / out.sum(axis=axis, keepdims=True)
