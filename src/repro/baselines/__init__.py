"""Baseline generative models evaluated against DoppelGANger (§5.0.1)."""

from repro.baselines.ar import ARBaseline
from repro.baselines.base import EmpiricalAttributeSampler, GenerativeModel
from repro.baselines.hmm import GaussianHMM, HMMBaseline
from repro.baselines.naive_gan import NaiveGANBaseline
from repro.baselines.persistence import load_baseline, save_baseline
from repro.baselines.rnn import RNNBaseline

__all__ = [
    "GenerativeModel", "EmpiricalAttributeSampler",
    "HMMBaseline", "GaussianHMM", "ARBaseline", "RNNBaseline",
    "NaiveGANBaseline",
    "save_baseline", "load_baseline",
]
