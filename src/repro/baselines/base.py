"""Shared interface for all generative models (§5.0.1 baselines).

Every baseline follows the paper's recipe for attributes: they are drawn
from the empirical (multinomial) distribution of the training data, jointly
across attribute fields, independent of the generated time series.  Each
baseline then generates features (and generation flags, §4.1.1) its own way.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.data.encoding import DataEncoder
from repro.data.schema import DataSchema

__all__ = ["GenerativeModel", "EmpiricalAttributeSampler"]


class GenerativeModel(abc.ABC):
    """Common fit/generate interface shared with DoppelGANger."""

    name: str = "model"

    @abc.abstractmethod
    def fit(self, dataset: TimeSeriesDataset):
        """Train on a raw dataset."""

    @abc.abstractmethod
    def generate(self, n: int,
                 rng: np.random.Generator | None = None) -> TimeSeriesDataset:
        """Sample ``n`` synthetic objects."""


class EmpiricalAttributeSampler:
    """Bootstrap sampler over training attribute rows.

    Sampling full rows preserves the *joint* attribute distribution, which
    is why the paper notes these baselines "trivially learn a perfect
    attribute distribution".
    """

    def __init__(self):
        self._rows: np.ndarray | None = None

    def fit(self, dataset: TimeSeriesDataset) -> "EmpiricalAttributeSampler":
        self._rows = dataset.attributes.copy()
        return self

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self._rows is None:
            raise RuntimeError("sampler not fitted")
        idx = rng.integers(0, len(self._rows), size=n)
        return self._rows[idx]


def make_baseline_encoder(schema: DataSchema) -> DataEncoder:
    """Encoder used by baselines: global normalisation, no min/max trick."""
    return DataEncoder(schema, auto_normalize=False, target_range="zero_one")
