"""Synthetic FCC Measuring Broadband America (MBA) dataset.

Stands in for the FCC MBA seventh-report raw data (Table 7).  Reproduced
properties:

- two continuous features per 6-hour bin: UDP ping loss rate and traffic
  byte counter;
- three categorical attributes: connection technology, ISP, US state;
- technology determines the bandwidth distribution (cable users consume more
  than DSL -- the Table 3 / Figure 9 evaluation), with distributional
  overlap and a long lower tail;
- a diurnal usage pattern (period 4 at 6-hour bins);
- ISP is correlated with technology (fiber ISPs vs satellite ISPs), so the
  attribute joint distribution is non-product.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.data.schema import CategoricalSpec, ContinuousSpec, DataSchema

__all__ = ["MBA_TECHNOLOGIES", "MBA_ISPS", "MBA_STATES",
           "make_mba_schema", "generate_mba"]

MBA_TECHNOLOGIES = ("DSL", "Fiber", "Satellite", "Cable", "IPBB")

MBA_ISPS = (
    "Charter", "Verizon", "Frontier", "Hawaiian Telcom", "Cox", "Mediacom",
    "Hughes", "Windstream", "Wildblue/ViaSat", "Cincinnati Bell", "Comcast",
    "AT&T", "CenturyLink", "Optimum",
)

MBA_STATES = (
    "AL", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL",
    "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO",
    "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC", "ND", "OH", "OK", "OR",
    "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI",
    "WY", "DC",
)

# Technology marginal (cable + DSL dominate US broadband).
_TECH_WEIGHTS = np.array([2.5, 1.2, 0.5, 3.0, 0.8])

# P(ISP | technology): each ISP leans towards the technologies it deploys.
# Rows: technologies; columns: ISPs (unnormalised).
_ISP_GIVEN_TECH = np.array([
    # DSL: telcos
    [0.2, 1.5, 1.8, 0.8, 0.2, 0.2, 0.1, 1.8, 0.1, 1.2, 0.2, 2.0, 2.2, 0.3],
    # Fiber: Verizon/AT&T/Frontier fiber builds
    [0.1, 3.0, 1.0, 0.6, 0.2, 0.1, 0.0, 0.3, 0.0, 0.8, 0.3, 2.0, 0.8, 0.4],
    # Satellite
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 3.0, 0.0, 2.5, 0.0, 0.0, 0.0, 0.0, 0.0],
    # Cable: cable MSOs
    [2.8, 0.1, 0.2, 0.3, 1.8, 1.2, 0.0, 0.1, 0.0, 0.2, 3.0, 0.1, 0.1, 1.5],
    # IPBB (AT&T's hybrid product)
    [0.1, 0.2, 0.2, 0.1, 0.1, 0.1, 0.0, 0.2, 0.0, 0.2, 0.2, 3.0, 0.5, 0.1],
])

# Mean log traffic per 6h bin (GB-scale) by technology: cable/fiber > DSL,
# satellite lowest (data caps).
_TECH_LOG_TRAFFIC = np.array([-0.7, 0.5, -1.8, 0.3, -0.2])
# Baseline ping loss rate by technology: satellite much lossier.
_TECH_LOSS_BASE = np.array([0.008, 0.002, 0.05, 0.004, 0.006])


def make_mba_schema(length: int = 56) -> DataSchema:
    """Schema of Table 7 (56 = 14 days of 6-hour bins)."""
    return DataSchema(
        attributes=(
            CategoricalSpec("technology", MBA_TECHNOLOGIES),
            CategoricalSpec("isp", MBA_ISPS),
            CategoricalSpec("state", MBA_STATES),
        ),
        features=(
            ContinuousSpec("ping_loss_rate", low=0.0, high=1.0),
            # Byte counters are heavy-tailed; encode in log space so the
            # GAN's [0,1] scaling doesn't squeeze most mass near zero.
            ContinuousSpec("traffic_bytes", low=0.0, log_transform=True),
        ),
        max_length=length,
        collection_period="6 hours",
    )


def generate_mba(n: int, rng: np.random.Generator,
                 length: int = 56, diurnal_period: int = 4
                 ) -> TimeSeriesDataset:
    """Generate ``n`` synthetic home-measurement series."""
    schema = make_mba_schema(length)
    tech = rng.choice(len(MBA_TECHNOLOGIES), size=n,
                      p=_TECH_WEIGHTS / _TECH_WEIGHTS.sum())
    isp = np.empty(n, dtype=np.int64)
    for t in range(len(MBA_TECHNOLOGIES)):
        idx = np.where(tech == t)[0]
        if len(idx) == 0:
            continue
        probs = _ISP_GIVEN_TECH[t] / _ISP_GIVEN_TECH[t].sum()
        isp[idx] = rng.choice(len(MBA_ISPS), size=len(idx), p=probs)
    # States roughly population-weighted via a dirichlet draw fixed here.
    state_weights = np.linspace(2.0, 0.5, len(MBA_STATES))
    state = rng.choice(len(MBA_STATES), size=n,
                       p=state_weights / state_weights.sum())

    t_axis = np.arange(length)
    # Per-home mean traffic level (lognormal around the technology mean).
    # Sigma 0.5 keeps the tail realistic but learnable at CPU scale; the
    # cable-vs-DSL separation that Table 3 evaluates comes from the
    # technology means, not the tail.
    log_level = (_TECH_LOG_TRAFFIC[tech] + rng.normal(0.0, 0.35, size=n))
    level = np.exp(log_level)
    # Diurnal usage: evening peak.
    phase = rng.uniform(0, 2 * np.pi, size=n)
    diurnal = 1.0 + 0.6 * np.sin(
        2 * np.pi * t_axis[None, :] / diurnal_period + phase[:, None])
    burst = rng.gamma(shape=4.0, scale=0.25, size=(n, length))
    traffic = np.maximum(level[:, None] * diurnal * burst, 0.0)

    loss_base = _TECH_LOSS_BASE[tech] * np.exp(rng.normal(0, 0.5, size=n))
    congestion = np.clip(traffic / (traffic.mean(axis=1, keepdims=True)
                                    + 1e-9) - 1.0, 0.0, None)
    loss = np.clip(loss_base[:, None] * (1.0 + 0.5 * congestion)
                   + rng.exponential(0.001, size=(n, length)), 0.0, 1.0)

    features = np.stack([loss, traffic], axis=2)
    attributes = np.stack([tech, isp, state], axis=1).astype(np.float64)
    lengths = np.full(n, length, dtype=np.int64)
    return TimeSeriesDataset(schema=schema, attributes=attributes,
                             features=features, lengths=lengths)
