"""Synthetic equivalents of the paper's three evaluation datasets.

No network access is available in this environment, so the Kaggle Wikipedia
Web Traffic dump, the FCC MBA raw data, and the Google Cluster Usage Traces
are replaced by simulators that reproduce the *properties the paper
evaluates* (Table 2): temporal correlation structure, attribute/feature
correlation, multi-dimensional features, variable lengths, wide dynamic
range, and the schemas of Tables 5-7.
"""

from repro.data.simulators.flashcrowd import (FLASHCROWD_CATEGORIES,
                                              FLASHCROWD_TIERS,
                                              generate_flashcrowd,
                                              make_flashcrowd_schema)
from repro.data.simulators.gcut import (GCUT_END_EVENT_TYPES, GCUT_FEATURES,
                                        generate_gcut, make_gcut_schema)
from repro.data.simulators.mba import (MBA_ISPS, MBA_STATES,
                                       MBA_TECHNOLOGIES, generate_mba,
                                       make_mba_schema)
from repro.data.simulators.regime import (REGIME_REGIONS,
                                          REGIME_SERVICE_CLASSES,
                                          generate_regime,
                                          make_regime_schema)
from repro.data.simulators.wwt import (WWT_ACCESS_TYPES, WWT_AGENTS,
                                       WWT_DOMAINS, generate_wwt,
                                       make_wwt_schema)

__all__ = [
    "generate_wwt", "make_wwt_schema",
    "WWT_DOMAINS", "WWT_ACCESS_TYPES", "WWT_AGENTS",
    "generate_mba", "make_mba_schema",
    "MBA_TECHNOLOGIES", "MBA_ISPS", "MBA_STATES",
    "generate_gcut", "make_gcut_schema",
    "GCUT_END_EVENT_TYPES", "GCUT_FEATURES",
    "generate_flashcrowd", "make_flashcrowd_schema",
    "FLASHCROWD_CATEGORIES", "FLASHCROWD_TIERS",
    "generate_regime", "make_regime_schema",
    "REGIME_SERVICE_CLASSES", "REGIME_REGIONS",
]
