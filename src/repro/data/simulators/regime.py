"""Synthetic regime-switching workload dataset.

Models a service whose load alternates between *latent regimes* (idle,
steady, overload) driven by a Markov chain -- the long-range dependence
structure that single-scale RNN generators smooth away (the Figure-7
class of failure, but in levels rather than durations).  Reproduced
properties:

- two continuous features: utilisation (bounded [0, 1]) and queue depth
  (unbounded, regime-amplified), so bounded and wide-range channels
  coexist in one schema;
- two categorical attributes: service class (shapes the regime
  transition matrix) and deployment region (shifts levels);
- **variable-length** series: overloaded services get terminated early,
  so series length correlates with the attribute/regime joint.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.data.schema import CategoricalSpec, ContinuousSpec, DataSchema

__all__ = ["REGIME_SERVICE_CLASSES", "REGIME_REGIONS",
           "make_regime_schema", "generate_regime"]

REGIME_SERVICE_CLASSES = ("batch", "interactive", "streaming")
REGIME_REGIONS = ("us-east", "eu-west", "ap-south")

_CLASS_WEIGHTS = np.array([1.2, 2.0, 1.0])
_REGION_WEIGHTS = np.array([2.0, 1.4, 1.0])
_REGION_QUEUE_LOG_LEVEL = np.array([0.5, 0.1, -0.3])

# Latent regimes: idle, steady, overload.
_REGIME_UTIL = np.array([0.12, 0.45, 0.85])
_REGIME_QUEUE_SCALE = np.array([0.5, 2.0, 12.0])

# Per-service-class regime transition matrices (rows sum to 1).  Batch
# jobs swing hard between idle and overload; interactive services hold
# steady; streaming sits high with sticky overloads.
_TRANSITIONS = np.array([
    [[0.70, 0.15, 0.15],
     [0.25, 0.50, 0.25],
     [0.30, 0.20, 0.50]],
    [[0.55, 0.40, 0.05],
     [0.10, 0.80, 0.10],
     [0.10, 0.50, 0.40]],
    [[0.40, 0.50, 0.10],
     [0.05, 0.70, 0.25],
     [0.05, 0.30, 0.65]],
])
_INITIAL = np.array([[0.6, 0.3, 0.1],
                     [0.2, 0.7, 0.1],
                     [0.1, 0.6, 0.3]])

#: Per-step termination probability while in the overload regime.
_OVERLOAD_KILL_PROB = 0.12


def make_regime_schema(max_length: int = 48) -> DataSchema:
    """Variable-length two-channel series with two categorical attributes."""
    return DataSchema(
        attributes=(
            CategoricalSpec("service_class", REGIME_SERVICE_CLASSES),
            CategoricalSpec("region", REGIME_REGIONS),
        ),
        features=(
            ContinuousSpec("utilization", low=0.0, high=1.0),
            ContinuousSpec("queue_depth", low=0.0),
        ),
        max_length=max_length,
        collection_period="5 minutes",
    )


def generate_regime(n: int, rng: np.random.Generator,
                    max_length: int = 48) -> TimeSeriesDataset:
    """Generate ``n`` synthetic regime-switching workload traces."""
    schema = make_regime_schema(max_length)
    service = rng.choice(len(REGIME_SERVICE_CLASSES), size=n,
                         p=_CLASS_WEIGHTS / _CLASS_WEIGHTS.sum())
    region = rng.choice(len(REGIME_REGIONS), size=n,
                        p=_REGION_WEIGHTS / _REGION_WEIGHTS.sum())

    # Simulate the per-object Markov chain; an overload step may kill the
    # service, which is what makes lengths attribute-dependent.
    regimes = np.zeros((n, max_length), dtype=np.int64)
    lengths = np.full(n, max_length, dtype=np.int64)
    state = np.array([rng.choice(3, p=_INITIAL[s]) for s in service])
    alive = np.ones(n, dtype=bool)
    for step in range(max_length):
        regimes[:, step] = state
        overloaded = alive & (state == 2)
        killed = overloaded & (rng.random(n) < _OVERLOAD_KILL_PROB)
        lengths[killed] = step + 1
        alive &= ~killed
        nxt = np.empty(n, dtype=np.int64)
        u = rng.random(n)
        for s in range(len(_TRANSITIONS)):
            mask = service == s
            cum = np.cumsum(_TRANSITIONS[s][state[mask]], axis=1)
            nxt[mask] = (u[mask][:, None] > cum).sum(axis=1)
        state = nxt
    lengths = np.maximum(lengths, 1)

    util_noise = rng.normal(0.0, 0.06, size=(n, max_length))
    util = np.clip(_REGIME_UTIL[regimes] + util_noise, 0.0, 1.0)

    queue_level = np.exp(_REGION_QUEUE_LOG_LEVEL[region]
                         + rng.normal(0.0, 0.4, size=n))
    queue_noise = rng.gamma(shape=6.0, scale=1.0 / 6.0,
                            size=(n, max_length))
    queue = (queue_level[:, None] * _REGIME_QUEUE_SCALE[regimes]
             * queue_noise)

    features = np.stack([util, queue], axis=2)
    attributes = np.stack([service, region], axis=1).astype(np.float64)
    return TimeSeriesDataset(schema=schema, attributes=attributes,
                             features=features, lengths=lengths)
