"""Synthetic flash-crowd CDN traffic dataset.

Models the bursty workload the paper's §7 flags as an open question for
GAN fidelity: long quiet baselines punctuated by *flash crowds* -- sudden
order-of-magnitude request surges with fast onset and slow decay (think a
link going viral or a breaking-news spike).  Reproduced properties:

- one continuous feature: requests per interval, with a wide dynamic
  range between quiet and surge periods (the auto-normalisation
  stressor, §4.1.3);
- two categorical attributes: content category and CDN tier, both of
  which shape baseline level and burstiness;
- a diurnal baseline period plus heavy-tailed surge magnitudes, so the
  temporal structure has both a periodic and an episodic component.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.data.schema import CategoricalSpec, ContinuousSpec, DataSchema

__all__ = ["FLASHCROWD_CATEGORIES", "FLASHCROWD_TIERS",
           "make_flashcrowd_schema", "generate_flashcrowd"]

FLASHCROWD_CATEGORIES = ("news", "video", "software", "social")
FLASHCROWD_TIERS = ("edge", "regional", "origin")

# News and social content flash far more often than software mirrors.
_CATEGORY_WEIGHTS = np.array([1.5, 2.0, 0.8, 1.7])
_CATEGORY_BURST_RATE = np.array([0.12, 0.06, 0.02, 0.09])
_CATEGORY_LOG_LEVEL = np.array([0.6, 1.4, 0.2, 0.9])

_TIER_WEIGHTS = np.array([3.0, 1.5, 1.0])
_TIER_LOG_LEVEL = np.array([1.0, 0.3, -0.5])


def make_flashcrowd_schema(length: int = 56) -> DataSchema:
    """Fixed-length request-rate series with two categorical attributes."""
    return DataSchema(
        attributes=(
            CategoricalSpec("content_category", FLASHCROWD_CATEGORIES),
            CategoricalSpec("cdn_tier", FLASHCROWD_TIERS),
        ),
        features=(ContinuousSpec("requests_per_interval", low=0.0),),
        max_length=length,
        collection_period="hourly",
    )


def generate_flashcrowd(n: int, rng: np.random.Generator, length: int = 56,
                        diurnal_period: int = 8,
                        decay: float = 0.55) -> TimeSeriesDataset:
    """Generate ``n`` synthetic CDN request-rate series.

    Args:
        n: Number of objects (content items).
        rng: Source of randomness.
        length: Series length.
        diurnal_period: Period of the baseline daily cycle.
        decay: Per-step geometric decay of a surge after its onset peak.
    """
    schema = make_flashcrowd_schema(length)
    category = rng.choice(len(FLASHCROWD_CATEGORIES), size=n,
                          p=_CATEGORY_WEIGHTS / _CATEGORY_WEIGHTS.sum())
    tier = rng.choice(len(FLASHCROWD_TIERS), size=n,
                      p=_TIER_WEIGHTS / _TIER_WEIGHTS.sum())

    t = np.arange(length)
    log_level = (2.0 + _CATEGORY_LOG_LEVEL[category] + _TIER_LOG_LEVEL[tier]
                 + rng.normal(0.0, 0.8, size=n))
    level = np.exp(log_level)

    phase = rng.uniform(0, 2 * np.pi, size=n)
    diurnal = 1.0 + 0.35 * np.sin(2 * np.pi * t[None, :] / diurnal_period
                                  + phase[:, None])

    # Episodic surges: Bernoulli onsets at a category-dependent rate, each
    # with a Pareto-ish magnitude, then geometric decay.  The convolution
    # is a simple forward recurrence so surges overlap additively.
    onset = (rng.random((n, length))
             < _CATEGORY_BURST_RATE[category][:, None]).astype(np.float64)
    magnitude = onset * (rng.pareto(2.5, size=(n, length)) + 1.0) * 8.0
    surge = np.zeros((n, length))
    carry = np.zeros(n)
    for step in range(length):
        carry = carry * decay + magnitude[:, step]
        surge[:, step] = carry

    noise = rng.gamma(shape=25.0, scale=1.0 / 25.0, size=(n, length))
    requests = np.maximum(level[:, None] * (diurnal + surge) * noise, 0.0)

    features = requests[:, :, None]
    attributes = np.stack([category, tier], axis=1).astype(np.float64)
    lengths = np.full(n, length, dtype=np.int64)
    return TimeSeriesDataset(schema=schema, attributes=attributes,
                             features=features, lengths=lengths)
