"""Synthetic Google Cluster Usage Traces (GCUT) dataset.

Stands in for the 2011 Google cluster task-usage logs (Table 5).  Reproduced
properties:

- nine continuous resource-usage features per 5-minute aggregation window;
- one categorical attribute: the task end event type
  (EVICT / FAIL / FINISH / KILL), with a non-uniform marginal (Figure 8);
- **variable-length** series with a *bimodal* duration distribution -- the
  structure RNN baselines fail to capture in Figure 7;
- attribute/feature correlation exploited by the Figure-11 prediction task:
  FAIL tasks show rising memory usage, KILL tasks are cut short at high CPU,
  EVICT tasks show usage spikes, FINISH tasks are stable.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.data.schema import CategoricalSpec, ContinuousSpec, DataSchema

__all__ = ["GCUT_END_EVENT_TYPES", "GCUT_FEATURES",
           "make_gcut_schema", "generate_gcut"]

GCUT_END_EVENT_TYPES = ("EVICT", "FAIL", "FINISH", "KILL")

GCUT_FEATURES = (
    "cpu_rate", "maximum_cpu_rate", "sampled_cpu_usage",
    "canonical_memory_usage", "assigned_memory_usage",
    "maximum_memory_usage", "unmapped_page_cache", "total_page_cache",
    "local_disk_space_usage",
)

# Marginal of end event types (FINISH and KILL dominate, as in Figure 8).
_EVENT_WEIGHTS = np.array([0.08, 0.17, 0.45, 0.30])


def make_gcut_schema(max_length: int = 50) -> DataSchema:
    """Schema of Table 5 (97% of paper tasks fit within 50 windows)."""
    return DataSchema(
        attributes=(CategoricalSpec("end_event_type", GCUT_END_EVENT_TYPES),),
        features=tuple(ContinuousSpec(name, low=0.0, high=1.0)
                       for name in GCUT_FEATURES),
        max_length=max_length,
        collection_period="5 minutes",
    )


def _sample_lengths(event: np.ndarray, max_length: int,
                    rng: np.random.Generator) -> np.ndarray:
    """Bimodal task durations; KILL/EVICT skew short, FINISH skews long."""
    n = len(event)
    # Mixture of a short mode (~max/6) and a long mode (~max*0.7).
    short_mean = max(2.0, max_length / 6.0)
    long_mean = max_length * 0.7
    p_long = np.array([0.25, 0.45, 0.65, 0.30])[event]
    is_long = rng.random(n) < p_long
    lengths = np.where(
        is_long,
        rng.normal(long_mean, max_length * 0.08, size=n),
        rng.gamma(shape=3.0, scale=short_mean / 3.0, size=n),
    )
    return np.clip(np.round(lengths), 1, max_length).astype(np.int64)


def generate_gcut(n: int, rng: np.random.Generator,
                  max_length: int = 50) -> TimeSeriesDataset:
    """Generate ``n`` synthetic task usage traces."""
    schema = make_gcut_schema(max_length)
    event = rng.choice(len(GCUT_END_EVENT_TYPES), size=n,
                       p=_EVENT_WEIGHTS / _EVENT_WEIGHTS.sum())
    lengths = _sample_lengths(event, max_length, rng)

    t = np.arange(max_length)
    features = np.zeros((n, max_length, len(GCUT_FEATURES)))

    base_cpu = rng.beta(2.0, 5.0, size=n) * 0.6
    base_mem = rng.beta(2.0, 6.0, size=n) * 0.5
    progress = t[None, :] / np.maximum(lengths - 1, 1)[:, None]

    # Event-type-specific dynamics (this is what Figure 11 predictors learn).
    mem_trend = np.select(
        [event == 1, event == 3],            # FAIL, KILL
        [0.5, 0.15], default=0.02)[:, None] * progress
    cpu_spike = np.where(event == 0, 1.0, 0.0)[:, None] * (
        rng.random((n, max_length)) < 0.15) * rng.uniform(
            0.3, 0.6, size=(n, max_length))
    kill_cpu = np.where(event == 3, 0.2, 0.0)[:, None] * progress

    noise = 0.04
    cpu = np.clip(base_cpu[:, None] + cpu_spike + kill_cpu
                  + rng.normal(0, noise, (n, max_length)), 0, 1)
    mem = np.clip(base_mem[:, None] + mem_trend
                  + rng.normal(0, noise, (n, max_length)), 0, 1)

    features[:, :, 0] = cpu
    features[:, :, 1] = np.clip(cpu * rng.uniform(1.1, 1.5, (n, 1))
                                + rng.normal(0, noise, (n, max_length)), 0, 1)
    features[:, :, 2] = np.clip(cpu + rng.normal(0, 2 * noise,
                                                 (n, max_length)), 0, 1)
    features[:, :, 3] = mem
    features[:, :, 4] = np.clip(mem * rng.uniform(1.05, 1.3, (n, 1))
                                + 0.05, 0, 1)
    features[:, :, 5] = np.clip(np.maximum.accumulate(mem, axis=1)
                                + rng.normal(0, noise / 2,
                                             (n, max_length)), 0, 1)
    features[:, :, 6] = np.clip(rng.beta(1.5, 8.0, (n, 1))
                                + rng.normal(0, noise, (n, max_length)), 0, 1)
    features[:, :, 7] = np.clip(features[:, :, 6]
                                + rng.beta(2.0, 8.0, (n, 1)), 0, 1)
    features[:, :, 8] = np.clip(rng.beta(2.0, 10.0, (n, 1))
                                * (1.0 + 0.5 * progress)
                                + rng.normal(0, noise, (n, max_length)), 0, 1)

    attributes = event[:, None].astype(np.float64)
    return TimeSeriesDataset(schema=schema, attributes=attributes,
                             features=features, lengths=lengths)
