"""Synthetic Wikipedia Web Traffic (WWT) dataset.

Stands in for the Kaggle "Web Traffic Time Series Forecasting" data used in
the paper (Table 6).  Reproduced properties:

- one continuous feature: daily page views, fixed-length series;
- three categorical attributes: Wikipedia domain, access type, agent;
- a *short-period* (weekly, 7 days) and a *long-period* (annual, 365 days)
  autocorrelation pattern -- the two peaks of Figure 1;
- a very wide dynamic range of per-page view counts (lognormal levels), the
  property that triggers mode collapse without auto-normalisation (§4.1.3);
- attribute-dependent levels, so the attribute/feature joint distribution is
  non-trivial.

At benchmark scale the series length and long period shrink (e.g. length 112
with an "annual" period of 28) but the two-timescale structure is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.data.schema import CategoricalSpec, ContinuousSpec, DataSchema

__all__ = ["WWT_DOMAINS", "WWT_ACCESS_TYPES", "WWT_AGENTS",
           "make_wwt_schema", "generate_wwt"]

WWT_DOMAINS = (
    "commons.wikimedia.org", "de.wikipedia.org", "en.wikipedia.org",
    "es.wikipedia.org", "fr.wikipedia.org", "ja.wikipedia.org",
    "ru.wikipedia.org", "www.mediawiki.org", "zh.wikipedia.org",
)
WWT_ACCESS_TYPES = ("all-access", "desktop", "mobile-web")
WWT_AGENTS = ("all-agents", "spider")

# Non-uniform marginals matching the flavour of Figures 15-17.
_DOMAIN_WEIGHTS = np.array([1.5, 1.2, 3.0, 1.0, 1.1, 0.9, 0.8, 0.4, 0.6])
_ACCESS_WEIGHTS = np.array([2.0, 1.2, 0.8])
_AGENT_WEIGHTS = np.array([3.0, 1.0])

# Mean log-level offset per domain: en.wikipedia gets far more traffic.
_DOMAIN_LOG_LEVEL = np.array([0.5, 0.8, 2.5, 0.6, 0.7, 0.9, 0.4, -0.5, 0.0])
_ACCESS_LOG_LEVEL = np.array([0.7, 0.0, -0.3])
_AGENT_LOG_LEVEL = np.array([0.3, -1.0])


def make_wwt_schema(length: int = 550) -> DataSchema:
    """Schema of Table 6 (page-view counts are kept in log1p space bounds)."""
    return DataSchema(
        attributes=(
            CategoricalSpec("wikipedia_domain", WWT_DOMAINS),
            CategoricalSpec("access_type", WWT_ACCESS_TYPES),
            CategoricalSpec("agent", WWT_AGENTS),
        ),
        features=(ContinuousSpec("daily_views", low=0.0),),
        max_length=length,
        collection_period="daily",
    )


def generate_wwt(n: int, rng: np.random.Generator, length: int = 550,
                 short_period: int = 7, long_period: int = 365,
                 level_sigma: float = 1.6) -> TimeSeriesDataset:
    """Generate ``n`` synthetic page-view series.

    Args:
        n: Number of objects (pages).
        rng: Source of randomness.
        length: Series length (550 at paper scale).
        short_period: Weekly correlation period.
        long_period: Annual correlation period (shrink at bench scale).
        level_sigma: Stddev of the lognormal per-page level -- larger means a
            wider dynamic range across samples (the mode-collapse stressor).
    """
    schema = make_wwt_schema(length)
    domain = rng.choice(len(WWT_DOMAINS), size=n,
                        p=_DOMAIN_WEIGHTS / _DOMAIN_WEIGHTS.sum())
    access = rng.choice(len(WWT_ACCESS_TYPES), size=n,
                        p=_ACCESS_WEIGHTS / _ACCESS_WEIGHTS.sum())
    agent = rng.choice(len(WWT_AGENTS), size=n,
                       p=_AGENT_WEIGHTS / _AGENT_WEIGHTS.sum())

    t = np.arange(length)
    log_level = (3.0 + _DOMAIN_LOG_LEVEL[domain] + _ACCESS_LOG_LEVEL[access]
                 + _AGENT_LOG_LEVEL[agent]
                 + rng.normal(0.0, level_sigma, size=n))
    level = np.exp(log_level)

    weekly_amp = rng.uniform(0.25, 0.5, size=n)
    weekly_phase = rng.integers(0, short_period, size=n)
    annual_amp = rng.uniform(0.3, 0.6, size=n)
    annual_phase = rng.uniform(0, 2 * np.pi, size=n)

    # Weekly shape: weekday/weekend contrast rather than a pure sinusoid.
    weekday = (t[None, :] + weekly_phase[:, None]) % short_period
    weekly = np.where(weekday >= short_period - 2, -1.0, 0.5)
    annual = np.sin(2 * np.pi * t[None, :] / long_period
                    + annual_phase[:, None])

    shape = (1.0 + weekly_amp[:, None] * weekly
             + annual_amp[:, None] * annual)
    noise = rng.gamma(shape=20.0, scale=1.0 / 20.0, size=(n, length))
    views = np.maximum(level[:, None] * shape * noise, 0.0)

    features = views[:, :, None]
    attributes = np.stack([domain, access, agent], axis=1).astype(np.float64)
    lengths = np.full(n, length, dtype=np.int64)
    return TimeSeriesDataset(schema=schema, attributes=attributes,
                             features=features, lengths=lengths)
