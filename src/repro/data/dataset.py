"""The dataset abstraction of §3: objects = (attributes, feature time series).

A :class:`TimeSeriesDataset` stores *raw* (unencoded) values:

- ``attributes``: per-object attribute values. Categorical attributes are
  stored as integer category indices; continuous ones as floats.  Shape
  (n, m) float array (integer indices stored as floats).
- ``features``: per-object, per-step feature values, zero-padded to
  ``schema.max_length``.  Shape (n, T_max, K_raw) where K_raw counts raw
  columns (categorical features stored as a single index column).
- ``lengths``: the true length T^i of each series.

Encoding to the training representation (one-hot + normalisation + the
generation flags of §4.1.1) is done by :mod:`repro.data.encoding`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.data.schema import DataSchema, schema_from_dict, schema_to_dict

__all__ = ["TimeSeriesDataset", "generation_flags", "padding_mask"]


@dataclass
class TimeSeriesDataset:
    """A set of objects O_i = (A_i, R_i) under a shared schema."""

    schema: DataSchema
    attributes: np.ndarray
    features: np.ndarray
    lengths: np.ndarray

    def __post_init__(self):
        self.attributes = np.asarray(self.attributes, dtype=np.float64)
        self.features = np.asarray(self.features, dtype=np.float64)
        self.lengths = np.asarray(self.lengths, dtype=np.int64)
        n = len(self.attributes)
        if self.attributes.ndim != 2:
            raise ValueError("attributes must be 2-D (objects x fields)")
        if self.attributes.shape[1] != len(self.schema.attributes):
            raise ValueError(
                f"attributes have {self.attributes.shape[1]} columns, schema "
                f"declares {len(self.schema.attributes)} attribute fields")
        if self.features.shape[0] != n or self.lengths.shape[0] != n:
            raise ValueError("attributes, features, lengths must agree on n")
        if self.features.ndim != 3:
            raise ValueError("features must be 3-D (objects x time x fields)")
        if self.features.shape[1] != self.schema.max_length:
            raise ValueError(
                f"features padded to {self.features.shape[1]} steps, schema "
                f"says max_length={self.schema.max_length}")
        if self.features.shape[2] != len(self.schema.features):
            raise ValueError(
                f"features have {self.features.shape[2]} columns, schema "
                f"declares {len(self.schema.features)} feature fields")
        if (self.lengths < 1).any() or (self.lengths >
                                        self.schema.max_length).any():
            raise ValueError("lengths must be in [1, max_length]")
        # Enforce the paper's padding convention: zeros past the end.
        mask = padding_mask(self.lengths, self.schema.max_length)
        self.features = self.features * mask[:, :, None]

    def __len__(self) -> int:
        return self.features.shape[0]

    def __getitem__(self, index) -> "TimeSeriesDataset":
        """Subset of objects (integer-array or slice indexing)."""
        if isinstance(index, (int, np.integer)):
            index = [int(index)]
        return TimeSeriesDataset(
            schema=self.schema,
            attributes=self.attributes[index],
            features=self.features[index],
            lengths=self.lengths[index],
        )

    def subsample(self, n: int, rng: np.random.Generator) -> "TimeSeriesDataset":
        """Uniformly subsample ``n`` objects without replacement."""
        if n > len(self):
            raise ValueError(f"cannot subsample {n} of {len(self)} objects")
        idx = rng.choice(len(self), size=n, replace=False)
        return self[idx]

    def attribute_column(self, name: str) -> np.ndarray:
        """Raw values of one attribute across all objects."""
        names = [f.name for f in self.schema.attributes]
        return self.attributes[:, names.index(name)]

    def feature_column(self, name: str) -> np.ndarray:
        """Raw values of one feature, shape (n, T_max)."""
        names = [f.name for f in self.schema.features]
        return self.features[:, :, names.index(name)]

    def save(self, path) -> None:
        """Persist the dataset (arrays + schema) as an npz archive."""
        meta = json.dumps(schema_to_dict(self.schema)).encode("utf-8")
        np.savez(path, __schema__=np.frombuffer(meta, dtype=np.uint8),
                 attributes=self.attributes, features=self.features,
                 lengths=self.lengths)

    @classmethod
    def load(cls, path) -> "TimeSeriesDataset":
        """Restore a dataset saved by :meth:`save`."""
        with np.load(path) as archive:
            schema = schema_from_dict(json.loads(
                bytes(archive["__schema__"].tobytes()).decode("utf-8")))
            return cls(schema=schema, attributes=archive["attributes"],
                       features=archive["features"],
                       lengths=archive["lengths"])

    def concat(self, other: "TimeSeriesDataset") -> "TimeSeriesDataset":
        if other.schema is not self.schema and other.schema != self.schema:
            raise ValueError("cannot concat datasets with different schemas")
        return TimeSeriesDataset(
            schema=self.schema,
            attributes=np.concatenate([self.attributes, other.attributes]),
            features=np.concatenate([self.features, other.features]),
            lengths=np.concatenate([self.lengths, other.lengths]),
        )


def padding_mask(lengths: np.ndarray, max_length: int) -> np.ndarray:
    """Boolean-as-float mask, 1 for valid steps and 0 for padding."""
    steps = np.arange(max_length)
    return (steps[None, :] < np.asarray(lengths)[:, None]).astype(np.float64)


def generation_flags(lengths: np.ndarray, max_length: int) -> np.ndarray:
    """The per-step generation flags of §4.1.1, shape (n, T_max, 2).

    Within a series the flag is [1, 0]; at the final step it is [0, 1];
    after the end both channels are zero-padded (like the features).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    n = len(lengths)
    flags = np.zeros((n, max_length, 2), dtype=np.float64)
    mask = padding_mask(lengths, max_length).astype(bool)
    flags[:, :, 0][mask] = 1.0
    rows = np.arange(n)
    flags[rows, lengths - 1, 0] = 0.0
    flags[rows, lengths - 1, 1] = 1.0
    return flags
