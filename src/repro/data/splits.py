"""The evaluation split protocol of Figure 10.

Real data is split 50/50 into a training half A and a test half A'.  A
generative model is trained on A and asked for equally sized synthetic sets
B (train) and B' (test).  Downstream experiments then train predictors on A
or B and test on A' or B'.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import TimeSeriesDataset

__all__ = ["EvaluationSplit", "make_split", "synthesize_split"]


@dataclass
class EvaluationSplit:
    """Holds the four datasets of the Figure-10 protocol."""

    train_real: TimeSeriesDataset       # A
    test_real: TimeSeriesDataset        # A'
    train_synthetic: TimeSeriesDataset | None = None   # B
    test_synthetic: TimeSeriesDataset | None = None    # B'


def make_split(dataset: TimeSeriesDataset,
               rng: np.random.Generator) -> EvaluationSplit:
    """Shuffle and split real data into equal halves A / A'."""
    n = len(dataset)
    if n < 2:
        raise ValueError("need at least 2 objects to split")
    order = rng.permutation(n)
    half = n // 2
    return EvaluationSplit(train_real=dataset[order[:half]],
                           test_real=dataset[order[half:half * 2]])


def synthesize_split(split: EvaluationSplit, model,
                     rng: np.random.Generator) -> EvaluationSplit:
    """Fill in B and B' by sampling a trained generative model.

    ``model`` must expose ``generate(n, rng) -> TimeSeriesDataset`` (the
    interface shared by DoppelGANger and all baselines).
    """
    split.train_synthetic = model.generate(len(split.train_real), rng=rng)
    split.test_synthetic = model.generate(len(split.test_real), rng=rng)
    return split
