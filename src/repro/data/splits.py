"""The evaluation split protocol of Figure 10.

Real data is split 50/50 into a training half A and a test half A'.  A
generative model is trained on A and asked for equally sized synthetic sets
B (train) and B' (test).  Downstream experiments then train predictors on A
or B and test on A' or B'.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import TimeSeriesDataset

__all__ = ["EvaluationSplit", "make_split", "synthesize_split"]


@dataclass
class EvaluationSplit:
    """Holds the four datasets of the Figure-10 protocol."""

    train_real: TimeSeriesDataset       # A
    test_real: TimeSeriesDataset        # A'
    train_synthetic: TimeSeriesDataset | None = None   # B
    test_synthetic: TimeSeriesDataset | None = None    # B'


def make_split(dataset: TimeSeriesDataset,
               rng: np.random.Generator) -> EvaluationSplit:
    """Shuffle and split real data into two halves A / A'.

    For odd ``n`` the extra object goes to the test half A', so no object
    is silently dropped; the halves then differ in size by one.
    """
    n = len(dataset)
    if n < 2:
        raise ValueError("need at least 2 objects to split")
    order = rng.permutation(n)
    half = n // 2
    return EvaluationSplit(train_real=dataset[order[:half]],
                           test_real=dataset[order[half:]])


def synthesize_split(split: EvaluationSplit, model,
                     rng: np.random.Generator) -> EvaluationSplit:
    """Return a new split with B and B' sampled from a trained model.

    ``model`` must expose ``generate(n, rng) -> TimeSeriesDataset`` (the
    interface shared by DoppelGANger and all baselines).  The input split
    is not modified -- callers that cache an :class:`EvaluationSplit` can
    synthesize from several models without corrupting each other's halves.
    B and B' match the sizes of A and A' respectively (which differ by one
    when the real dataset had an odd number of objects).
    """
    return EvaluationSplit(
        train_real=split.train_real,
        test_real=split.test_real,
        train_synthetic=model.generate(len(split.train_real), rng=rng),
        test_synthetic=model.generate(len(split.test_real), rng=rng))
