"""Dataset abstraction (§3), encoding, splits, and the three simulators."""

from repro.data.dataset import TimeSeriesDataset, generation_flags, padding_mask
from repro.data.encoding import DataEncoder, EncodedDataset
from repro.data.resampling import aggregate_time
from repro.data.schema import (CategoricalSpec, ContinuousSpec, DataSchema,
                               FieldSpec)
from repro.data.splits import EvaluationSplit, make_split, synthesize_split

__all__ = [
    "TimeSeriesDataset", "generation_flags", "padding_mask",
    "DataEncoder", "EncodedDataset", "aggregate_time",
    "CategoricalSpec", "ContinuousSpec", "DataSchema", "FieldSpec",
    "EvaluationSplit", "make_split", "synthesize_split",
]
