"""Time aggregation of datasets (the paper's Appendix-A preprocessing).

The paper's MBA pipeline averages hourly measurements into 6-hour bins to
increase the number of valid objects.  :func:`aggregate_time` implements
that preprocessing generically: it merges every ``factor`` consecutive
steps into one, with a configurable aggregation per continuous feature
(categorical features take the first value of each bin).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TimeSeriesDataset, padding_mask
from repro.data.schema import DataSchema

__all__ = ["aggregate_time"]

_AGGREGATIONS = ("mean", "sum", "max")


def aggregate_time(dataset: TimeSeriesDataset, factor: int,
                   how: str = "mean") -> TimeSeriesDataset:
    """Merge every ``factor`` consecutive time steps into one.

    Args:
        dataset: The source dataset.
        factor: Number of original steps per aggregated bin (>= 1).
        how: Aggregation for continuous features over each bin's *valid*
            steps ("mean", "sum", or "max").  Categorical features take
            the bin's first valid value.

    Returns:
        A new dataset whose schema has ``max_length = ceil(T / factor)``
        and whose lengths are ``ceil(length / factor)``.  A trailing
        partial bin aggregates only the steps it covers.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if how not in _AGGREGATIONS:
        raise ValueError(f"how must be one of {_AGGREGATIONS}")
    if factor == 1:
        return dataset

    n = len(dataset)
    t_old = dataset.schema.max_length
    t_new = -(-t_old // factor)  # ceil division
    pad_to = t_new * factor
    mask = np.zeros((n, pad_to))
    mask[:, :t_old] = padding_mask(dataset.lengths, t_old)
    binned_mask = mask.reshape(n, t_new, factor)
    counts = binned_mask.sum(axis=2)  # valid steps per bin

    new_features = np.zeros((n, t_new, len(dataset.schema.features)))
    for j, spec in enumerate(dataset.schema.features):
        column = np.zeros((n, pad_to))
        column[:, :t_old] = dataset.features[:, :, j]
        binned = column.reshape(n, t_new, factor)
        if spec.is_categorical:
            # First valid value of each bin.
            first_idx = binned_mask.argmax(axis=2)
            rows = np.arange(n)[:, None]
            bins = np.arange(t_new)[None, :]
            new_features[:, :, j] = binned[rows, bins, first_idx]
            continue
        if how == "mean":
            with np.errstate(invalid="ignore"):
                values = (binned * binned_mask).sum(axis=2) / \
                    np.maximum(counts, 1)
        elif how == "sum":
            values = (binned * binned_mask).sum(axis=2)
        else:
            values = np.where(binned_mask > 0, binned, -np.inf).max(axis=2)
            values[counts == 0] = 0.0
        new_features[:, :, j] = values
    new_features[counts == 0] = 0.0

    new_lengths = -(-dataset.lengths // factor)
    period = dataset.schema.collection_period
    schema = DataSchema(
        attributes=dataset.schema.attributes,
        features=dataset.schema.features,
        max_length=t_new,
        collection_period=(f"{factor} x {period}" if period else None),
    )
    return TimeSeriesDataset(schema=schema, attributes=dataset.attributes,
                             features=new_features, lengths=new_lengths)
