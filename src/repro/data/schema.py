"""Dataset schema declarations (§3.1 of the paper).

DoppelGANger needs to know, for every attribute and feature, its
dimensionality and whether it is categorical or continuous; plus optional
collection metadata (the time scale the series was sampled at).  This module
provides those declarations; Tables 5-7 of the paper are expressed with them
in :mod:`repro.data.simulators`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["CategoricalSpec", "ContinuousSpec", "FieldSpec", "DataSchema",
           "schema_to_dict", "schema_from_dict"]


@dataclass(frozen=True)
class CategoricalSpec:
    """A categorical field taking one of ``categories`` values."""

    name: str
    categories: tuple[str, ...]

    def __post_init__(self):
        if len(self.categories) < 2:
            raise ValueError(f"categorical field {self.name!r} needs >= 2 "
                             "categories")
        if len(set(self.categories)) != len(self.categories):
            raise ValueError(f"categorical field {self.name!r} has duplicate "
                             "categories")
        object.__setattr__(self, "categories", tuple(self.categories))

    @property
    def dimension(self) -> int:
        return len(self.categories)

    @property
    def is_categorical(self) -> bool:
        return True

    def index_of(self, category: str) -> int:
        try:
            return self.categories.index(category)
        except ValueError:
            raise KeyError(
                f"{category!r} is not a category of field {self.name!r}"
            ) from None


@dataclass(frozen=True)
class ContinuousSpec:
    """A scalar continuous field, optionally with known bounds.

    ``normalization`` chooses the target range features are scaled to before
    training ("zero_one" -> sigmoid output, "minus_one_one" -> tanh output),
    matching Appendix B of the paper.

    ``log_transform`` encodes the field as ``log1p(x)`` before
    normalisation (and decodes with ``expm1``).  Heavy-tailed network
    measurements (byte counters, page views) squeeze almost all encoded
    mass near 0 under linear scaling, which starves the GAN gradient;
    log encoding is the standard practitioner's remedy.
    """

    name: str
    low: float | None = None
    high: float | None = None
    normalization: str = "zero_one"
    log_transform: bool = False

    def __post_init__(self):
        if self.normalization not in ("zero_one", "minus_one_one"):
            raise ValueError("normalization must be 'zero_one' or "
                             "'minus_one_one'")
        if (self.low is not None and self.high is not None
                and self.low >= self.high):
            raise ValueError(f"field {self.name!r}: low must be < high")
        if self.log_transform and self.low is not None and self.low < 0:
            raise ValueError(f"field {self.name!r}: log_transform requires "
                             "non-negative values")

    @property
    def dimension(self) -> int:
        return 1

    @property
    def is_categorical(self) -> bool:
        return False


FieldSpec = CategoricalSpec | ContinuousSpec


@dataclass(frozen=True)
class DataSchema:
    """Schema of one dataset: attribute fields + feature fields.

    Attributes are per-object metadata (m fields); features are the per-time
    -step measurements (K fields).  ``max_length`` is T^i's upper bound;
    ``collection_period`` documents the sampling timescale (optional input of
    §3.1, used to pick the batching parameter S).
    """

    attributes: tuple[FieldSpec, ...]
    features: tuple[FieldSpec, ...]
    max_length: int
    collection_period: str | None = None

    def __post_init__(self):
        if not self.features:
            raise ValueError("schema needs at least one feature field")
        if self.max_length < 1:
            raise ValueError("max_length must be >= 1")
        names = [f.name for f in self.attributes] + [f.name for f in
                                                     self.features]
        if len(set(names)) != len(names):
            raise ValueError("attribute/feature names must be unique")
        object.__setattr__(self, "attributes", tuple(self.attributes))
        object.__setattr__(self, "features", tuple(self.features))

    @property
    def attribute_dimension(self) -> int:
        """Total encoded width of the attribute vector (one-hot expanded)."""
        return sum(f.dimension for f in self.attributes)

    @property
    def feature_dimension(self) -> int:
        """Total encoded width of one time step (one-hot expanded)."""
        return sum(f.dimension for f in self.features)

    @property
    def continuous_feature_count(self) -> int:
        return sum(1 for f in self.features if not f.is_categorical)

    def attribute(self, name: str) -> FieldSpec:
        for f in self.attributes:
            if f.name == name:
                return f
        raise KeyError(f"no attribute named {name!r}")

    def feature(self, name: str) -> FieldSpec:
        for f in self.features:
            if f.name == name:
                return f
        raise KeyError(f"no feature named {name!r}")

    def attribute_slices(self) -> dict[str, slice]:
        """Column ranges of each attribute in the encoded attribute matrix."""
        return _slices(self.attributes)

    def feature_slices(self) -> dict[str, slice]:
        """Column ranges of each feature in the encoded feature tensor."""
        return _slices(self.features)


def schema_to_dict(schema: DataSchema) -> dict:
    """JSON-serialisable form of a schema (for model save/load)."""
    def field_dict(f: FieldSpec) -> dict:
        if f.is_categorical:
            return {"kind": "categorical", "name": f.name,
                    "categories": list(f.categories)}
        return {"kind": "continuous", "name": f.name, "low": f.low,
                "high": f.high, "normalization": f.normalization,
                "log_transform": f.log_transform}

    return {
        "attributes": [field_dict(f) for f in schema.attributes],
        "features": [field_dict(f) for f in schema.features],
        "max_length": schema.max_length,
        "collection_period": schema.collection_period,
    }


def schema_from_dict(data: dict) -> DataSchema:
    """Inverse of :func:`schema_to_dict`."""
    def field_from(d: dict) -> FieldSpec:
        if d["kind"] == "categorical":
            return CategoricalSpec(d["name"], tuple(d["categories"]))
        return ContinuousSpec(d["name"], low=d["low"], high=d["high"],
                              normalization=d["normalization"],
                              log_transform=d.get("log_transform", False))

    return DataSchema(
        attributes=tuple(field_from(d) for d in data["attributes"]),
        features=tuple(field_from(d) for d in data["features"]),
        max_length=int(data["max_length"]),
        collection_period=data.get("collection_period"),
    )


def _slices(fields: Sequence[FieldSpec]) -> dict[str, slice]:
    out: dict[str, slice] = {}
    offset = 0
    for f in fields:
        out[f.name] = slice(offset, offset + f.dimension)
        offset += f.dimension
    return out
