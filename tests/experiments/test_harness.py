"""Tests for the benchmark harness (caching, table printers)."""

import numpy as np
import pytest

from repro.experiments import (BenchScale, clear_cache, get_dataset,
                               get_model, print_series, print_table)

TINY = BenchScale(n_samples=30, gcut_length=8, dg_iterations=4,
                  baseline_iterations=4, hidden_width=12, rnn_units=8,
                  batch_size=8)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestCaching:
    def test_dataset_cached(self):
        a = get_dataset("gcut", TINY)
        b = get_dataset("gcut", TINY)
        assert a is b

    def test_model_cached_by_key(self):
        a = get_model("gcut", "hmm", TINY)
        b = get_model("gcut", "hmm", TINY)
        assert a is b

    def test_variants_are_distinct(self):
        a = get_model("gcut", "dg", TINY)
        b = get_model("gcut", "dg", TINY, cache_tag="variant",
                      use_auxiliary_discriminator=False)
        assert a is not b
        assert b.aux_discriminator is None

    def test_trained_model_generates(self):
        model = get_model("gcut", "dg", TINY)
        syn = model.generate(5, rng=np.random.default_rng(0))
        assert len(syn) == 5


class TestPrinters:
    def test_print_table_alignment(self, capsys):
        print_table("My Table", ["name", "value"],
                    [["alpha", 0.123456], ["b", 42]])
        out = capsys.readouterr().out
        assert "My Table" in out
        assert "0.123" in out
        assert "42" in out

    def test_print_series(self, capsys):
        print_series("Curve", "x", [1, 2], {"y": [0.1, 0.2]})
        out = capsys.readouterr().out
        assert "Curve" in out
        assert "0.200" in out

    def test_print_table_empty_rows(self, capsys):
        print_table("Empty", ["a"], [])
        assert "Empty" in capsys.readouterr().out


class TestGetSplit:
    def test_split_has_all_four_quadrants(self):
        from repro.experiments import get_split
        split = get_split("gcut", "hmm", TINY)
        assert len(split.train_real) == len(split.train_synthetic)
        assert len(split.test_real) == len(split.test_synthetic)

    def test_split_cached(self):
        from repro.experiments import get_split
        a = get_split("gcut", "hmm", TINY)
        b = get_split("gcut", "hmm", TINY)
        assert a is b

    def test_model_trained_on_train_half_only(self):
        """The generative model inside a split must be fitted on A, not on
        the full dataset (the Figure-10 protocol)."""
        from repro.experiments import get_dataset, get_model, get_split
        split = get_split("gcut", "hmm", TINY)
        model = get_model("gcut", "hmm", TINY,
                          train_data=split.train_real)
        # The HMM's attribute sampler stores its training rows verbatim.
        assert len(model.attribute_sampler._rows) == len(split.train_real)
