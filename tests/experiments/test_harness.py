"""Tests for the benchmark harness (caching, table printers)."""

import numpy as np
import pytest

from repro.experiments import (BenchScale, clear_cache, get_dataset,
                               get_model, print_series, print_table)

TINY = BenchScale(n_samples=30, gcut_length=8, dg_iterations=4,
                  baseline_iterations=4, hidden_width=12, rnn_units=8,
                  batch_size=8)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestCaching:
    def test_dataset_cached(self):
        a = get_dataset("gcut", TINY)
        b = get_dataset("gcut", TINY)
        assert a is b

    def test_model_cached_by_key(self):
        a = get_model("gcut", "hmm", TINY)
        b = get_model("gcut", "hmm", TINY)
        assert a is b

    def test_variants_are_distinct(self):
        a = get_model("gcut", "dg", TINY)
        b = get_model("gcut", "dg", TINY, cache_tag="variant",
                      use_auxiliary_discriminator=False)
        assert a is not b
        assert b.aux_discriminator is None

    def test_trained_model_generates(self):
        model = get_model("gcut", "dg", TINY)
        syn = model.generate(5, rng=np.random.default_rng(0))
        assert len(syn) == 5


class TestPrinters:
    def test_print_table_alignment(self, capsys):
        print_table("My Table", ["name", "value"],
                    [["alpha", 0.123456], ["b", 42]])
        out = capsys.readouterr().out
        assert "My Table" in out
        assert "0.123" in out
        assert "42" in out

    def test_print_series(self, capsys):
        print_series("Curve", "x", [1, 2], {"y": [0.1, 0.2]})
        out = capsys.readouterr().out
        assert "Curve" in out
        assert "0.200" in out

    def test_print_table_empty_rows(self, capsys):
        print_table("Empty", ["a"], [])
        assert "Empty" in capsys.readouterr().out


class TestGetSplit:
    def test_split_has_all_four_quadrants(self):
        from repro.experiments import get_split
        split = get_split("gcut", "hmm", TINY)
        assert len(split.train_real) == len(split.train_synthetic)
        assert len(split.test_real) == len(split.test_synthetic)

    def test_split_cached(self):
        from repro.experiments import get_split
        a = get_split("gcut", "hmm", TINY)
        b = get_split("gcut", "hmm", TINY)
        assert a is b

    def test_model_trained_on_train_half_only(self):
        """The generative model inside a split must be fitted on A, not on
        the full dataset (the Figure-10 protocol)."""
        from repro.experiments import get_dataset, get_model, get_split
        split = get_split("gcut", "hmm", TINY)
        model = get_model("gcut", "hmm", TINY,
                          train_data=split.train_real)
        # The HMM's attribute sampler stores its training rows verbatim.
        assert len(model.attribute_sampler._rows) == len(split.train_real)


class TestLRUCache:
    def test_eviction_order(self):
        from repro.experiments.harness import LRUCache
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        _ = cache["a"]          # refresh "a"; "b" is now coldest
        cache["c"] = 3
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_set_maxsize_evicts(self):
        from repro.experiments.harness import LRUCache
        cache = LRUCache(4)
        for i in range(4):
            cache[i] = i
        cache.set_maxsize(2)
        assert len(cache) == 2 and 3 in cache and 0 not in cache

    def test_invalid_maxsize(self):
        from repro.experiments.harness import LRUCache
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_model_cache_bounded(self):
        """Long sweeps cannot grow the model cache without limit."""
        from repro.experiments import configure_cache, get_model
        from repro.experiments.harness import _MODELS
        configure_cache(max_models=2)
        try:
            get_model("gcut", "hmm", TINY)
            get_model("gcut", "ar", TINY)
            get_model("gcut", "naive_gan", TINY)
            assert len(_MODELS) == 2
            # Oldest (hmm) evicted: a re-request retrains a new object.
            survivors = {key[1] for key in _MODELS.keys()}
            assert survivors == {"ar", "naive_gan"}
        finally:
            configure_cache(max_models=16)


class TestSweepIsolation:
    def test_one_failing_model_does_not_abort_sweep(self, monkeypatch,
                                                    capsys):
        """Acceptance criterion: a sweep where one model raises finishes
        the remaining models and reports the failure in a summary table."""
        from unittest import mock
        from repro.baselines import HMMBaseline
        from repro.experiments import get_failures, run_sweep

        monkeypatch.setattr(HMMBaseline, "fit",
                            mock.Mock(side_effect=RuntimeError("boom")))
        result = run_sweep(["gcut"], ["hmm", "ar", "naive_gan"], TINY)
        assert set(result.models) == {("gcut", "ar"),
                                      ("gcut", "naive_gan")}
        assert result.failed_keys == [("gcut", "hmm")]
        record = result.failures[0]
        assert record.exception_type == "RuntimeError"
        assert record.message == "boom"
        assert get_failures()[-1] is record
        out = capsys.readouterr().out
        assert "Sweep failures" in out and "RuntimeError" in out

    def test_isolate_false_restores_fail_fast(self, monkeypatch):
        from unittest import mock
        from repro.baselines import HMMBaseline
        from repro.experiments import run_sweep

        monkeypatch.setattr(HMMBaseline, "fit",
                            mock.Mock(side_effect=RuntimeError("boom")))
        with pytest.raises(RuntimeError, match="boom"):
            run_sweep(["gcut"], ["hmm"], TINY, isolate=False)

    def test_training_diverged_carries_iteration_and_retries(self,
                                                             monkeypatch):
        """A diverging DoppelGANger surfaces its partial history in the
        failure record."""
        from repro.experiments import run_sweep
        from repro.resilience import faults

        monkeypatch.setattr(
            "repro.core.doppelganger.DoppelGANger.fit",
            lambda self, data, **kw: (_ for _ in ()).throw(
                RuntimeError("synthetic divergence")))
        result = run_sweep(["gcut"], ["dg"], TINY)
        assert result.failures[0].model == "dg"
        assert result.failures[0].exception_type == "RuntimeError"

    def test_clear_cache_drops_failures(self, monkeypatch):
        from unittest import mock
        from repro.baselines import HMMBaseline
        from repro.experiments import clear_cache, get_failures, run_sweep

        monkeypatch.setattr(HMMBaseline, "fit",
                            mock.Mock(side_effect=RuntimeError("boom")))
        run_sweep(["gcut"], ["hmm"], TINY)
        assert get_failures()
        clear_cache()
        assert get_failures() == []


class TestElapsedTiming:
    def test_failure_elapsed_non_negative_under_clock_step(self,
                                                           monkeypatch):
        """Harness timing uses the monotonic clock: an NTP-style wall
        clock step backwards mid-training must not record a negative
        elapsed time in the failure record."""
        import itertools
        import time
        import types
        from unittest import mock

        import repro.experiments.harness as harness
        from repro.baselines import HMMBaseline
        from repro.experiments import get_failures

        ticks = itertools.count(100.0, 0.5)         # well-behaved
        wall = itertools.count(5000.0, -60.0)       # steps backwards
        fake = types.SimpleNamespace(
            monotonic=lambda: next(ticks),
            time=lambda: next(wall),
            sleep=time.sleep, perf_counter=time.perf_counter)
        monkeypatch.setattr(harness, "time", fake)
        monkeypatch.setattr(HMMBaseline, "fit",
                            mock.Mock(side_effect=RuntimeError("boom")))
        with pytest.raises(RuntimeError, match="boom"):
            get_model("gcut", "hmm", TINY, cache_tag="clockstep")
        record = get_failures()[-1]
        assert record.elapsed >= 0, (
            f"elapsed went negative ({record.elapsed}); harness timing "
            f"must not depend on the wall clock")
