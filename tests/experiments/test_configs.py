"""Tests for benchmark-scale configuration helpers."""

import numpy as np
import pytest

from repro.experiments import (BENCH, BenchScale, baseline_kwargs,
                               make_dataset, make_dg_config)


class TestMakeDataset:
    @pytest.mark.parametrize("name", ["wwt", "mba", "gcut"])
    def test_builds_each_dataset(self, name):
        scale = BenchScale(n_samples=20)
        ds = make_dataset(name, scale)
        assert len(ds) == 20

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_dataset("imagenet")

    def test_seed_reproducible(self):
        scale = BenchScale(n_samples=10)
        a = make_dataset("gcut", scale, seed=5)
        b = make_dataset("gcut", scale, seed=5)
        assert np.array_equal(a.features, b.features)

    def test_n_override(self):
        ds = make_dataset("wwt", BenchScale(n_samples=50), n=7)
        assert len(ds) == 7


class TestMakeDGConfig:
    @pytest.mark.parametrize("name", ["wwt", "mba", "gcut"])
    def test_sample_len_divides_length(self, name):
        scale = BenchScale()
        config = make_dg_config(name, scale)
        lengths = {"wwt": scale.wwt_length, "mba": scale.mba_length,
                   "gcut": scale.gcut_length}
        assert lengths[name] % config.sample_len == 0

    def test_overrides_apply(self):
        config = make_dg_config("gcut", iterations=7,
                                aux_discriminator_weight=2.5)
        assert config.iterations == 7
        assert config.aux_discriminator_weight == 2.5

    def test_bad_override_caught(self):
        with pytest.raises(ValueError, match="divide"):
            make_dg_config("gcut", sample_len=7)


class TestBaselineKwargs:
    @pytest.mark.parametrize("name", ["hmm", "ar", "rnn", "naive_gan"])
    def test_known_baselines(self, name):
        assert isinstance(baseline_kwargs(name), dict)

    def test_unknown_baseline_raises(self):
        with pytest.raises(ValueError, match="unknown baseline"):
            baseline_kwargs("diffusion")

    def test_kwargs_construct_models(self):
        from repro.baselines import (ARBaseline, HMMBaseline,
                                     NaiveGANBaseline, RNNBaseline)
        classes = {"hmm": HMMBaseline, "ar": ARBaseline, "rnn": RNNBaseline,
                   "naive_gan": NaiveGANBaseline}
        for name, cls in classes.items():
            cls(**baseline_kwargs(name))
