"""Tests for the fidelity report (model card)."""

import numpy as np
import pytest

from repro.experiments.report import (FidelityReport, fidelity_report,
                                      render_markdown)


class TestFidelityReport:
    def test_perfect_copy_scores_well(self, tiny_gcut):
        half = len(tiny_gcut) // 2
        train, holdout = tiny_gcut[np.arange(half)], \
            tiny_gcut[np.arange(half, len(tiny_gcut))]
        report = fidelity_report(train, train, holdout=holdout)
        assert all(v < 1e-12 for v in report.acf_mse.values()
                   if np.isfinite(v))
        assert report.length_w1 == 0.0
        assert all(v == 0.0 for v in report.attribute_jsd.values())
        # Copying IS memorization: the check must fire.
        assert report.memorization_suspected

    def test_independent_real_data_not_flagged(self, tiny_gcut):
        from repro.data.simulators import generate_gcut
        other = generate_gcut(len(tiny_gcut), np.random.default_rng(55),
                              max_length=tiny_gcut.schema.max_length)
        half = len(tiny_gcut) // 2
        train = tiny_gcut[np.arange(half)]
        holdout = tiny_gcut[np.arange(half, len(tiny_gcut))]
        report = fidelity_report(train, other, holdout=holdout)
        assert not report.memorization_suspected
        assert not report.mode_collapse_suspected

    def test_mode_collapse_detected(self, tiny_wwt):
        collapsed = tiny_wwt[np.zeros(40, dtype=int)]  # one sample repeated
        report = fidelity_report(tiny_wwt, collapsed)
        assert report.mode_collapse_suspected

    def test_schema_mismatch_rejected(self, tiny_wwt, tiny_gcut):
        with pytest.raises(ValueError, match="schemas differ"):
            fidelity_report(tiny_wwt, tiny_gcut)

    def test_fixed_length_dataset_skips_length_metric(self, tiny_wwt):
        report = fidelity_report(tiny_wwt, tiny_wwt)
        assert report.length_w1 is None

    def test_works_on_generated_data(self, trained_dg_gcut, tiny_gcut):
        syn = trained_dg_gcut.generate(40, rng=np.random.default_rng(0))
        report = fidelity_report(tiny_gcut, syn)
        assert set(report.acf_mse) == {f.name for f in
                                       tiny_gcut.schema.features}
        assert "end_event_type" in report.attribute_jsd


class TestRenderMarkdown:
    def test_contains_sections(self, tiny_gcut):
        half = len(tiny_gcut) // 2
        report = fidelity_report(tiny_gcut[np.arange(half)],
                                 tiny_gcut[np.arange(half, len(tiny_gcut))],
                                 holdout=tiny_gcut[np.arange(half)])
        text = render_markdown(report, title="GCUT card")
        assert "# GCUT card" in text
        assert "Temporal correlations" in text
        assert "Attribute marginals" in text
        assert "Memorization" in text

    def test_handles_empty_report(self):
        text = render_markdown(FidelityReport(n_real=0, n_synthetic=0))
        assert "Fidelity report" in text


class TestCrossCorrelationSection:
    def test_included_for_multifeature_data(self, tiny_gcut):
        report = fidelity_report(tiny_gcut, tiny_gcut)
        assert report.cross_correlation == 0.0
        assert "Cross-feature correlations" in render_markdown(report)

    def test_absent_for_single_feature(self, tiny_wwt):
        report = fidelity_report(tiny_wwt, tiny_wwt)
        assert report.cross_correlation is None


class TestFailureSummary:
    def test_renders_failures_as_table(self):
        from repro.experiments.report import failure_summary
        from repro.resilience import FailureRecord
        failures = [FailureRecord(dataset="wwt", model="dg",
                                  exception_type="TrainingDiverged",
                                  message="retry budget exhausted",
                                  iteration=123, retries=3)]
        text = failure_summary(failures)
        assert "| wwt | dg | TrainingDiverged | 123 | 3 |" in text
        assert "1 of the sweep's models failed" in text

    def test_empty_failures_render_empty(self):
        from repro.experiments.report import failure_summary
        assert failure_summary([]) == ""

    def test_long_messages_truncated(self):
        from repro.experiments.report import failure_summary
        from repro.resilience import FailureRecord
        record = FailureRecord(dataset="d", model="m",
                               exception_type="E", message="x" * 200)
        assert "x" * 200 not in failure_summary([record])
