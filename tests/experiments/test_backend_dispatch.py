"""Harness dispatch through the backend registry: aliases, cache keys."""

import numpy as np
import pytest

from repro.backends import UnknownBackend
from repro.backends.dlgan import DLGAN
from repro.experiments import clear_cache, get_model
from repro.experiments.configs import TINY, make_dataset


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestBackendDispatch:
    def test_alias_shares_cache_entry(self):
        """``dg`` and ``doppelganger`` are one model, trained once."""
        a = get_model("gcut", "dg", TINY)
        b = get_model("gcut", "doppelganger", TINY)
        assert a is b

    def test_dlgan_trains_through_harness(self):
        model = get_model("gcut", "dlgan", TINY)
        assert isinstance(model, DLGAN)
        assert len(model.generate(4, rng=np.random.default_rng(0))) == 4

    def test_unknown_model_name_raises(self):
        with pytest.raises(UnknownBackend, match="no_such_model"):
            get_model("gcut", "no_such_model", TINY)

    def test_new_datasets_reach_every_backend(self):
        for dataset in ("flashcrowd", "regime"):
            model = get_model(dataset, "hmm", TINY)
            assert len(model.generate(3,
                                      rng=np.random.default_rng(1))) == 3


class TestFingerprintCacheKey:
    def test_equal_train_data_shares_entry(self):
        """Cache keys use content fingerprints, not object identity --
        two regenerations of the same dataset hit one entry."""
        first = make_dataset("gcut", TINY, seed=5)
        second = make_dataset("gcut", TINY, seed=5)
        assert first is not second
        a = get_model("gcut", "hmm", TINY, train_data=first)
        b = get_model("gcut", "hmm", TINY, train_data=second)
        assert a is b

    def test_different_train_data_gets_distinct_entry(self):
        a = get_model("gcut", "hmm", TINY,
                      train_data=make_dataset("gcut", TINY, seed=5))
        b = get_model("gcut", "hmm", TINY,
                      train_data=make_dataset("gcut", TINY, seed=6))
        assert a is not b
