"""Tests for distributional summaries (lengths, histograms, diversity)."""

import numpy as np
import pytest

from repro.metrics import (attribute_histogram, diversity_score,
                           empirical_cdf, length_histogram, mode_coverage,
                           per_object_total)


class TestLengthHistogram:
    def test_counts(self, tiny_gcut):
        hist = length_histogram(tiny_gcut)
        assert hist.sum() == len(tiny_gcut)
        assert len(hist) == tiny_gcut.schema.max_length
        for length in range(1, tiny_gcut.schema.max_length + 1):
            assert hist[length - 1] == (tiny_gcut.lengths == length).sum()


class TestAttributeHistogram:
    def test_counts(self, tiny_gcut):
        hist = attribute_histogram(tiny_gcut, "end_event_type")
        assert hist.sum() == len(tiny_gcut)
        assert len(hist) == 4

    def test_continuous_attribute_rejected(self, tiny_gcut):
        with pytest.raises(KeyError):
            attribute_histogram(tiny_gcut, "not_an_attribute")


class TestPerObjectTotal:
    def test_sums_valid_steps_only(self, tiny_gcut):
        totals = per_object_total(tiny_gcut, "cpu_rate")
        i = 0
        expected = tiny_gcut.features[i, :tiny_gcut.lengths[i], 0].sum()
        assert totals[i] == pytest.approx(expected)


class TestEmpiricalCDF:
    def test_monotone_and_bounded(self):
        rng = np.random.default_rng(0)
        grid, cdf = empirical_cdf(rng.normal(size=100))
        assert (np.diff(cdf) >= 0).all()
        assert cdf[-1] == 1.0

    def test_custom_grid(self):
        values = np.array([1.0, 2.0, 3.0])
        grid, cdf = empirical_cdf(values, grid=np.array([0.0, 2.0, 10.0]))
        assert np.allclose(cdf, [0.0, 2 / 3, 1.0])


class TestDiversityScore:
    def test_identical_samples_score_zero(self):
        rng = np.random.default_rng(0)
        one = rng.normal(size=(1, 50))
        collapsed = np.repeat(one, 20, axis=0)
        assert diversity_score(collapsed) == pytest.approx(0.0)

    def test_wide_range_scores_high(self):
        rng = np.random.default_rng(0)
        levels = np.exp(rng.normal(0, 2, size=(50, 1)))
        varied = levels * (1 + 0.01 * rng.normal(size=(50, 30)))
        assert diversity_score(varied) > 0.5

    def test_detects_mode_collapse_ordering(self):
        """A collapsed sample set must score lower than a diverse one."""
        rng = np.random.default_rng(1)
        diverse = np.exp(rng.normal(0, 1.5, size=(40, 1))) + \
            rng.normal(0, 0.1, size=(40, 25))
        collapsed = 1.0 + rng.normal(0, 0.1, size=(40, 25))
        assert diversity_score(collapsed) < diversity_score(diverse)


class TestModeCoverage:
    def test_full_coverage(self):
        real = np.array([0, 1, 2, 3] * 50)
        assert mode_coverage(real, real, 4) == 4

    def test_dropped_mode_detected(self):
        real = np.array([0, 1, 2, 3] * 50)
        syn = np.array([0, 1, 2] * 50)
        assert mode_coverage(real, syn, 4) == 3

    def test_unused_real_category_counts_as_covered(self):
        real = np.array([0, 1] * 50)
        syn = np.array([0, 1] * 50)
        assert mode_coverage(real, syn, 3) == 3
