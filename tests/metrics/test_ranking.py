"""Tests for Spearman rank correlation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import rankdata, spearman_rank_correlation


class TestRankdata:
    def test_simple(self):
        assert np.array_equal(rankdata(np.array([30.0, 10.0, 20.0])),
                              [3.0, 1.0, 2.0])

    def test_ties_get_average_rank(self):
        ranks = rankdata(np.array([1.0, 2.0, 2.0, 3.0]))
        assert np.array_equal(ranks, [1.0, 2.5, 2.5, 4.0])

    def test_matches_scipy(self):
        from scipy.stats import rankdata as scipy_rank
        rng = np.random.default_rng(0)
        x = rng.integers(0, 5, 30).astype(float)
        assert np.allclose(rankdata(x), scipy_rank(x))


class TestSpearman:
    def test_perfect_correlation(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(a, a * 10 + 3) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(a, -a) == pytest.approx(-1.0)

    def test_monotone_transform_invariant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=20)
        assert spearman_rank_correlation(a, np.exp(a)) == pytest.approx(1.0)

    def test_matches_scipy(self):
        from scipy.stats import spearmanr
        rng = np.random.default_rng(1)
        a = rng.normal(size=25)
        b = rng.normal(size=25)
        assert spearman_rank_correlation(a, b) == pytest.approx(
            spearmanr(a, b).statistic, abs=1e-12)

    def test_matches_scipy_with_ties(self):
        from scipy.stats import spearmanr
        rng = np.random.default_rng(2)
        a = rng.integers(0, 4, 30).astype(float)
        b = rng.integers(0, 4, 30).astype(float)
        assert spearman_rank_correlation(a, b) == pytest.approx(
            spearmanr(a, b).statistic, abs=1e-12)

    def test_constant_input_returns_zero(self):
        assert spearman_rank_correlation(np.ones(5),
                                         np.arange(5.0)) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            spearman_rank_correlation(np.ones(1), np.ones(1))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=15,
                    unique=True))
    def test_bounds_property(self, values):
        rng = np.random.default_rng(0)
        a = np.array(values)
        b = rng.permutation(a)
        rho = spearman_rank_correlation(a, b)
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9
