"""Tests for Wasserstein-1 and JSD."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (categorical_jsd, jensen_shannon_divergence,
                           total_variation, wasserstein1)


class TestWasserstein1:
    def test_identical_samples_zero(self):
        a = np.array([1.0, 2.0, 3.0])
        assert wasserstein1(a, a.copy()) == 0.0

    def test_shifted_point_masses(self):
        assert wasserstein1(np.zeros(10), np.full(10, 2.5)) == \
            pytest.approx(2.5)

    def test_shifted_uniforms(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(0, 1, 20000)
        b = rng.uniform(3, 4, 20000)
        assert wasserstein1(a, b) == pytest.approx(3.0, abs=0.02)

    def test_matches_scipy(self):
        from scipy.stats import wasserstein_distance
        rng = np.random.default_rng(1)
        a = rng.normal(size=500)
        b = rng.normal(loc=1.0, scale=2.0, size=300)
        assert wasserstein1(a, b) == pytest.approx(
            wasserstein_distance(a, b), abs=1e-9)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            wasserstein1(np.array([]), np.array([1.0]))

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=100), rng.normal(size=150)
        assert wasserstein1(a, b) == pytest.approx(wasserstein1(b, a))


class TestJSD:
    def test_identical_is_zero(self):
        p = np.array([0.2, 0.3, 0.5])
        assert jensen_shannon_divergence(p, p) == pytest.approx(0.0)

    def test_disjoint_is_one(self):
        assert jensen_shannon_divergence(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_unnormalised_counts_accepted(self):
        a = jensen_shannon_divergence(np.array([2.0, 6.0]),
                                      np.array([30.0, 10.0]))
        b = jensen_shannon_divergence(np.array([0.25, 0.75]),
                                      np.array([0.75, 0.25]))
        assert a == pytest.approx(b)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="support"):
            jensen_shannon_divergence(np.ones(2), np.ones(3))

    def test_zero_mass_raises(self):
        with pytest.raises(ValueError, match="positive mass"):
            jensen_shannon_divergence(np.zeros(2), np.ones(2))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.01, 10), min_size=2, max_size=8),
           st.lists(st.floats(0.01, 10), min_size=2, max_size=8))
    def test_bounds_and_symmetry_property(self, p, q):
        n = min(len(p), len(q))
        p, q = np.array(p[:n]), np.array(q[:n])
        d = jensen_shannon_divergence(p, q)
        assert 0.0 <= d <= 1.0 + 1e-12
        assert d == pytest.approx(jensen_shannon_divergence(q, p))


class TestCategoricalJSD:
    def test_same_distribution_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 5000)
        b = rng.integers(0, 4, 5000)
        assert categorical_jsd(a, b, 4) < 0.001

    def test_missing_category_detected(self):
        a = np.array([0, 1, 2, 3] * 100)
        b = np.array([0, 1, 2] * 100)  # category 3 dropped (mode collapse)
        assert categorical_jsd(a, b, 4) > 0.05


class TestInputValidation:
    """The hardened error contract: empty or malformed inputs raise a
    ValueError that names the offending side, never a cryptic numpy
    error or a silent NaN."""

    def test_both_empty_named(self):
        with pytest.raises(ValueError, match="both samples are empty"):
            wasserstein1(np.array([]), np.array([]))

    def test_first_empty_named(self):
        with pytest.raises(ValueError, match="first sample is empty"):
            wasserstein1(np.array([]), np.array([1.0]))

    def test_second_empty_named(self):
        with pytest.raises(ValueError, match="second sample is empty"):
            wasserstein1(np.array([1.0]), np.array([]))

    def test_negative_real_category_named(self):
        with pytest.raises(ValueError,
                           match=r"real values contain a negative "
                                 r"category \(-1\)"):
            categorical_jsd(np.array([0, -1]), np.array([0, 1]), 2)

    def test_negative_synthetic_category_named(self):
        with pytest.raises(ValueError,
                           match=r"synthetic values contain a negative "
                                 r"category \(-3\)"):
            categorical_jsd(np.array([0, 1]), np.array([-3, 1]), 2)

    def test_float_labels_are_cast(self):
        a = np.array([0.0, 1.0, 1.0, 0.0])
        b = np.array([1.0, 0.0, 0.0, 1.0])
        assert categorical_jsd(a, b, 2) >= 0.0


class TestTotalVariation:
    def test_known_value(self):
        assert total_variation(np.array([1.0, 0.0]),
                               np.array([0.5, 0.5])) == pytest.approx(0.5)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-50, 50), min_size=2, max_size=12),
       st.lists(st.floats(-50, 50), min_size=2, max_size=12),
       st.lists(st.floats(-50, 50), min_size=2, max_size=12))
def test_wasserstein1_is_a_metric_property(a, b, c):
    """Symmetry, identity, and triangle inequality on samples."""
    a, b, c = np.array(a), np.array(b), np.array(c)
    d_ab = wasserstein1(a, b)
    assert d_ab >= 0
    assert d_ab == pytest.approx(wasserstein1(b, a))
    assert wasserstein1(a, a.copy()) == pytest.approx(0.0, abs=1e-12)
    assert d_ab <= wasserstein1(a, c) + wasserstein1(c, b) + 1e-9
