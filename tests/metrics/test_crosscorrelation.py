"""Tests for cross-feature correlation fidelity."""

import numpy as np
import pytest

from repro.metrics.crosscorrelation import (cross_correlation_error,
                                            feature_correlation_matrix)


class TestFeatureCorrelationMatrix:
    def test_shape_and_diagonal(self, tiny_gcut):
        corr = feature_correlation_matrix(tiny_gcut)
        assert corr.shape == (9, 9)
        assert np.allclose(np.diag(corr), 1.0)

    def test_symmetry(self, tiny_gcut):
        corr = feature_correlation_matrix(tiny_gcut)
        assert np.allclose(corr, corr.T, equal_nan=True)

    def test_known_correlations_present(self, tiny_gcut):
        """cpu_rate and maximum_cpu_rate are built to be correlated in the
        GCUT simulator; cpu and page cache are not."""
        corr = feature_correlation_matrix(tiny_gcut)
        assert corr[0, 1] > 0.7          # cpu vs max cpu
        assert abs(corr[0, 6]) < 0.5     # cpu vs unmapped page cache

    def test_excludes_padding(self):
        """Padding zeros would fake positive correlations; they must be
        excluded."""
        from repro.data.dataset import TimeSeriesDataset
        from repro.data.schema import ContinuousSpec, DataSchema
        schema = DataSchema(attributes=(),
                            features=(ContinuousSpec("a"),
                                      ContinuousSpec("b")), max_length=10)
        rng = np.random.default_rng(0)
        feats = rng.normal(size=(30, 10, 2))  # independent features
        ds = TimeSeriesDataset(schema=schema,
                               attributes=np.zeros((30, 0)),
                               features=feats,
                               lengths=rng.integers(2, 11, 30))
        corr = feature_correlation_matrix(ds)
        assert abs(corr[0, 1]) < 0.2

    def test_requires_continuous_features(self):
        from repro.data.dataset import TimeSeriesDataset
        from repro.data.schema import CategoricalSpec, DataSchema
        schema = DataSchema(attributes=(),
                            features=(CategoricalSpec("c", ("x", "y")),),
                            max_length=3)
        ds = TimeSeriesDataset(schema=schema, attributes=np.zeros((2, 0)),
                               features=np.zeros((2, 3, 1)),
                               lengths=np.array([3, 3]))
        with pytest.raises(ValueError, match="continuous"):
            feature_correlation_matrix(ds)


class TestCrossCorrelationError:
    def test_identical_data_zero_error(self, tiny_gcut):
        assert cross_correlation_error(tiny_gcut, tiny_gcut) == 0.0

    def test_shuffled_features_increase_error(self, tiny_gcut):
        """Independently permuting each feature column destroys the
        inter-feature structure."""
        from repro.data.dataset import TimeSeriesDataset
        rng = np.random.default_rng(0)
        shuffled = tiny_gcut.features.copy()
        for j in range(shuffled.shape[2]):
            perm = rng.permutation(len(shuffled))
            shuffled[:, :, j] = shuffled[perm, :, j]
        broken = TimeSeriesDataset(schema=tiny_gcut.schema,
                                   attributes=tiny_gcut.attributes,
                                   features=shuffled,
                                   lengths=tiny_gcut.lengths)
        # Note: per-object lengths now mismatch the shuffled padding, but
        # the constructor re-masks; the comparison remains meaningful.
        assert cross_correlation_error(tiny_gcut, broken) > 0.1

    def test_schema_mismatch_rejected(self, tiny_gcut, tiny_mba):
        with pytest.raises(ValueError, match="schemas differ"):
            cross_correlation_error(tiny_gcut, tiny_mba)

    def test_single_feature_returns_zero(self, tiny_wwt):
        assert cross_correlation_error(tiny_wwt, tiny_wwt) == 0.0
