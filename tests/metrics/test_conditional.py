"""Tests for conditional-distribution fidelity metrics."""

import numpy as np
import pytest

from repro.metrics.conditional import conditional_w1, per_object_statistic


class TestPerObjectStatistic:
    def test_sum_excludes_padding(self, tiny_gcut):
        total = per_object_statistic(tiny_gcut, "cpu_rate", "sum")
        i = 0
        expected = tiny_gcut.features[i, :tiny_gcut.lengths[i], 0].sum()
        assert total[i] == pytest.approx(expected)

    def test_mean(self, tiny_gcut):
        mean = per_object_statistic(tiny_gcut, "cpu_rate", "mean")
        total = per_object_statistic(tiny_gcut, "cpu_rate", "sum")
        assert np.allclose(mean, total / tiny_gcut.lengths)

    def test_max(self, tiny_gcut):
        peak = per_object_statistic(tiny_gcut, "cpu_rate", "max")
        i = int(np.argmax(tiny_gcut.lengths))
        expected = tiny_gcut.features[i, :tiny_gcut.lengths[i], 0].max()
        assert peak[i] == pytest.approx(expected)

    def test_length(self, tiny_gcut):
        lengths = per_object_statistic(tiny_gcut, "cpu_rate", "length")
        assert np.array_equal(lengths, tiny_gcut.lengths)

    def test_unknown_statistic(self, tiny_gcut):
        with pytest.raises(ValueError, match="statistic"):
            per_object_statistic(tiny_gcut, "cpu_rate", "median")


class TestConditionalW1:
    def test_identical_data_near_zero(self, tiny_mba):
        result = conditional_w1(tiny_mba, tiny_mba, "technology",
                                "traffic_bytes")
        finite = [v for k, v in result.items()
                  if k != "__macro__" and np.isfinite(v)]
        assert all(v == 0.0 for v in finite)
        assert result["__macro__"] == 0.0

    def test_category_labels_as_keys(self, tiny_mba):
        result = conditional_w1(tiny_mba, tiny_mba, "technology",
                                "traffic_bytes")
        assert "DSL" in result and "Cable" in result

    def test_sparse_categories_are_nan(self, tiny_mba):
        """Categories with too few samples on either side yield NaN rather
        than a meaningless distance."""
        result = conditional_w1(tiny_mba, tiny_mba, "technology",
                                "traffic_bytes", min_samples=10 ** 6)
        assert all(np.isnan(v) for k, v in result.items())

    def test_detects_conditional_shift(self, tiny_mba):
        """Scaling one technology's traffic must show up in that category."""
        from repro.data.dataset import TimeSeriesDataset
        shifted_feats = tiny_mba.features.copy()
        cable = tiny_mba.attribute_column("technology") == 3
        shifted_feats[cable, :, 1] *= 10.0
        shifted = TimeSeriesDataset(schema=tiny_mba.schema,
                                    attributes=tiny_mba.attributes,
                                    features=shifted_feats,
                                    lengths=tiny_mba.lengths)
        result = conditional_w1(tiny_mba, shifted, "technology",
                                "traffic_bytes")
        if np.isfinite(result["Cable"]) and np.isfinite(result["DSL"]):
            assert result["Cable"] > result["DSL"]

    def test_non_categorical_attribute_rejected(self, tiny_mba):
        with pytest.raises(KeyError):
            conditional_w1(tiny_mba, tiny_mba, "bogus", "traffic_bytes")

    def test_schema_mismatch_rejected(self, tiny_mba, tiny_gcut):
        with pytest.raises(ValueError, match="schemas differ"):
            conditional_w1(tiny_mba, tiny_gcut, "technology",
                           "traffic_bytes")
