"""Tests for the nearest-neighbour memorization check."""

import numpy as np
import pytest

from repro.metrics import memorization_ratio, nearest_neighbors


class TestNearestNeighbors:
    def test_exact_copy_has_zero_distance(self):
        rng = np.random.default_rng(0)
        train = rng.normal(size=(20, 10))
        result = nearest_neighbors(train[:5], train, k=1)
        assert np.allclose(result.distances, 0.0)
        assert np.array_equal(result.indices[:, 0], np.arange(5))

    def test_k_ordering(self):
        rng = np.random.default_rng(1)
        train = rng.normal(size=(30, 8))
        result = nearest_neighbors(rng.normal(size=(4, 8)), train, k=3)
        assert (np.diff(result.distances, axis=1) >= 0).all()

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="lengths differ"):
            nearest_neighbors(np.zeros((2, 5)), np.zeros((3, 6)))

    def test_k_too_large_raises(self):
        with pytest.raises(ValueError, match="exceeds"):
            nearest_neighbors(np.zeros((2, 5)), np.zeros((3, 5)), k=4)

    def test_known_neighbour(self):
        train = np.array([[0.0, 0.0], [10.0, 10.0]])
        gen = np.array([[9.0, 9.0]])
        result = nearest_neighbors(gen, train, k=1)
        assert result.indices[0, 0] == 1
        assert result.distances[0, 0] == pytest.approx(1.0)  # MSE over 2 dims


class TestMemorizationRatio:
    def test_copying_model_scores_low(self):
        rng = np.random.default_rng(2)
        train = rng.normal(size=(50, 12))
        holdout = rng.normal(size=(50, 12))
        copied = train[:30] + rng.normal(0, 1e-4, size=(30, 12))
        assert memorization_ratio(copied, train, holdout) < 0.01

    def test_generalising_model_scores_near_one(self):
        rng = np.random.default_rng(3)
        train = rng.normal(size=(100, 12))
        holdout = rng.normal(size=(100, 12))
        fresh = rng.normal(size=(60, 12))
        ratio = memorization_ratio(fresh, train, holdout)
        assert 0.5 < ratio < 2.0


class TestInputValidation:
    """Hardened error contract: every malformed input raises a
    ValueError naming which array is wrong and why."""

    def test_nn_one_dimensional_generated_named(self):
        with pytest.raises(ValueError,
                           match=r"generated must be a 2-D .* got a "
                                 r"1-D array of shape \(5,\)"):
            nearest_neighbors(np.zeros(5), np.zeros((3, 5)))

    def test_nn_three_dimensional_training_named(self):
        with pytest.raises(ValueError, match="training must be a 2-D"):
            nearest_neighbors(np.zeros((2, 5)), np.zeros((3, 5, 1)))

    def test_nn_empty_generated_named(self):
        with pytest.raises(ValueError, match="generated is empty"):
            nearest_neighbors(np.zeros((0, 5)), np.zeros((3, 5)))

    def test_nn_empty_training_named(self):
        with pytest.raises(ValueError, match="training is empty"):
            nearest_neighbors(np.zeros((2, 5)), np.zeros((0, 5)))

    def test_ratio_empty_training_named(self):
        with pytest.raises(ValueError, match="training is empty"):
            memorization_ratio(np.zeros((2, 5)), np.zeros((0, 5)),
                               np.zeros((3, 5)))

    def test_ratio_one_dimensional_holdout_named(self):
        with pytest.raises(ValueError, match="holdout must be a 2-D"):
            memorization_ratio(np.zeros((2, 5)), np.zeros((3, 5)),
                               np.zeros(5))

    def test_ratio_empty_generated_named(self):
        with pytest.raises(ValueError, match="generated is empty"):
            memorization_ratio(np.zeros((0, 5)), np.zeros((3, 5)),
                               np.zeros((3, 5)))
