"""Tests for autocorrelation metrics."""

import numpy as np
import pytest

from repro.metrics import (autocorrelation_mse, average_autocorrelation,
                           series_autocorrelation)


class TestSeriesAutocorrelation:
    def test_lag_zero_is_one(self):
        rng = np.random.default_rng(0)
        acf = series_autocorrelation(rng.normal(size=100), max_lag=5)
        assert np.isclose(acf[0], 1.0)

    def test_periodic_signal_peaks_at_period(self):
        t = np.arange(200)
        signal = np.sin(2 * np.pi * t / 10)
        acf = series_autocorrelation(signal, max_lag=15)
        assert acf[10] > 0.9
        assert acf[5] < -0.9

    def test_white_noise_decorrelates(self):
        rng = np.random.default_rng(1)
        acf = series_autocorrelation(rng.normal(size=5000), max_lag=10)
        assert np.abs(acf[1:]).max() < 0.1

    def test_constant_series_is_nan(self):
        acf = series_autocorrelation(np.full(10, 3.0), max_lag=3)
        assert np.isnan(acf).all()

    def test_too_short_series_is_nan(self):
        acf = series_autocorrelation(np.array([1.0]), max_lag=3)
        assert np.isnan(acf).all()

    def test_lags_beyond_length_are_nan(self):
        acf = series_autocorrelation(np.array([1.0, 2.0, 1.5]), max_lag=5)
        assert np.isfinite(acf[:3]).all()
        assert np.isnan(acf[3:]).all()


class TestAverageAutocorrelation:
    def test_averages_over_samples(self):
        t = np.arange(100)
        batch = np.stack([np.sin(2 * np.pi * (t + phase) / 8)
                          for phase in range(5)])
        acf = average_autocorrelation(batch, max_lag=10)
        assert acf[8] > 0.9

    def test_respects_lengths(self):
        """Padding zeros must not pollute the ACF."""
        series = np.zeros((1, 50))
        series[0, :10] = np.sin(np.arange(10))
        with_lengths = average_autocorrelation(series, np.array([10]),
                                               max_lag=5)
        padded = average_autocorrelation(series, max_lag=5)
        assert not np.allclose(with_lengths[:4], padded[:4])

    def test_skips_degenerate_series(self):
        batch = np.stack([np.full(20, 1.0),
                          np.sin(np.arange(20.0))])
        acf = average_autocorrelation(batch, max_lag=5)
        assert np.isfinite(acf).all()  # constant row ignored via nanmean


class TestAutocorrelationMSE:
    def test_zero_for_identical(self):
        acf = np.array([1.0, 0.5, 0.2])
        assert autocorrelation_mse(acf, acf) == 0.0

    def test_known_value(self):
        a = np.array([1.0, 0.0])
        b = np.array([1.0, 1.0])
        assert autocorrelation_mse(a, b) == pytest.approx(0.5)

    def test_ignores_nan_lags(self):
        a = np.array([1.0, 0.5, np.nan])
        b = np.array([1.0, 0.0, 0.7])
        assert autocorrelation_mse(a, b) == pytest.approx(0.125)

    def test_all_nan_raises(self):
        with pytest.raises(ValueError, match="finite"):
            autocorrelation_mse(np.array([np.nan]), np.array([1.0]))
