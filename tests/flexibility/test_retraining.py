"""Tests for attribute-distribution retargeting (§5.2, Figure 30)."""

import numpy as np
import pytest

from repro.flexibility import (joint_categorical_target, joint_histogram,
                               retrain_to_joint)


class TestJointHistogram:
    def test_counts(self, tiny_wwt):
        hist = joint_histogram(tiny_wwt, "wikipedia_domain", "access_type")
        assert hist.shape == (9, 3)
        assert hist.sum() == len(tiny_wwt)


class TestJointTarget:
    def test_shape_validation(self, trained_dg_gcut):
        with pytest.raises(ValueError, match="shape"):
            joint_categorical_target(trained_dg_gcut, "end_event_type",
                                     "end_event_type", np.ones((2, 2)), 10,
                                     np.random.default_rng(0))


class TestRetrainToJoint:
    def test_impulse_target_concentrates_mass(self, tiny_wwt):
        """Retarget the (domain x access) joint to a single cell; the
        generated joint must concentrate there (the Figure-30 mechanism)."""
        from repro.core import DoppelGANger
        from tests.conftest import tiny_dg_config
        model = DoppelGANger(tiny_wwt.schema,
                             tiny_dg_config(iterations=30, seed=9))
        model.fit(tiny_wwt)
        target = np.zeros((9, 3))
        target[4, 1] = 1.0  # all mass on fr.wikipedia.org x desktop
        retrain_to_joint(model, "wikipedia_domain", "access_type", target,
                         rng=np.random.default_rng(0),
                         n_target_samples=300, iterations=150)
        syn = model.generate(300, rng=np.random.default_rng(1))
        hist = joint_histogram(syn, "wikipedia_domain", "access_type")
        assert hist[4, 1] / hist.sum() > 0.6
