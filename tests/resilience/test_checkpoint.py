"""Checkpoint/resume tests: bit-identical continuation and atomicity."""

import numpy as np
import pytest

from repro.core import DoppelGANger
from repro.nn.serialization import load_training_state
from repro.resilience import faults
from repro.resilience.checkpoint import load_checkpoint, save_checkpoint
from tests.conftest import tiny_dg_config


@pytest.fixture(autouse=True)
def no_leftover_faults():
    faults.clear()
    yield
    faults.clear()


def _fresh(tiny_gcut, **overrides):
    return DoppelGANger(tiny_gcut.schema,
                        tiny_dg_config(iterations=12, **overrides))


class TestResume:
    def test_resume_is_bit_identical(self, tiny_gcut, tmp_path):
        """A run stopped at iteration 7 and resumed must reproduce the
        uninterrupted run's loss trace exactly (not approximately)."""
        baseline = _fresh(tiny_gcut).fit(tiny_gcut, log_every=1)

        ck = tmp_path / "state.npz"
        _fresh(tiny_gcut).fit(tiny_gcut, log_every=1, iterations=7,
                              train_state_path=ck, checkpoint_every=5)
        resumed = _fresh(tiny_gcut).fit(tiny_gcut, log_every=1,
                                        resume_from=ck)

        assert resumed.iterations == baseline.iterations
        assert resumed.d_loss == baseline.d_loss          # exact equality
        assert resumed.g_loss == baseline.g_loss
        assert resumed.wasserstein == baseline.wasserstein
        assert resumed.resumes == 1

    def test_resume_preserves_adam_and_rng(self, tiny_gcut, tmp_path):
        """Adam moments and RNG state round-trip: the next-step losses of
        a reloaded trainer equal the original's."""
        ck = tmp_path / "state.npz"
        model = _fresh(tiny_gcut)
        model.fit(tiny_gcut, log_every=1, iterations=6,
                  train_state_path=ck, checkpoint_every=3)
        trainer = model.trainer
        adam = trainer.g_optimizer
        t_before = adam._t
        m_before = [m.copy() for m in adam._m]

        other = _fresh(tiny_gcut)
        resumed = other.fit(tiny_gcut, log_every=1, iterations=6,
                            resume_from=ck)
        assert other.trainer.g_optimizer._t == t_before
        for a, b in zip(other.trainer.g_optimizer._m, m_before):
            assert np.array_equal(a, b)
        # Both trainers now sit in the same state: the next step matches.
        encoded = model.encoder.transform(tiny_gcut)
        assert trainer.discriminator_step(encoded) == \
            other.trainer.discriminator_step(encoded)
        assert resumed.iterations[-1] == 5

    def test_resume_past_end_is_noop(self, tiny_gcut, tmp_path):
        ck = tmp_path / "state.npz"
        _fresh(tiny_gcut).fit(tiny_gcut, log_every=1, iterations=6,
                              train_state_path=ck, checkpoint_every=3)
        resumed = _fresh(tiny_gcut).fit(tiny_gcut, log_every=1,
                                        iterations=6, resume_from=ck)
        assert resumed.iterations[-1] == 5


class TestCorruption:
    def test_corrupted_checkpoint_raises_value_error(self, tiny_gcut,
                                                     tmp_path):
        ck = tmp_path / "state.npz"
        ck.write_bytes(b"this is not an npz archive")
        with pytest.raises(ValueError, match="corrupt"):
            _fresh(tiny_gcut).fit(tiny_gcut, resume_from=ck)

    def test_truncated_checkpoint_raises_value_error(self, tiny_gcut,
                                                     tmp_path):
        ck = tmp_path / "state.npz"
        _fresh(tiny_gcut).fit(tiny_gcut, log_every=1, iterations=4,
                              train_state_path=ck, checkpoint_every=2)
        blob = ck.read_bytes()
        ck.write_bytes(blob[:len(blob) // 2])
        with pytest.raises(ValueError, match="corrupt"):
            _fresh(tiny_gcut).fit(tiny_gcut, resume_from=ck)

    def test_wrong_format_npz_rejected(self, tiny_gcut, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="training-state"):
            load_training_state(path)


class TestAtomicity:
    def test_kill_between_write_and_rename_keeps_old_checkpoint(
            self, tiny_gcut, tmp_path):
        """A process dying mid-checkpoint must not destroy the previous
        checkpoint: the write goes to a temp file and the rename is the
        commit point."""
        ck = tmp_path / "state.npz"
        model = _fresh(tiny_gcut)
        model.fit(tiny_gcut, log_every=1, iterations=4,
                  train_state_path=ck, checkpoint_every=2)
        good = load_training_state(ck)

        with faults.injected(
                faults.kill_at("serialization.pre_rename")):
            with pytest.raises(faults.SimulatedKill):
                save_checkpoint(model.trainer, ck, 99, model.history)

        survivor = load_training_state(ck)
        assert survivor.iteration == good.iteration  # old file intact
        # The interrupted temp file is still on disk, and ignored.
        assert (tmp_path / "state.npz.tmp").exists()

    def test_mismatched_checkpoint_rejected(self, tiny_gcut, tmp_path):
        ck = tmp_path / "state.npz"
        model = _fresh(tiny_gcut)
        model.fit(tiny_gcut, log_every=1, iterations=4,
                  train_state_path=ck, checkpoint_every=2)
        other = DoppelGANger(
            tiny_gcut.schema,
            tiny_dg_config(iterations=4,
                           use_auxiliary_discriminator=False))
        with pytest.raises(ValueError, match="missing modules"):
            other.fit(tiny_gcut, resume_from=ck)


class TestValidation:
    def test_checkpoint_every_requires_path(self, tiny_gcut):
        with pytest.raises(ValueError, match="checkpoint_path"):
            _fresh(tiny_gcut).fit(tiny_gcut, checkpoint_every=5)

    def test_batch_size_larger_than_dataset_rejected(self, tiny_gcut):
        model = DoppelGANger(tiny_gcut.schema,
                             tiny_dg_config(batch_size=500, iterations=2))
        with pytest.raises(ValueError, match="batch_size"):
            model.fit(tiny_gcut)

    def test_load_checkpoint_missing_file(self, tiny_gcut, tmp_path):
        with pytest.raises(ValueError, match="missing"):
            _fresh(tiny_gcut).fit(tiny_gcut,
                                  resume_from=tmp_path / "absent.npz")
