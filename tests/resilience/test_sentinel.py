"""Divergence sentinel tests: detection, rollback, retry policy."""

import numpy as np
import pytest

from repro.core import DoppelGANger
from repro.resilience import (DivergenceDetected, DivergenceSentinel,
                              SentinelPolicy, TrainingDiverged, faults)
from tests.conftest import tiny_dg_config


@pytest.fixture(autouse=True)
def no_leftover_faults():
    faults.clear()
    yield
    faults.clear()


def _model(tiny_gcut, **overrides):
    return DoppelGANger(tiny_gcut.schema,
                        tiny_dg_config(iterations=10, **overrides))


class TestDetection:
    def test_nan_detected(self):
        sentinel = DivergenceSentinel()
        with pytest.raises(DivergenceDetected) as info:
            sentinel.check(3, float("nan"), 0.0, 0.0)
        assert info.value.reason == "nan"

    def test_inf_detected(self):
        with pytest.raises(DivergenceDetected):
            DivergenceSentinel().check(0, 0.0, float("inf"), 0.0)

    def test_runaway_wasserstein_detected(self):
        policy = SentinelPolicy(wasserstein_limit=10.0)
        with pytest.raises(DivergenceDetected) as info:
            DivergenceSentinel(policy).check(0, 0.0, 0.0, 11.0)
        assert info.value.reason == "runaway"

    def test_healthy_step_passes(self):
        DivergenceSentinel().check(0, 1.0, -1.0, 0.5)

    def test_coerce_forms(self):
        assert DivergenceSentinel.coerce(None) is None
        assert DivergenceSentinel.coerce(False) is None
        assert isinstance(DivergenceSentinel.coerce(True),
                          DivergenceSentinel)
        policy = SentinelPolicy(max_retries=7)
        assert DivergenceSentinel.coerce(policy).policy.max_retries == 7
        with pytest.raises(TypeError):
            DivergenceSentinel.coerce("yes")

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SentinelPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            SentinelPolicy(lr_decay=0.0)
        with pytest.raises(ValueError):
            SentinelPolicy(snapshot_every=0)


class TestRollback:
    def test_injected_nan_triggers_rollback_and_training_completes(
            self, tiny_gcut):
        """The acceptance-criterion path: a NaN in a critic step rolls
        back, retries, and training still finishes with finite losses
        and visible counters."""
        model = _model(tiny_gcut)
        with faults.injected(faults.nan_at("trainer.critic_loss",
                                           step=4)):
            history = model.fit(tiny_gcut, log_every=1,
                                sentinel=SentinelPolicy(max_retries=2))
        assert history.nan_events == 1
        assert history.rollbacks == 1
        assert len(history.iterations) == 10
        assert all(np.isfinite(history.d_loss))
        assert all(np.isfinite(history.g_loss))

    def test_injected_exception_mid_step_recovered(self, tiny_gcut):
        model = _model(tiny_gcut)
        with faults.injected(faults.raise_at("trainer.step", step=3)):
            history = model.fit(tiny_gcut, log_every=1,
                                sentinel=True)
        assert history.step_faults == 1
        assert history.rollbacks == 1
        assert len(history.iterations) == 10

    def test_lr_decay_applied_on_rollback(self, tiny_gcut):
        model = _model(tiny_gcut)
        base_lr = model.config.learning_rate
        with faults.injected(faults.nan_at("trainer.generator_loss",
                                           step=2)):
            history = model.fit(
                tiny_gcut, log_every=1,
                sentinel=SentinelPolicy(max_retries=2, lr_decay=0.5,
                                        reseed=False))
        assert history.lr_decays == 1
        assert model.trainer.g_optimizer.lr == pytest.approx(base_lr * 0.5)

    def test_retry_budget_exhaustion_raises_training_diverged(
            self, tiny_gcut):
        """A persistent NaN (fires every retry) must exhaust the budget
        and surface as TrainingDiverged, not loop forever."""
        model = _model(tiny_gcut)
        with faults.injected(faults.nan_at("trainer.critic_loss",
                                           times=100)):
            with pytest.raises(TrainingDiverged) as info:
                model.fit(tiny_gcut, log_every=1,
                          sentinel=SentinelPolicy(max_retries=2))
        assert info.value.rollbacks == 2
        assert model.trainer.history.nan_events == 3

    def test_no_sentinel_means_fault_propagates(self, tiny_gcut):
        model = _model(tiny_gcut)
        with faults.injected(faults.raise_at("trainer.step", step=1)):
            with pytest.raises(faults.FaultInjected):
                model.fit(tiny_gcut, log_every=1)

    def test_clean_run_unaffected_by_sentinel(self, tiny_gcut):
        """Sentinel on, no faults: identical trace to a sentinel-less run
        (snapshots must not perturb training)."""
        plain = _model(tiny_gcut).fit(tiny_gcut, log_every=1)
        guarded = _model(tiny_gcut).fit(
            tiny_gcut, log_every=1,
            sentinel=SentinelPolicy(snapshot_every=3))
        assert plain.d_loss == guarded.d_loss
        assert plain.g_loss == guarded.g_loss
        assert guarded.rollbacks == 0
