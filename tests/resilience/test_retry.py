"""The bounded deterministic retry helper (repro.resilience.retry)."""

import pytest

from repro.resilience.retry import RetryPolicy, retry_call


class TestRetryPolicy:
    def test_schedule_is_deterministic_exponential(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1,
                             multiplier=2.0, max_delay=10.0)
        assert policy.delays() == (0.1, 0.2, 0.4, 0.8)
        # Same policy, same schedule: no wall-clock randomness anywhere.
        assert policy.delays() == RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0,
            max_delay=10.0).delays()

    def test_max_delay_caps_the_schedule(self):
        policy = RetryPolicy(max_attempts=6, base_delay=1.0,
                             multiplier=3.0, max_delay=5.0)
        assert policy.delays() == (1.0, 3.0, 5.0, 5.0, 5.0)

    def test_single_attempt_has_no_delays(self):
        assert RetryPolicy(max_attempts=1).delays() == ()

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -1.0},
        {"multiplier": 0.5},
    ])
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestRetryCall:
    def test_success_passes_value_through_without_sleeping(self):
        slept = []
        assert retry_call(lambda: 42, retry_on=(OSError,),
                          sleep=slept.append) == 42
        assert slept == []

    def test_retries_then_succeeds(self):
        slept = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionRefusedError("not yet")
            return "ok"

        result = retry_call(flaky, retry_on=(ConnectionRefusedError,),
                            policy=RetryPolicy(max_attempts=4,
                                               base_delay=0.5,
                                               multiplier=2.0),
                            sleep=slept.append)
        assert result == "ok"
        assert calls["n"] == 3
        assert slept == [0.5, 1.0]  # the exact deterministic schedule

    def test_budget_exhausted_raises_last_exception(self):
        slept = []

        def always_fails():
            raise OSError("still down")

        with pytest.raises(OSError, match="still down"):
            retry_call(always_fails, retry_on=(OSError,),
                       policy=RetryPolicy(max_attempts=3,
                                          base_delay=0.1),
                       sleep=slept.append)
        assert len(slept) == 2  # max_attempts - 1 sleeps

    def test_unlisted_exceptions_propagate_immediately(self):
        calls = {"n": 0}

        def wrong_kind():
            calls["n"] += 1
            raise ValueError("corrupt input, do not retry")

        with pytest.raises(ValueError):
            retry_call(wrong_kind, retry_on=(OSError,),
                       policy=RetryPolicy(max_attempts=5),
                       sleep=lambda _: None)
        assert calls["n"] == 1

    def test_on_retry_observer_sees_attempts_and_delays(self):
        seen = []

        def fails_twice():
            if len(seen) < 2:
                raise OSError("boom")
            return "done"

        retry_call(fails_twice, retry_on=(OSError,),
                   policy=RetryPolicy(max_attempts=3, base_delay=0.25,
                                      multiplier=2.0),
                   sleep=lambda _: None,
                   on_retry=lambda a, e, d: seen.append((a, d)))
        assert seen == [(1, 0.25), (2, 0.5)]

    def test_zero_delay_never_calls_sleep(self):
        slept = []
        attempts = {"n": 0}

        def once():
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise OSError("x")
            return 1

        retry_call(once, retry_on=(OSError,),
                   policy=RetryPolicy(max_attempts=2, base_delay=0.0),
                   sleep=slept.append)
        assert slept == []


class TestRegistryManifestRetry:
    """The registry rides out transient manifest-read failures."""

    def test_transient_read_failure_is_retried(self, tmp_path,
                                               monkeypatch):
        import json

        from repro.serve.registry import ModelRegistry, RegistryError

        registry = ModelRegistry(tmp_path)
        path = registry._manifest_path("m")
        good = json.dumps({"name": "m", "versions": [
            {"version": 1, "sha256": "0" * 64, "nbytes": 1,
             "backend": "doppelganger", "meta": {}}]})
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(good)

        real_open = open
        state = {"failures": 2}

        def flaky_open(file, *args, **kwargs):
            if str(file) == path and state["failures"] > 0:
                state["failures"] -= 1
                raise OSError("transient")
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr("builtins.open", flaky_open)
        record = registry.resolve("m@1")
        assert record.version == 1

        # A *persistent* failure still surfaces as a RegistryError.
        state["failures"] = 10 ** 6
        with pytest.raises(RegistryError, match="unreadable or corrupt"):
            registry.resolve("m@1")

    def test_missing_manifest_is_not_retried(self, tmp_path,
                                             monkeypatch):
        from repro.serve.registry import ModelNotFound, ModelRegistry

        registry = ModelRegistry(tmp_path)
        slept = []
        monkeypatch.setattr("repro.resilience.retry.time.sleep",
                            slept.append)
        with pytest.raises(ModelNotFound):
            registry.resolve("ghost")
        assert slept == []
