"""Tests for the deterministic fault-injection layer."""

import pytest

from repro.resilience import faults


@pytest.fixture(autouse=True)
def no_leftover_faults():
    faults.clear()
    yield
    faults.clear()


class TestFiring:
    def test_noop_when_nothing_armed(self):
        assert faults.fire("trainer.critic_loss", step=3, value=1.5) == 1.5

    def test_nan_poisons_value_at_step(self):
        import math
        with faults.injected(faults.nan_at("trainer.critic_loss", step=2)):
            assert faults.fire("trainer.critic_loss", step=1,
                               value=1.0) == 1.0
            assert math.isnan(faults.fire("trainer.critic_loss", step=2,
                                          value=1.0))

    def test_inf_action(self):
        import math
        with faults.injected(faults.inf_at("trainer.generator_loss")):
            assert math.isinf(faults.fire("trainer.generator_loss",
                                          step=0, value=0.0))

    def test_one_shot_by_default(self):
        with faults.injected(faults.nan_at("s", step=None)):
            faults.fire("s", step=0, value=1.0)
            assert faults.fire("s", step=1, value=2.0) == 2.0

    def test_times_controls_repeat_firing(self):
        import math
        with faults.injected(faults.nan_at("s", times=2)):
            assert math.isnan(faults.fire("s", value=1.0))
            assert math.isnan(faults.fire("s", value=1.0))
            assert faults.fire("s", value=1.0) == 1.0

    def test_site_mismatch_does_not_fire(self):
        with faults.injected(faults.raise_at("other.site")):
            faults.fire("trainer.step", step=0)

    def test_raise_action(self):
        with faults.injected(faults.raise_at("trainer.step", step=1)):
            faults.fire("trainer.step", step=0)
            with pytest.raises(faults.FaultInjected):
                faults.fire("trainer.step", step=1)

    def test_kill_is_base_exception(self):
        assert not issubclass(faults.SimulatedKill, Exception)
        with faults.injected(faults.kill_at("serialization.pre_rename")):
            with pytest.raises(faults.SimulatedKill):
                faults.fire("serialization.pre_rename")

    def test_context_manager_disarms(self):
        with faults.injected(faults.nan_at("s")):
            assert len(faults.active()) == 1
        assert faults.active() == []

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError, match="action"):
            faults.Fault(site="s", action="explode")
