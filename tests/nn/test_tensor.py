"""Tests for the autodiff engine core (Tensor, grad, no_grad)."""

import numpy as np
import pytest

from repro.nn import Parameter, Tensor, grad, no_grad
from repro.nn import ops
from repro.nn.tensor import is_grad_enabled


class TestTensorBasics:
    def test_wraps_data_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_wrapping_tensor_shares_values(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.array_equal(b.data, a.data)

    def test_scalar_item(self):
        assert Tensor(3.5).item() == 3.5

    def test_numpy_returns_copy(self):
        t = Tensor([1.0, 2.0])
        arr = t.numpy()
        arr[0] = 99.0
        assert t.data[0] == 1.0

    def test_parameter_requires_grad(self):
        p = Parameter(np.zeros(3))
        assert p.requires_grad
        assert p.is_leaf

    def test_detach_cuts_graph(self):
        p = Parameter([1.0, 2.0])
        y = p * 2.0
        d = y.detach()
        assert d.is_leaf
        assert not d.requires_grad
        assert np.array_equal(d.data, y.data)

    def test_len_and_ndim(self):
        t = Tensor(np.zeros((4, 2)))
        assert len(t) == 4
        assert t.ndim == 2
        assert t.size == 8

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad=True" in repr(Parameter([1.0]))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestGrad:
    def test_simple_chain(self):
        x = Parameter(2.0)
        y = x * x * x  # d/dx x^3 = 3x^2 = 12
        (g,) = grad(y, [x])
        assert np.isclose(g.item(), 12.0)

    def test_shared_subexpression_accumulates(self):
        x = Parameter(3.0)
        y = x * x + x * x  # 4x = 12
        (g,) = grad(y, [x])
        assert np.isclose(g.item(), 12.0)

    def test_grad_of_interior_node(self):
        x = Parameter(2.0)
        h = x * 3.0
        y = h * h
        (gh,) = grad(y, [h])
        assert np.isclose(gh.item(), 2 * 6.0)

    def test_grad_output_shape_mismatch_raises(self):
        x = Parameter(np.ones(3))
        y = x * 2.0
        with pytest.raises(ValueError, match="grad_output shape"):
            grad(y, [x], grad_output=np.ones(2))

    def test_custom_grad_output(self):
        x = Parameter(np.ones(3))
        y = x * 2.0
        (g,) = grad(y, [x], grad_output=np.array([1.0, 2.0, 3.0]))
        assert np.allclose(g.data, [2.0, 4.0, 6.0])

    def test_unreached_input_raises(self):
        x = Parameter(1.0)
        z = Parameter(1.0)
        y = x * 2.0
        with pytest.raises(RuntimeError, match="not reached"):
            grad(y, [z])

    def test_allow_unused_returns_none(self):
        x = Parameter(1.0)
        z = Parameter(1.0)
        y = x * 2.0
        gx, gz = grad(y, [x, z], allow_unused=True)
        assert gz is None
        assert np.isclose(gx.item(), 2.0)

    def test_no_grad_through_constant(self):
        x = Tensor(2.0)  # requires_grad False
        p = Parameter(3.0)
        y = x * p
        (gp,) = grad(y, [p])
        assert np.isclose(gp.item(), 2.0)

    def test_diamond_graph(self):
        x = Parameter(2.0)
        a = x * 2.0
        b = x * 3.0
        y = a * b  # y = 6x^2, dy/dx = 12x = 24
        (g,) = grad(y, [x])
        assert np.isclose(g.item(), 24.0)

    def test_deep_chain_no_recursion_error(self):
        x = Parameter(1.0)
        y = x
        for _ in range(2000):
            y = y + 1.0
        (g,) = grad(y, [x])
        assert np.isclose(g.item(), 1.0)


class TestBackward:
    def test_backward_populates_grad(self):
        x = Parameter(np.array([1.0, 2.0]))
        y = (x * x).sum()
        y.backward()
        assert np.allclose(x.grad.data, [2.0, 4.0])

    def test_backward_accumulates_across_calls(self):
        x = Parameter(np.array([1.0]))
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        assert np.isclose(x.grad.data[0], 5.0)

    def test_zero_grad(self):
        x = Parameter(np.array([1.0]))
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        p = Parameter(1.0)
        with no_grad():
            y = p * 2.0
        assert y.is_leaf
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()


class TestCreateGraph:
    def test_second_derivative_of_cube(self):
        x = Parameter(2.0)
        y = x * x * x
        (g1,) = grad(y, [x], create_graph=True)
        (g2,) = grad(g1, [x])  # d2/dx2 x^3 = 6x = 12
        assert np.isclose(g2.item(), 12.0)

    def test_third_derivative(self):
        x = Parameter(1.5)
        y = x * x * x * x  # 4x^3, 12x^2, 24x
        (g1,) = grad(y, [x], create_graph=True)
        (g2,) = grad(g1, [x], create_graph=True)
        (g3,) = grad(g2, [x])
        assert np.isclose(g3.item(), 24 * 1.5)

    def test_without_create_graph_grads_are_leaves(self):
        x = Parameter(2.0)
        y = x * x
        (g,) = grad(y, [x])
        assert g.is_leaf

    def test_grad_of_tanh_grad(self):
        x = Parameter(0.7)
        y = ops.tanh(x)
        (g1,) = grad(y, [x], create_graph=True)
        (g2,) = grad(g1, [x])
        t = np.tanh(0.7)
        # d/dx (1 - tanh^2) = -2 tanh (1 - tanh^2)
        assert np.isclose(g2.item(), -2 * t * (1 - t ** 2), atol=1e-10)
