"""Tests for weight initialisers."""

import numpy as np

from repro.nn import init


RNG = np.random.default_rng(4)


class TestXavier:
    def test_uniform_bounds(self):
        w = init.xavier_uniform(RNG, 100, 50)
        limit = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert np.abs(w).max() <= limit

    def test_normal_scale(self):
        w = init.xavier_normal(RNG, 400, 400)
        assert abs(w.std() - np.sqrt(2.0 / 800)) < 0.005

    def test_custom_shape(self):
        w = init.xavier_uniform(RNG, 10, 20, shape=(5, 5))
        assert w.shape == (5, 5)


class TestOrthogonal:
    def test_square_is_orthogonal(self):
        q = init.orthogonal(RNG, 16, 16)
        assert np.allclose(q @ q.T, np.eye(16), atol=1e-10)

    def test_tall_has_orthonormal_columns(self):
        q = init.orthogonal(RNG, 20, 8)
        assert np.allclose(q.T @ q, np.eye(8), atol=1e-10)

    def test_wide_has_orthonormal_rows(self):
        q = init.orthogonal(RNG, 8, 20)
        assert np.allclose(q @ q.T, np.eye(8), atol=1e-10)

    def test_gain(self):
        q = init.orthogonal(RNG, 8, 8, gain=2.0)
        assert np.allclose(q @ q.T, 4 * np.eye(8), atol=1e-9)


def test_zeros():
    assert init.zeros((2, 3)).sum() == 0.0
