"""Tests for higher-level differentiable functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, grad
from repro.nn import functional as F


RNG = np.random.default_rng(3)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(5, 7)))
        out = F.softmax(x)
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_large_logits_stable(self):
        x = Tensor(np.array([[1000.0, 1001.0], [-1000.0, -999.0]]))
        out = F.softmax(x)
        assert np.all(np.isfinite(out.data))
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_gradient_matches_jacobian(self):
        logits = RNG.normal(size=(1, 4))
        t = Tensor(logits.copy(), requires_grad=True)
        out = F.softmax(t)
        v = RNG.normal(size=(1, 4))
        (g,) = grad(out, [t], grad_output=v)
        p = np.exp(logits - logits.max())
        p /= p.sum()
        expected = p * (v - (v * p).sum())
        assert np.allclose(g.data, expected, atol=1e-10)

    def test_axis_argument(self):
        x = Tensor(RNG.normal(size=(3, 4, 5)))
        out = F.softmax(x, axis=1)
        assert np.allclose(out.data.sum(axis=1), 1.0)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = Tensor(RNG.normal(size=(4, 6)))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data),
                           atol=1e-12)

    def test_stable_at_extremes(self):
        x = Tensor(np.array([[500.0, -500.0]]))
        out = F.log_softmax(x)
        assert np.all(np.isfinite(out.data))


class TestCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        logits = Tensor(np.zeros((3, 5)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2]))
        assert np.isclose(loss.item(), np.log(5))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-8

    def test_gradient_is_softmax_minus_onehot(self):
        logits = RNG.normal(size=(4, 3))
        labels = np.array([0, 1, 2, 0])
        t = Tensor(logits.copy(), requires_grad=True)
        (g,) = grad(F.cross_entropy(t, labels), [t])
        p = np.exp(logits - logits.max(1, keepdims=True))
        p /= p.sum(1, keepdims=True)
        onehot = np.eye(3)[labels]
        assert np.allclose(g.data, (p - onehot) / 4, atol=1e-10)


class TestMSE:
    def test_known_value(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 4.0]))
        assert np.isclose(loss.item(), (1 + 4) / 2)

    def test_zero_at_equal(self):
        x = Tensor(RNG.normal(size=(3, 3)))
        assert F.mse_loss(x, Tensor(x.data.copy())).item() == 0.0


class TestNorms:
    def test_l2_norm_matches_numpy(self):
        x = RNG.normal(size=(4, 5))
        out = F.l2_norm(Tensor(x), axis=1)
        assert np.allclose(out.data, np.linalg.norm(x, axis=1), atol=1e-6)

    def test_gradient_penalty_norm_flattens(self):
        g = RNG.normal(size=(3, 4, 5))
        out = F.gradient_penalty_norm(Tensor(g))
        expected = np.linalg.norm(g.reshape(3, -1), axis=1)
        assert np.allclose(out.data, expected, atol=1e-6)

    def test_l2_norm_finite_gradient_at_zero(self):
        t = Tensor(np.zeros((2, 3)), requires_grad=True)
        out = F.l2_norm(t, axis=1)
        (g,) = grad(out.sum(), [t])
        assert np.all(np.isfinite(g.data))


class TestBCE:
    def test_matches_naive_formula(self):
        logits = RNG.normal(size=(6,))
        targets = RNG.uniform(size=(6,))
        loss = F.binary_cross_entropy_with_logits(Tensor(logits),
                                                  Tensor(targets))
        p = 1 / (1 + np.exp(-logits))
        naive = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert np.isclose(loss.item(), naive, atol=1e-10)

    def test_stable_at_extreme_logits(self):
        loss = F.binary_cross_entropy_with_logits(
            Tensor([1000.0, -1000.0]), Tensor([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-8


class TestLeakyRelu:
    def test_values(self):
        out = F.leaky_relu(Tensor([-2.0, 3.0]), negative_slope=0.1)
        assert np.allclose(out.data, [-0.2, 3.0])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-50, 50), min_size=2, max_size=10))
def test_softmax_probabilities_property(logits):
    out = F.softmax(Tensor(np.array([logits])))
    assert np.all(out.data >= 0)
    assert np.isclose(out.data.sum(), 1.0)
