"""Parity and gradcheck tests for the fused kernels (repro.nn.kernels).

Every fused kernel is checked three ways: forward parity against the
reference op-by-op path, gradient parity against the reference path, and
gradients against central finite differences (the same pattern as
tests/nn/test_double_backprop.py).
"""

import numpy as np
import pytest

from repro.nn import (LSTM, MLP, Linear, LSTMCell, Tensor, grad, kernels,
                      ops)

RNG = np.random.default_rng(99)


def numeric_grad(f, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = f()
        flat[i] = orig - eps
        down = f()
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return g


class TestFusedLinear:
    def test_forward_matches_reference(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(7, 5)))
        with kernels.fused_kernels(True):
            fused = layer(x)
        with kernels.fused_kernels(False):
            reference = layer(x)
        assert np.array_equal(fused.data, reference.data)

    def test_gradients_match_reference_and_finite_difference(self):
        layer = Linear(4, 3, rng=np.random.default_rng(1))
        x = Tensor(RNG.normal(size=(6, 4)), requires_grad=True)
        wanted = [x, layer.weight, layer.bias]

        with kernels.fused_kernels(True):
            g_fused = grad((layer(x) ** 2).sum(), wanted)
        with kernels.fused_kernels(False):
            g_ref = grad((layer(x) ** 2).sum(), wanted)
        for gf, gr in zip(g_fused, g_ref):
            assert np.allclose(gf.data, gr.data, atol=1e-12)

        def value() -> float:
            out = x.data @ layer.weight.data + layer.bias.data
            return float((out ** 2).sum())

        for tensor, gf in zip(wanted, g_fused):
            expected = numeric_grad(value, tensor.data)
            assert np.allclose(gf.data, expected, atol=1e-4)

    def test_second_order_through_fused_linear(self):
        # The critic path must support double backprop with fused linear on.
        mlp = MLP(4, [8], 1, activation="tanh", rng=np.random.default_rng(2))
        x = Tensor(RNG.normal(size=(5, 4)), requires_grad=True)
        with kernels.fused_kernels(True):
            (g1,) = grad(mlp(x).sum(), [x], create_graph=True)
            penalty = (g1 ** 2).sum()
            weights = [p for p in mlp.parameters() if p.ndim == 2]
            analytic = grad(penalty, weights, allow_unused=True)

        def penalty_value() -> float:
            xt = Tensor(x.data, requires_grad=True)
            with kernels.fused_kernels(False):
                (gg,) = grad(mlp(xt).sum(), [xt])
            return float((gg.data ** 2).sum())

        for w, ga in zip(weights, analytic):
            expected = numeric_grad(penalty_value, w.data)
            assert np.allclose(ga.data, expected, atol=1e-4)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            kernels.linear(Tensor(np.zeros((2, 3, 4))),
                           Tensor(np.zeros((4, 2))), Tensor(np.zeros(2)))


class TestFusedLSTMCell:
    def _cell(self, seed=3):
        return LSTMCell(3, 5, rng=np.random.default_rng(seed))

    def test_forward_matches_reference(self):
        cell = self._cell()
        x = Tensor(RNG.normal(size=(4, 3)))
        state = cell.initial_state(4)
        with kernels.fused_kernels(True):
            hf, cf = cell(x, state)
        with kernels.fused_kernels(False):
            hr, cr = cell(x, state)
        assert np.array_equal(hf.data, hr.data)
        assert np.array_equal(cf.data, cr.data)

    def test_gradients_match_reference(self):
        cell = self._cell()
        x = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        h0 = Tensor(RNG.normal(size=(4, 5)) * 0.3, requires_grad=True)
        c0 = Tensor(RNG.normal(size=(4, 5)) * 0.3, requires_grad=True)
        wanted = [x, h0, c0, cell.weight_ih, cell.weight_hh, cell.bias]

        def loss_through(two_steps: bool):
            # Two chained steps so h AND c both carry gradient backwards.
            h, c = cell(x, (h0, c0))
            if two_steps:
                h, c = cell(x, (h, c))
            return (h * h).sum() + (c * c).sum()

        with kernels.fused_kernels(True):
            g_fused = grad(loss_through(True), wanted)
        with kernels.fused_kernels(False):
            g_ref = grad(loss_through(True), wanted)
        for gf, gr in zip(g_fused, g_ref):
            assert np.allclose(gf.data, gr.data, atol=1e-10)

    def test_gradients_match_finite_difference(self):
        cell = self._cell(seed=4)
        x = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        h0 = Tensor(RNG.normal(size=(2, 5)) * 0.2, requires_grad=True)
        c0 = Tensor(RNG.normal(size=(2, 5)) * 0.2, requires_grad=True)
        wanted = [x, h0, c0, cell.weight_ih, cell.weight_hh, cell.bias]
        with kernels.fused_kernels(True):
            h, c = cell(x, (h0, c0))
            g_fused = grad((h * h).sum() + (c * c).sum(), wanted)

        def value() -> float:
            with kernels.fused_kernels(False):
                h, c = cell(Tensor(x.data), (Tensor(h0.data),
                                             Tensor(c0.data)))
            return float((h.data ** 2).sum() + (c.data ** 2).sum())

        for tensor, gf in zip(wanted, g_fused):
            expected = numeric_grad(value, tensor.data)
            assert np.allclose(gf.data, expected, atol=1e-4)

    def test_higher_order_raises_with_clear_message(self):
        cell = self._cell()
        x = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        with kernels.fused_kernels(True):
            h, _ = cell(x, cell.initial_state(2))
            with pytest.raises(RuntimeError, match="first-order"):
                grad((h * h).sum(), [x], create_graph=True)


class TestFusedLSTMSequence:
    def _lstm(self, seed=5):
        return LSTM(3, 4, rng=np.random.default_rng(seed))

    def test_forward_matches_reference(self):
        lstm = self._lstm()
        x = Tensor(RNG.normal(size=(4, 6, 3)))
        with kernels.fused_kernels(True):
            fused = lstm(x)
        with kernels.fused_kernels(False):
            reference = lstm(x)
        assert fused.shape == (4, 6, 4)
        assert np.allclose(fused.data, reference.data, atol=1e-14)

    def test_gradients_match_reference_all_parameters(self):
        lstm = self._lstm(seed=6)
        cell = lstm.cell
        x = Tensor(RNG.normal(size=(3, 5, 3)), requires_grad=True)
        h0 = Tensor(RNG.normal(size=(3, 4)) * 0.3, requires_grad=True)
        c0 = Tensor(RNG.normal(size=(3, 4)) * 0.3, requires_grad=True)
        wanted = [x, h0, c0, cell.weight_ih, cell.weight_hh, cell.bias]
        with kernels.fused_kernels(True):
            g_fused = grad((lstm(x, (h0, c0)) ** 2).sum(), wanted)
        with kernels.fused_kernels(False):
            g_ref = grad((lstm(x, (h0, c0)) ** 2).sum(), wanted)
        for gf, gr in zip(g_fused, g_ref):
            assert gf.shape == gr.shape
            assert np.allclose(gf.data, gr.data, atol=1e-10)
            assert float(np.abs(gf.data).sum()) > 0  # gradient actually flows

    def test_gradients_match_finite_difference(self):
        lstm = self._lstm(seed=7)
        cell = lstm.cell
        x = Tensor(RNG.normal(size=(2, 4, 3)), requires_grad=True)
        h0 = Tensor(RNG.normal(size=(2, 4)) * 0.2, requires_grad=True)
        c0 = Tensor(RNG.normal(size=(2, 4)) * 0.2, requires_grad=True)
        wanted = [x, h0, c0, cell.weight_ih, cell.weight_hh, cell.bias]
        with kernels.fused_kernels(True):
            g_fused = grad((lstm(x, (h0, c0)) ** 2).sum(), wanted)

        def value() -> float:
            with kernels.fused_kernels(False):
                out = lstm(Tensor(x.data), (Tensor(h0.data), Tensor(c0.data)))
            return float((out.data ** 2).sum())

        for tensor, gf in zip(wanted, g_fused):
            expected = numeric_grad(value, tensor.data)
            assert np.allclose(gf.data, expected, atol=1e-4)

    def test_higher_order_raises_with_clear_message(self):
        lstm = self._lstm()
        x = Tensor(RNG.normal(size=(2, 3, 3)), requires_grad=True)
        with kernels.fused_kernels(True):
            out = lstm(x)
            with pytest.raises(RuntimeError, match="fused_kernels"):
                grad((out ** 2).sum(), [x], create_graph=True)

    def test_rejects_non_3d(self):
        cell = LSTMCell(3, 4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="batch, time, features"):
            kernels.lstm_sequence(Tensor(np.zeros((2, 3))),
                                  Tensor(np.zeros((2, 4))),
                                  Tensor(np.zeros((2, 4))),
                                  cell.weight_ih, cell.weight_hh, cell.bias)


class TestDispatchFlag:
    def test_flag_scoping_restores_previous_value(self):
        assert kernels.fused_enabled()
        with kernels.fused_kernels(False):
            assert not kernels.fused_enabled()
            with kernels.fused_kernels(True):
                assert kernels.fused_enabled()
            assert not kernels.fused_enabled()
        assert kernels.fused_enabled()

    def test_graph_node_reduction_per_lstm_step(self):
        """The tentpole target: >=3x fewer graph nodes per LSTM step."""

        def count_nodes(root: Tensor) -> int:
            seen, stack = set(), [root]
            while stack:
                node = stack.pop()
                if id(node) in seen or node.is_leaf:
                    continue
                seen.add(id(node))
                stack.extend(node._parents)
            return len(seen)

        lstm = LSTM(3, 4, rng=np.random.default_rng(8))
        steps = 6
        x = Tensor(RNG.normal(size=(2, steps, 3)), requires_grad=True)
        with kernels.fused_kernels(True):
            fused_nodes = count_nodes(lstm(x))
        with kernels.fused_kernels(False):
            reference_nodes = count_nodes(lstm(x))
        assert reference_nodes >= 3 * fused_nodes
        assert reference_nodes / steps >= 3 * max(fused_nodes / steps, 1 / steps)
