"""Tests for module save/load."""

import numpy as np
import pytest

from repro.nn import MLP, Tensor, load_module, save_module


def test_save_load_roundtrip(tmp_path):
    a = MLP(3, [5], 2, rng=np.random.default_rng(1))
    b = MLP(3, [5], 2, rng=np.random.default_rng(2))
    path = tmp_path / "weights.npz"
    save_module(a, path)
    load_module(b, path)
    x = Tensor(np.random.default_rng(3).normal(size=(4, 3)))
    assert np.allclose(a(x).data, b(x).data)


def test_load_into_wrong_architecture_raises(tmp_path):
    a = MLP(3, [5], 2, rng=np.random.default_rng(1))
    b = MLP(3, [5, 5], 2, rng=np.random.default_rng(2))
    path = tmp_path / "weights.npz"
    save_module(a, path)
    with pytest.raises(KeyError):
        load_module(b, path)


class TestLoadModuleHardening:
    def test_corrupted_archive_raises_clear_value_error(self, tmp_path):
        path = tmp_path / "weights.npz"
        path.write_bytes(b"garbage, not a zip archive")
        module = MLP(3, [5], 2, rng=np.random.default_rng(1))
        with pytest.raises(ValueError, match="corrupted"):
            load_module(module, path)

    def test_missing_file_raises_value_error(self, tmp_path):
        module = MLP(3, [5], 2, rng=np.random.default_rng(1))
        with pytest.raises(ValueError, match="missing"):
            load_module(module, tmp_path / "absent.npz")

    def test_shape_mismatch_names_parameter(self, tmp_path):
        a = MLP(3, [5], 2, rng=np.random.default_rng(1))
        b = MLP(3, [7], 2, rng=np.random.default_rng(2))
        # Same parameter names, different hidden width.
        path = tmp_path / "weights.npz"
        save_module(a, path)
        with pytest.raises(ValueError, match="layers.0.weight"):
            load_module(b, path)

    def test_key_mismatch_lists_names(self, tmp_path):
        a = MLP(3, [5], 2, rng=np.random.default_rng(1))
        b = MLP(3, [5, 5], 2, rng=np.random.default_rng(2))
        path = tmp_path / "weights.npz"
        save_module(a, path)
        with pytest.raises(KeyError, match="layers.2"):
            load_module(b, path)


class TestAtomicWrites:
    def test_save_npz_atomic_round_trip(self, tmp_path):
        from repro.nn.serialization import save_npz_atomic
        path = tmp_path / "arrays.npz"
        save_npz_atomic(path, {"x": np.arange(4.0)})
        with np.load(path) as archive:
            assert np.array_equal(archive["x"], np.arange(4.0))
        assert not (tmp_path / "arrays.npz.tmp").exists()

    def test_overwrite_is_atomic(self, tmp_path):
        from repro.nn.serialization import save_npz_atomic
        path = tmp_path / "arrays.npz"
        save_npz_atomic(path, {"x": np.zeros(2)})
        save_npz_atomic(path, {"x": np.ones(2)})
        with np.load(path) as archive:
            assert np.array_equal(archive["x"], np.ones(2))


class TestTrainingStateArchive:
    def _roundtrip(self, tmp_path):
        from repro.nn import Adam
        from repro.nn.serialization import (load_training_state,
                                            save_training_state)
        module = MLP(3, [5], 2, rng=np.random.default_rng(1))
        opt = Adam(module.parameters(), lr=0.01)
        opt.step([np.ones_like(p.data) for p in module.parameters()])
        rng = np.random.default_rng(7)
        rng.normal(size=10)  # advance the stream
        path = tmp_path / "state.npz"
        save_training_state(path, modules={"net": module},
                            optimizers={"opt": opt}, rng=rng,
                            iteration=17,
                            extra_arrays={"trace": np.array([1.5, 2.5])},
                            extra_meta={"note": "hello"})
        return module, opt, rng, load_training_state(path)

    def test_full_round_trip(self, tmp_path):
        module, opt, rng, state = self._roundtrip(tmp_path)
        assert state.iteration == 17
        assert state.extra_meta == {"note": "hello"}
        assert np.array_equal(state.extra_arrays["trace"],
                              [1.5, 2.5])
        for name, value in module.state_dict().items():
            assert np.array_equal(state.module_states["net"][name], value)
        restored = state.optimizer_states["opt"]
        assert restored["t"] == 1
        for a, b in zip(restored["m"], opt._m):
            assert np.array_equal(a, b)

    def test_rng_state_resumes_identical_stream(self, tmp_path):
        _, _, rng, state = self._roundtrip(tmp_path)
        fresh = np.random.default_rng(0)
        fresh.bit_generator.state = state.rng_state
        assert np.array_equal(fresh.normal(size=5), rng.normal(size=5))
