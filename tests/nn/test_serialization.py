"""Tests for module save/load."""

import numpy as np
import pytest

from repro.nn import MLP, Tensor, load_module, save_module


def test_save_load_roundtrip(tmp_path):
    a = MLP(3, [5], 2, rng=np.random.default_rng(1))
    b = MLP(3, [5], 2, rng=np.random.default_rng(2))
    path = tmp_path / "weights.npz"
    save_module(a, path)
    load_module(b, path)
    x = Tensor(np.random.default_rng(3).normal(size=(4, 3)))
    assert np.allclose(a(x).data, b(x).data)


def test_load_into_wrong_architecture_raises(tmp_path):
    a = MLP(3, [5], 2, rng=np.random.default_rng(1))
    b = MLP(3, [5, 5], 2, rng=np.random.default_rng(2))
    path = tmp_path / "weights.npz"
    save_module(a, path)
    with pytest.raises(KeyError):
        load_module(b, path)
