"""Finite-difference gradient checks for every primitive op."""

import numpy as np
import pytest

from repro.nn import Tensor, grad, ops


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued f at x."""
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = f(x)
        flat[i] = orig - eps
        down = f(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return g


def check_unary(op, np_ref, x: np.ndarray, atol: float = 1e-6):
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t)
    assert np.allclose(out.data, np_ref(x), atol=1e-10)
    (g,) = grad(out.sum(), [t])
    expected = numeric_grad(lambda a: np_ref(a).sum(), x.copy())
    assert np.allclose(g.data, expected, atol=atol), op.__name__


RNG = np.random.default_rng(0)


class TestUnaryOps:
    def test_neg(self):
        check_unary(ops.neg, lambda a: -a, RNG.normal(size=(3, 4)))

    def test_exp(self):
        check_unary(ops.exp, np.exp, RNG.normal(size=(3, 4)))

    def test_log(self):
        check_unary(ops.log, np.log, RNG.uniform(0.5, 2.0, size=(3, 4)))

    def test_tanh(self):
        check_unary(ops.tanh, np.tanh, RNG.normal(size=(3, 4)))

    def test_sigmoid(self):
        check_unary(ops.sigmoid, lambda a: 1 / (1 + np.exp(-a)),
                    RNG.normal(size=(3, 4)))

    def test_sigmoid_extreme_values_stable(self):
        out = ops.sigmoid(Tensor([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out.data))
        assert np.allclose(out.data, [0.0, 1.0])

    def test_relu(self):
        x = RNG.normal(size=(5, 5))
        x[np.abs(x) < 0.1] = 0.5  # avoid the kink for finite differences
        check_unary(ops.relu, lambda a: np.maximum(a, 0), x)

    def test_abs(self):
        x = RNG.normal(size=(4, 4))
        x[np.abs(x) < 0.1] = 0.5
        check_unary(ops.abs_, np.abs, x)

    def test_sqrt(self):
        check_unary(ops.sqrt, np.sqrt, RNG.uniform(0.5, 2.0, size=(3,)))

    def test_power(self):
        x = RNG.uniform(0.5, 2.0, size=(3, 3))
        t = Tensor(x.copy(), requires_grad=True)
        out = ops.power(t, 3.0)
        (g,) = grad(out.sum(), [t])
        assert np.allclose(g.data, 3 * x ** 2, atol=1e-8)


class TestBinaryOps:
    @pytest.mark.parametrize("op,np_op", [
        (ops.add, np.add), (ops.sub, np.subtract),
        (ops.mul, np.multiply), (ops.div, np.divide),
        (ops.maximum, np.maximum), (ops.minimum, np.minimum),
    ])
    def test_same_shape(self, op, np_op):
        a = RNG.uniform(0.5, 2.0, size=(3, 4))
        b = RNG.uniform(0.5, 2.0, size=(3, 4))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        out = op(ta, tb)
        assert np.allclose(out.data, np_op(a, b))
        ga, gb = grad(out.sum(), [ta, tb])
        na = numeric_grad(lambda x: np_op(x, b).sum(), a.copy())
        nb = numeric_grad(lambda x: np_op(a, x).sum(), b.copy())
        assert np.allclose(ga.data, na, atol=1e-6)
        assert np.allclose(gb.data, nb, atol=1e-6)

    @pytest.mark.parametrize("shape_a,shape_b", [
        ((3, 4), (4,)), ((3, 4), (1, 4)), ((3, 1), (1, 4)),
        ((2, 3, 4), (3, 4)), ((5,), ()),
    ])
    def test_broadcasting_gradients(self, shape_a, shape_b):
        a = RNG.normal(size=shape_a)
        b = RNG.normal(size=shape_b)
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        out = ops.mul(ta, tb)
        ga, gb = grad(out.sum(), [ta, tb])
        assert ga.shape == np.shape(a)
        assert gb.shape == np.shape(b)
        na = numeric_grad(lambda x: (x * b).sum(), a.copy())
        nb = numeric_grad(lambda x: (a * x).sum(), b.copy())
        assert np.allclose(ga.data, na, atol=1e-6)
        assert np.allclose(gb.data, nb, atol=1e-6)

    def test_python_scalar_operands(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = 2.0 * x + 1.0 - x / 2.0
        (g,) = grad(y.sum(), [x])
        assert np.allclose(g.data, [1.5, 1.5])

    def test_numpy_array_left_operand(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = np.array([3.0, 4.0]) * x
        assert isinstance(y, Tensor)
        (g,) = grad(y.sum(), [x])
        assert np.allclose(g.data, [3.0, 4.0])


class TestMatmul:
    def test_2d(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4, 5))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        out = ops.matmul(ta, tb)
        ga, gb = grad(out.sum(), [ta, tb])
        assert np.allclose(ga.data,
                           numeric_grad(lambda x: (x @ b).sum(), a.copy()),
                           atol=1e-6)
        assert np.allclose(gb.data,
                           numeric_grad(lambda x: (a @ x).sum(), b.copy()),
                           atol=1e-6)

    def test_batched(self):
        a = RNG.normal(size=(2, 3, 4))
        b = RNG.normal(size=(4, 5))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        out = ops.matmul(ta, tb)
        assert out.shape == (2, 3, 5)
        ga, gb = grad(out.sum(), [ta, tb])
        assert ga.shape == (2, 3, 4)
        assert gb.shape == (4, 5)
        assert np.allclose(gb.data,
                           numeric_grad(lambda x: (a @ x).sum(), b.copy()),
                           atol=1e-6)

    def test_1d_rejected(self):
        with pytest.raises(ValueError, match="ndim >= 2"):
            ops.matmul(Tensor([1.0, 2.0]), Tensor([[1.0], [2.0]]))


class TestReductions:
    @pytest.mark.parametrize("axis,keepdims", [
        (None, False), (0, False), (1, True), ((0, 1), False), (-1, False),
    ])
    def test_sum(self, axis, keepdims):
        x = RNG.normal(size=(3, 4))
        t = Tensor(x.copy(), requires_grad=True)
        out = ops.sum_(t, axis=axis, keepdims=keepdims)
        assert np.allclose(out.data, x.sum(axis=axis, keepdims=keepdims))
        (g,) = grad((out * out).sum(), [t])
        expected = numeric_grad(
            lambda a: (a.sum(axis=axis, keepdims=keepdims) ** 2).sum(),
            x.copy())
        assert np.allclose(g.data, expected, atol=1e-5)

    def test_mean(self):
        x = RNG.normal(size=(4, 6))
        t = Tensor(x.copy(), requires_grad=True)
        (g,) = grad(ops.mean(t), [t])
        assert np.allclose(g.data, np.full_like(x, 1.0 / 24))

    def test_mean_axis(self):
        x = RNG.normal(size=(4, 6))
        t = Tensor(x.copy(), requires_grad=True)
        out = ops.mean(t, axis=0)
        assert out.shape == (6,)
        (g,) = grad(out.sum(), [t])
        assert np.allclose(g.data, np.full_like(x, 0.25))


class TestShapeOps:
    def test_reshape_grad(self):
        x = RNG.normal(size=(2, 6))
        t = Tensor(x.copy(), requires_grad=True)
        out = ops.reshape(t, (3, 4))
        (g,) = grad((out * out).sum(), [t])
        assert g.shape == (2, 6)
        assert np.allclose(g.data, 2 * x)

    def test_reshape_minus_one(self):
        t = Tensor(np.zeros((2, 6)))
        assert ops.reshape(t, (4, -1)).shape == (4, 3)

    def test_transpose_grad(self):
        x = RNG.normal(size=(2, 3, 4))
        t = Tensor(x.copy(), requires_grad=True)
        out = ops.transpose(t, (2, 0, 1))
        assert out.shape == (4, 2, 3)
        (g,) = grad((out * out).sum(), [t])
        assert np.allclose(g.data, 2 * x)

    def test_swapaxes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert ops.swapaxes(t, -1, -2).shape == (2, 4, 3)

    def test_broadcast_to_grad(self):
        x = RNG.normal(size=(1, 4))
        t = Tensor(x.copy(), requires_grad=True)
        out = ops.broadcast_to(t, (3, 4))
        (g,) = grad(out.sum(), [t])
        assert g.shape == (1, 4)
        assert np.allclose(g.data, 3.0)

    def test_concat_grads(self):
        a = RNG.normal(size=(2, 3))
        b = RNG.normal(size=(2, 5))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        out = ops.concat([ta, tb], axis=1)
        assert out.shape == (2, 8)
        scale = Tensor(np.arange(8.0))
        ga, gb = grad((out * scale).sum(), [ta, tb])
        assert np.allclose(ga.data, np.tile(np.arange(3.0), (2, 1)))
        assert np.allclose(gb.data, np.tile(np.arange(3.0, 8.0), (2, 1)))

    def test_stack(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 3)) * 2, requires_grad=True)
        out = ops.stack([a, b], axis=1)
        assert out.shape == (2, 2, 3)
        ga, gb = grad(out.sum(), [a, b])
        assert np.allclose(ga.data, 1.0)
        assert np.allclose(gb.data, 1.0)


class TestIndexing:
    def test_slice_grad(self):
        x = RNG.normal(size=(4, 6))
        t = Tensor(x.copy(), requires_grad=True)
        out = t[1:3, ::2]
        (g,) = grad(out.sum(), [t])
        expected = np.zeros_like(x)
        expected[1:3, ::2] = 1.0
        assert np.allclose(g.data, expected)

    def test_fancy_index_with_duplicates_accumulates(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        idx = np.array([0, 0, 2])
        out = t[idx]
        (g,) = grad(out.sum(), [t])
        assert np.allclose(g.data, [2.0, 0.0, 1.0])

    def test_int_index(self):
        t = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        out = t[1]
        assert out.shape == (4,)
        (g,) = grad(out.sum(), [t])
        assert g.data[1].sum() == 4.0
        assert g.data[[0, 2]].sum() == 0.0

    def test_ellipsis_style_time_slice(self):
        t = Tensor(np.ones((2, 5, 3)), requires_grad=True)
        out = t[:, 2, :]
        (g,) = grad(out.sum(), [t])
        assert g.data.sum() == 6.0


class TestClip:
    def test_clip_values_and_grad(self):
        x = np.array([-2.0, 0.5, 3.0])
        t = Tensor(x.copy(), requires_grad=True)
        out = ops.clip(t, 0.0, 1.0)
        assert np.allclose(out.data, [0.0, 0.5, 1.0])
        (g,) = grad(out.sum(), [t])
        assert np.allclose(g.data, [0.0, 1.0, 0.0])
