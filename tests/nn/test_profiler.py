"""Tests for the op-level profiler (repro.nn.profiler)."""

import numpy as np

from repro.nn import MLP, Tensor, grad, kernels, profiler


RNG = np.random.default_rng(17)


class TestOpProfiler:
    def test_inactive_by_default_records_nothing(self):
        profiler.PROFILER.reset()
        mlp = MLP(3, [4], 2, rng=np.random.default_rng(0))
        mlp(Tensor(RNG.normal(size=(2, 3))))
        assert profiler.PROFILER.total_calls() == 0

    def test_profile_context_records_forward_and_backward(self):
        mlp = MLP(3, [4], 2, rng=np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        with profiler.profile() as prof:
            loss = (mlp(x) ** 2).sum()
            grad(loss, mlp.parameters(), allow_unused=True)
        stats = prof.stats()
        assert "linear" in stats  # fused forward
        assert "matmul" in stats  # differentiable linear VJP
        assert all(entry["calls"] >= 1 and entry["seconds"] >= 0.0
                   for entry in stats.values())
        # Deactivated on exit.
        before = prof.total_calls()
        mlp(Tensor(RNG.normal(size=(2, 3))))
        assert prof.total_calls() == before

    def test_fused_lstm_records_kernel_and_backward(self):
        from repro.nn import LSTM
        lstm = LSTM(3, 4, rng=np.random.default_rng(1))
        x = Tensor(RNG.normal(size=(2, 5, 3)), requires_grad=True)
        with kernels.fused_kernels(True), profiler.profile() as prof:
            grad((lstm(x) ** 2).sum(), [x])
        stats = prof.stats()
        assert stats["lstm_sequence"]["calls"] == 1
        assert stats["lstm_sequence.backward"]["calls"] == 1

    def test_summary_is_sorted_and_aligned(self):
        with profiler.profile() as prof:
            prof.record("slow_op", 2.0)
            prof.record("fast_op", 0.5)
        lines = prof.summary().splitlines()
        assert lines[0].split() == ["op", "calls", "seconds", "allocs"]
        assert lines[1].startswith("slow_op")
        assert lines[2].startswith("fast_op")
        assert prof.summary(top=1).count("\n") == 1

    def test_trainer_profile_option(self, tiny_gcut):
        from repro.core import DoppelGANger
        from tests.conftest import tiny_dg_config
        model = DoppelGANger(tiny_gcut.schema, tiny_dg_config(iterations=2))
        history = model.fit(tiny_gcut)
        assert history.op_profile is None
        history = model.trainer.train(
            model.encoder.transform(tiny_gcut), iterations=2, profile=True)
        assert history.op_profile
        assert "lstm_sequence" in history.op_profile


class TestStatsOrdering:
    def test_seconds_ties_break_by_op_name(self):
        """Equal-seconds ops sort alphabetically, so reports are stable
        regardless of recording (insertion) order."""
        from repro.nn.profiler import OpProfiler
        prof = OpProfiler()
        prof.record("tanh", 0.5)
        prof.record("add", 0.5)
        prof.record("matmul", 0.5)
        prof.record("exp", 1.0)
        assert list(prof.stats()) == ["exp", "add", "matmul", "tanh"]

    def test_reversed_insertion_gives_same_order(self):
        from repro.nn.profiler import OpProfiler
        a, b = OpProfiler(), OpProfiler()
        for name in ("add", "mul", "sum"):
            a.record(name, 0.25)
        for name in ("sum", "mul", "add"):
            b.record(name, 0.25)
        assert list(a.stats()) == list(b.stats())
