"""Tests for Module / Linear / MLP / LSTM layers."""

import numpy as np
import pytest

from repro.nn import LSTM, MLP, Linear, LSTMCell, Sequential, Tensor, grad


RNG = np.random.default_rng(11)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 7, rng=RNG)
        assert layer(Tensor(np.zeros((3, 4)))).shape == (3, 7)

    def test_is_affine(self):
        layer = Linear(3, 2, rng=RNG)
        x = RNG.normal(size=(5, 3))
        out = layer(Tensor(x))
        assert np.allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_parameters(self):
        layer = Linear(3, 2, rng=RNG)
        params = layer.parameters()
        assert len(params) == 2
        shapes = {p.shape for p in params}
        assert shapes == {(3, 2), (2,)}


class TestMLP:
    def test_hidden_stack(self):
        mlp = MLP(4, [8, 16], 2, rng=RNG)
        assert len(mlp.layers) == 3
        assert mlp(Tensor(np.zeros((5, 4)))).shape == (5, 2)

    def test_no_hidden_layers(self):
        mlp = MLP(4, [], 2, rng=RNG)
        assert len(mlp.layers) == 1

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError, match="unknown activation"):
            MLP(4, [8], 2, activation="selu", rng=RNG)

    @pytest.mark.parametrize("activation",
                             ["relu", "tanh", "sigmoid", "leaky_relu", "none"])
    def test_all_activations_run(self, activation):
        mlp = MLP(3, [5], 2, activation=activation, rng=RNG)
        out = mlp(Tensor(RNG.normal(size=(4, 3))))
        assert np.all(np.isfinite(out.data))

    def test_gradients_flow_to_all_layers(self):
        mlp = MLP(3, [5, 5], 1, rng=RNG)
        out = mlp(Tensor(RNG.normal(size=(4, 3)))).sum()
        grads = grad(out, mlp.parameters(), allow_unused=True)
        assert all(g is not None for g in grads)


class TestLSTMCell:
    def test_state_shapes(self):
        cell = LSTMCell(4, 8, rng=RNG)
        h, c = cell.initial_state(5)
        assert h.shape == (5, 8)
        h2, c2 = cell(Tensor(np.zeros((5, 4))), (h, c))
        assert h2.shape == (5, 8)
        assert c2.shape == (5, 8)

    def test_forget_bias_initialised_to_one(self):
        cell = LSTMCell(4, 8, rng=RNG)
        assert np.allclose(cell.bias.data[8:16], 1.0)
        assert np.allclose(cell.bias.data[:8], 0.0)

    def test_state_propagates_information(self):
        cell = LSTMCell(1, 4, rng=np.random.default_rng(0))
        state = cell.initial_state(1)
        out_a, _ = cell(Tensor([[1.0]]), state)
        # Process a distinctive first input, then a zero input; hidden state
        # must differ from processing zeros from scratch.
        h, c = cell(Tensor([[5.0]]), state)
        out_b, _ = cell(Tensor([[1.0]]), (h, c))
        assert not np.allclose(out_a.data, out_b.data)

    def test_bounded_outputs(self):
        cell = LSTMCell(2, 3, rng=RNG)
        h, c = cell(Tensor(RNG.normal(size=(4, 2)) * 100),
                    cell.initial_state(4))
        assert np.all(np.abs(h.data) <= 1.0)


class TestLSTM:
    def test_sequence_shape(self):
        lstm = LSTM(3, 6, rng=RNG)
        out = lstm(Tensor(RNG.normal(size=(2, 5, 3))))
        assert out.shape == (2, 5, 6)

    def test_gradients_through_time(self):
        lstm = LSTM(2, 4, rng=RNG)
        out = (lstm(Tensor(RNG.normal(size=(2, 6, 2)))) ** 2).sum()
        grads = grad(out, lstm.parameters())
        assert all(np.isfinite(g.data).all() for g in grads)
        assert all(float(np.abs(g.data).sum()) > 0 for g in grads)


class TestModuleStateDict:
    def test_roundtrip(self):
        a = MLP(3, [4], 2, rng=np.random.default_rng(1))
        b = MLP(3, [4], 2, rng=np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        x = Tensor(RNG.normal(size=(5, 3)))
        assert np.allclose(a(x).data, b(x).data)

    def test_named_parameters_unique(self):
        mlp = MLP(3, [4, 4], 2, rng=RNG)
        names = [n for n, _ in mlp.named_parameters()]
        assert len(names) == len(set(names)) == 6

    def test_missing_key_raises(self):
        mlp = MLP(3, [4], 2, rng=RNG)
        state = mlp.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError, match="missing"):
            mlp.load_state_dict(state)

    def test_unexpected_key_raises(self):
        mlp = MLP(3, [4], 2, rng=RNG)
        state = mlp.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            mlp.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        mlp = MLP(3, [4], 2, rng=RNG)
        state = mlp.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((99, 99))
        with pytest.raises(ValueError, match="shape mismatch"):
            mlp.load_state_dict(state)

    def test_num_parameters(self):
        mlp = MLP(3, [4], 2, rng=RNG)
        assert mlp.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2


class TestSequential:
    def test_chains_modules(self):
        seq = Sequential(Linear(3, 5, rng=RNG), Linear(5, 2, rng=RNG))
        assert seq(Tensor(np.zeros((4, 3)))).shape == (4, 2)
        assert len(seq.parameters()) == 4


class TestGRUCell:
    def test_state_shape(self):
        from repro.nn import GRUCell
        cell = GRUCell(4, 8, rng=RNG)
        h = cell.initial_state(5)
        h2 = cell(Tensor(np.zeros((5, 4))), h)
        assert h2.shape == (5, 8)

    def test_bounded_outputs(self):
        from repro.nn import GRUCell
        cell = GRUCell(2, 3, rng=RNG)
        h = cell(Tensor(RNG.normal(size=(4, 2)) * 100),
                 cell.initial_state(4))
        assert np.all(np.abs(h.data) <= 1.0)

    def test_state_carries_information(self):
        from repro.nn import GRUCell
        cell = GRUCell(1, 4, rng=np.random.default_rng(3))
        fresh = cell.initial_state(1)
        out_a = cell(Tensor([[1.0]]), fresh)
        primed = cell(Tensor([[5.0]]), fresh)
        out_b = cell(Tensor([[1.0]]), primed)
        assert not np.allclose(out_a.data, out_b.data)

    def test_gradients_flow(self):
        from repro.nn import GRUCell
        cell = GRUCell(3, 5, rng=RNG)
        # Two steps: the recurrent weights only receive gradient once the
        # hidden state is non-zero.
        h = cell(Tensor(RNG.normal(size=(2, 3))), cell.initial_state(2))
        h = cell(Tensor(RNG.normal(size=(2, 3))), h)
        grads = grad((h * h).sum(), cell.parameters())
        assert all(np.abs(g.data).sum() > 0 for g in grads)

    def test_fewer_parameters_than_lstm(self):
        from repro.nn import GRUCell, LSTMCell
        gru = GRUCell(4, 8, rng=RNG)
        lstm = LSTMCell(4, 8, rng=RNG)
        assert sum(p.size for p in gru.parameters()) < \
            sum(p.size for p in lstm.parameters())


class TestLayerNorm:
    def test_normalises_last_axis(self):
        from repro.nn import LayerNorm
        ln = LayerNorm(6)
        x = Tensor(RNG.normal(3.0, 5.0, size=(4, 6)))
        out = ln(x)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_gain_and_bias_applied(self):
        from repro.nn import LayerNorm
        ln = LayerNorm(4)
        ln.gain.data[:] = 2.0
        ln.bias.data[:] = 1.0
        out = ln(Tensor(RNG.normal(size=(3, 4))))
        assert np.allclose(out.data.mean(axis=-1), 1.0, atol=1e-9)

    def test_gradients_flow(self):
        from repro.nn import LayerNorm
        ln = LayerNorm(5)
        x = Tensor(RNG.normal(size=(2, 5)), requires_grad=True)
        out = (ln(x) ** 2).sum()
        grads = grad(out, [x] + ln.parameters())
        assert all(np.isfinite(g.data).all() for g in grads)

    def test_works_on_3d(self):
        from repro.nn import LayerNorm
        ln = LayerNorm(4)
        out = ln(Tensor(RNG.normal(size=(2, 3, 4))))
        assert out.shape == (2, 3, 4)
