"""Second-order differentiation tests: the WGAN-GP-critical machinery."""

import numpy as np

from repro.nn import MLP, Tensor, grad, ops
from repro.nn import functional as F


RNG = np.random.default_rng(42)


def numeric_grad(f, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = f()
        flat[i] = orig - eps
        down = f()
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return g


class TestSecondOrderPrimitives:
    def test_mul_second_order(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * x * x * x
        (g1,) = grad(y, [x], create_graph=True)
        (g2,) = grad(g1, [x])
        assert np.isclose(g2.item(), 12 * 4.0)  # 12x^2 at x=2

    def test_exp_second_order(self):
        x = Tensor(0.5, requires_grad=True)
        (g1,) = grad(ops.exp(x), [x], create_graph=True)
        (g2,) = grad(g1, [x])
        assert np.isclose(g2.item(), np.exp(0.5))

    def test_log_second_order(self):
        x = Tensor(2.0, requires_grad=True)
        (g1,) = grad(ops.log(x), [x], create_graph=True)
        (g2,) = grad(g1, [x])
        assert np.isclose(g2.item(), -1.0 / 4.0)

    def test_sigmoid_second_order(self):
        v = 0.3
        x = Tensor(v, requires_grad=True)
        (g1,) = grad(ops.sigmoid(x), [x], create_graph=True)
        (g2,) = grad(g1, [x])
        s = 1 / (1 + np.exp(-v))
        expected = s * (1 - s) * (1 - 2 * s)
        assert np.isclose(g2.item(), expected)

    def test_div_second_order(self):
        x = Tensor(2.0, requires_grad=True)
        y = Tensor(1.0) / x
        (g1,) = grad(y, [x], create_graph=True)
        (g2,) = grad(g1, [x])
        assert np.isclose(g2.item(), 2.0 / 8.0)  # d2/dx2 1/x = 2/x^3

    def test_matmul_second_order_mixed(self):
        # f(W) = sum((x W)^2); grad wrt x then wrt W (mixed partial).
        x = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        w = Tensor(RNG.normal(size=(3, 2)), requires_grad=True)
        y = (ops.matmul(x, w) ** 2).sum()
        (gx,) = grad(y, [x], create_graph=True)
        (gw,) = grad(gx.sum(), [w])
        # gx = 2 (x W) W^T; sum over entries, differentiate wrt W numerically.
        def f():
            return float((2 * (x.data @ w.data) @ w.data.T).sum())
        expected = numeric_grad(f, w.data)
        assert np.allclose(gw.data, expected, atol=1e-4)


class TestGradientPenalty:
    def test_penalty_through_mlp_matches_finite_difference(self):
        mlp = MLP(4, [8, 8], 1, activation="tanh",
                  rng=np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(6, 4)), requires_grad=True)

        def penalty_value() -> float:
            out = mlp(Tensor(x.data)).sum()
            xt = Tensor(x.data, requires_grad=True)
            o = mlp(xt).sum()
            (gg,) = grad(o, [xt])
            n = np.sqrt((gg.data ** 2).sum(axis=1) + 1e-12)
            return float(((n - 1) ** 2).mean())

        out = mlp(x).sum()
        (g,) = grad(out, [x], create_graph=True)
        norms = F.gradient_penalty_norm(g)
        penalty = ((norms - Tensor(1.0)) ** 2).mean()
        weights = [p for p in mlp.parameters() if p.ndim == 2]
        analytic = grad(penalty, weights, allow_unused=True)
        for w, ga in zip(weights, analytic):
            expected = numeric_grad(penalty_value, w.data)
            assert np.allclose(ga.data, expected, atol=1e-4)

    def test_penalty_zero_for_unit_gradient_critic(self):
        # A linear critic with unit-norm weight has ||grad|| == 1 everywhere.
        from repro.nn import Linear
        critic = Linear(3, 1, rng=np.random.default_rng(0))
        w = np.zeros((3, 1))
        w[0, 0] = 1.0
        critic.weight.data = w
        x = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
        (g,) = grad(critic(x).sum(), [x], create_graph=True)
        norms = F.gradient_penalty_norm(g)
        penalty = ((norms - Tensor(1.0)) ** 2).mean()
        assert penalty.item() < 1e-10

    def test_relu_second_order_is_zero(self):
        x = Tensor(np.array([1.0, -1.0]), requires_grad=True)
        y = (ops.relu(x) ** 2).sum()
        (g1,) = grad(y, [x], create_graph=True)
        # g1 = 2x on the positive side; second derivative of g1.sum() wrt x
        (g2,) = grad(g1.sum(), [x], allow_unused=True)
        assert np.allclose(g2.data, [2.0, 0.0])
