"""Plan compiler: trace/replay identity, guards, fallback behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Parameter, Tensor, grad, no_grad, profiler
from repro.nn import functional as F
from repro.nn import ops
from repro.nn.layers import MLP
from repro.nn.plan import PlanFunction, plan_mode


def _mlp_fn(mlp):
    def fn(x):
        out = mlp(Tensor(x))
        return (out,)
    return fn


def _make_mlp(activation="relu"):
    return MLP(6, [8, 8], 3, activation=activation,
               rng=np.random.default_rng(0))


class TestReplayIdentity:
    def test_mlp_forward_bitwise(self):
        mlp = _make_mlp()
        plan = PlanFunction(_mlp_fn(mlp))
        x = np.random.default_rng(1).normal(size=(5, 6))
        first = plan((x,))[0].copy()       # trace (eager)
        eager = mlp(Tensor(x.copy())).data
        replayed = plan((x,))[0]
        assert plan.stats == {"traces": 1, "replays": 1, "eager_calls": 0,
                              "fallbacks": 0}
        np.testing.assert_array_equal(first, eager)
        np.testing.assert_array_equal(replayed, eager)

    @pytest.mark.parametrize("activation",
                             ["relu", "tanh", "sigmoid", "leaky_relu"])
    def test_gradients_bitwise(self, activation):
        mlp = _make_mlp(activation)
        params = mlp.parameters()

        def fn(x, y):
            pred = mlp(Tensor(x))
            loss = ((pred - Tensor(y)) * (pred - Tensor(y))).mean()
            return (loss,) + tuple(grad(loss, params, allow_unused=True))

        rng = np.random.default_rng(2)
        x, y = rng.normal(size=(4, 6)), rng.normal(size=(4, 3))
        plan = PlanFunction(fn, params=params)
        traced = [a.copy() for a in plan((x, y))]
        replayed = plan((x, y))
        with plan_mode(False):
            eager = plan((x, y))
        assert plan.stats["replays"] == 1
        for t, r, e in zip(traced, replayed, eager):
            np.testing.assert_array_equal(t, e)
            np.testing.assert_array_equal(r, e)

    def test_softmax_and_reductions_bitwise(self):
        def fn(x):
            sm = F.softmax(Tensor(x), axis=-1)
            return (sm, sm.sum(axis=0))

        x = np.random.default_rng(3).normal(size=(4, 5)) * 30
        plan = PlanFunction(fn)
        traced = [a.copy() for a in plan((x,))]
        replayed = plan((x,))
        for t, r in zip(traced, replayed):
            np.testing.assert_array_equal(t, r)

    def test_double_backprop_bitwise(self):
        """Gradient-of-gradient (the WGAN-GP pattern) replays identically."""
        mlp = _make_mlp("tanh")
        params = mlp.parameters()

        def fn(x):
            inp = Tensor(x)
            inp.requires_grad = True
            out = mlp(inp).sum()
            (g,) = grad(out, [inp], create_graph=True)
            penalty = (g * g).sum()
            return (penalty,) + tuple(grad(penalty, params,
                                           allow_unused=True))

        x = np.random.default_rng(4).normal(size=(3, 6))
        plan = PlanFunction(fn, params=params)
        traced = [None if a is None else a.copy() for a in plan((x,))]
        replayed = plan((x,))
        assert plan.stats["replays"] == 1
        for t, r in zip(traced, replayed):
            if t is None:
                assert r is None
            else:
                np.testing.assert_array_equal(t, r)


class TestParameterLiveness:
    def test_param_update_visible_on_replay(self):
        p = Parameter(np.ones((3, 3)))

        def fn(x):
            return (ops.matmul(Tensor(x), p),)

        plan = PlanFunction(fn, params=[p])
        x = np.eye(3)
        plan((x,))
        p.data -= 0.5                      # in-place optimizer-style update
        np.testing.assert_array_equal(plan((x,))[0], np.full((3, 3), 0.5))

    def test_param_rebinding_visible_on_replay(self):
        """load_state_dict rebinds p.data to a new array; the plan must
        re-read the attribute, not hold the traced array."""
        p = Parameter(np.ones((3, 3)))

        def fn(x):
            return (ops.matmul(Tensor(x), p),)

        plan = PlanFunction(fn, params=[p])
        plan((np.eye(3),))
        p.data = np.full((3, 3), 2.0)      # fresh array, new id
        np.testing.assert_array_equal(plan((np.eye(3),))[0],
                                      np.full((3, 3), 2.0))


class TestGuardsAndFallback:
    def test_shape_change_retraces(self):
        mlp = _make_mlp()
        plan = PlanFunction(_mlp_fn(mlp))
        plan((np.zeros((4, 6)),))
        plan((np.zeros((7, 6)),))
        assert plan.stats["traces"] == 2
        plan((np.zeros((4, 6)),))
        assert plan.stats["replays"] == 1

    def test_unconsumed_input_falls_back(self):
        def fn(x, unused):
            return (ops.relu(Tensor(x)),)

        plan = PlanFunction(fn)
        x, unused = np.ones((2, 2)), np.ones(3)
        first = plan((x, unused))[0].copy()
        again = plan((x, unused))[0]
        assert plan.stats["fallbacks"] == 1
        assert plan.stats["eager_calls"] == 1
        np.testing.assert_array_equal(first, again)

    def test_input_returned_as_is_is_not_unconsumed(self):
        def fn(x, y):
            return (Tensor(x), ops.relu(Tensor(y)))

        plan = PlanFunction(fn)
        x, y = np.ones((2, 2)), -np.ones((2, 2))
        plan((x, y))
        out = plan((x, y))
        assert plan.stats["replays"] == 1
        np.testing.assert_array_equal(out[0], x)
        # Returned inputs are copied: mutating the result must not touch
        # the caller's array.
        out[0][0, 0] = 99.0
        assert x[0, 0] == 1.0

    def test_duplicate_input_array_falls_back(self):
        def fn(a, b):
            return (ops.add(Tensor(a), Tensor(b)),)

        plan = PlanFunction(fn)
        x = np.ones((2, 2))
        out = plan((x, x))[0]
        assert plan.stats["fallbacks"] == 1
        np.testing.assert_array_equal(out, 2 * x)

    def test_disabled_plan_runs_eager(self):
        mlp = _make_mlp()
        plan = PlanFunction(_mlp_fn(mlp))
        x = np.zeros((2, 6))
        with plan_mode(False):
            plan((x,))
            plan((x,))
        assert plan.stats == {"traces": 0, "replays": 0, "eager_calls": 2,
                              "fallbacks": 0}

    def test_max_plans_cap(self):
        mlp = _make_mlp()
        plan = PlanFunction(_mlp_fn(mlp), max_plans=2)
        for batch in (1, 2, 3, 4):
            plan((np.zeros((batch, 6)),))
        assert plan.stats["traces"] == 2
        assert plan.stats["eager_calls"] == 2


class TestArenaSafety:
    def test_copy_outputs_do_not_alias_across_replays(self):
        mlp = _make_mlp()
        plan = PlanFunction(_mlp_fn(mlp), copy_outputs=True)
        a = np.random.default_rng(5).normal(size=(3, 6))
        b = np.random.default_rng(6).normal(size=(3, 6))
        plan((a,))
        first = plan((a,))[0]
        snapshot = first.copy()
        plan((b,))                          # overwrites the arena
        np.testing.assert_array_equal(first, snapshot)

    def test_uncopied_outputs_valid_until_next_replay(self):
        mlp = _make_mlp()
        plan = PlanFunction(_mlp_fn(mlp))
        x = np.random.default_rng(7).normal(size=(3, 6))
        plan((x,))
        out = plan((x,))[0]
        np.testing.assert_array_equal(out, mlp(Tensor(x.copy())).data)

    def test_caller_mutation_of_outputs_is_safe(self):
        """Mutating a replay output (clip_grad_norm style) cannot corrupt
        later replays: every buffer is fully rewritten."""
        mlp = _make_mlp()
        params = mlp.parameters()

        def fn(x):
            loss = mlp(Tensor(x)).sum()
            return tuple(grad(loss, params, allow_unused=True))

        plan = PlanFunction(fn, params=params)
        x = np.random.default_rng(8).normal(size=(3, 6))
        plan((x,))
        reference = [g.copy() for g in plan((x,))]
        for g in plan((x,)):
            g *= 0.0                        # in-place caller mutation
        for ref, fresh in zip(reference, plan((x,))):
            np.testing.assert_array_equal(ref, fresh)


class TestProfilerIntegration:
    def test_replay_reports_allocs_through_profiler(self):
        mlp = _make_mlp()
        plan = PlanFunction(_mlp_fn(mlp))
        x = np.zeros((3, 6))
        plan((x,))
        with profiler.profile() as prof:
            plan((x,))
        stats = prof.stats()
        assert stats, "replay should record per-op entries"
        assert plan.stats["replays"] == 1
        assert "matmul" in stats or "linear" in stats
        # Replay allocation total matches the compiled plan's own count.
        assert prof.total_allocs() == plan.allocs_per_replay()

    def test_replay_allocates_far_less_than_eager(self):
        mlp = _make_mlp()
        params = mlp.parameters()

        def fn(x):
            loss = mlp(Tensor(x)).sum()
            return (loss,) + tuple(grad(loss, params, allow_unused=True))

        plan = PlanFunction(fn, params=params)
        x = np.random.default_rng(9).normal(size=(4, 6))
        with profiler.profile() as prof:
            plan((x,))                      # trace == eager execution
        eager_allocs = prof.total_allocs()
        assert plan.allocs_per_replay() * 10 <= eager_allocs
