"""Tests for DP-SGD gradient processing and the RDP accountant."""

import numpy as np
import pytest

from repro.nn.dp import (DEFAULT_ORDERS, DPGradientProcessor, compute_epsilon,
                         compute_rdp, noise_multiplier_for_epsilon,
                         rdp_to_epsilon)


class TestDPGradientProcessor:
    def test_clips_large_gradients(self):
        proc = DPGradientProcessor(l2_norm_clip=1.0, noise_multiplier=0.0,
                                   rng=np.random.default_rng(0))
        big = [np.array([30.0, 40.0])]  # norm 50 -> scaled by 1/50
        out = proc.aggregate([big])
        assert np.allclose(out[0], [0.6, 0.8])

    def test_small_gradients_untouched(self):
        proc = DPGradientProcessor(l2_norm_clip=10.0, noise_multiplier=0.0)
        small = [np.array([0.3, 0.4])]
        out = proc.aggregate([small])
        assert np.allclose(out[0], [0.3, 0.4])

    def test_averages_over_microbatches(self):
        proc = DPGradientProcessor(l2_norm_clip=100.0, noise_multiplier=0.0)
        out = proc.aggregate([[np.array([2.0])], [np.array([4.0])]])
        assert np.allclose(out[0], [3.0])

    def test_clip_norm_spans_all_parameters(self):
        proc = DPGradientProcessor(l2_norm_clip=1.0, noise_multiplier=0.0)
        grads = [np.array([3.0]), np.array([4.0])]  # joint norm 5
        out = proc.aggregate([grads])
        assert np.allclose(out[0], [0.6])
        assert np.allclose(out[1], [0.8])

    def test_noise_statistics(self):
        proc = DPGradientProcessor(l2_norm_clip=1.0, noise_multiplier=2.0,
                                   rng=np.random.default_rng(0))
        samples = np.array([
            proc.aggregate([[np.zeros(1)]])[0][0] for _ in range(3000)
        ])
        # std should be noise_multiplier * clip / num_microbatches = 2.0
        assert abs(samples.std() - 2.0) < 0.15
        assert abs(samples.mean()) < 0.15

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            DPGradientProcessor(l2_norm_clip=0.0, noise_multiplier=1.0)
        with pytest.raises(ValueError):
            DPGradientProcessor(l2_norm_clip=1.0, noise_multiplier=-1.0)

    def test_empty_batch_raises(self):
        proc = DPGradientProcessor(l2_norm_clip=1.0, noise_multiplier=1.0)
        with pytest.raises(ValueError, match="no microbatch"):
            proc.aggregate([])


class TestRDPAccountant:
    def test_zero_sampling_gives_zero_rdp(self):
        rdp = compute_rdp(0.0, 1.0, 100)
        assert np.allclose(rdp, 0.0)

    def test_full_batch_matches_gaussian_rdp(self):
        # q = 1: RDP(alpha) = alpha * T / (2 sigma^2).
        sigma, steps = 2.0, 10
        rdp = compute_rdp(1.0, sigma, steps, orders=(2, 4, 8))
        expected = np.array([2, 4, 8]) * steps / (2 * sigma ** 2)
        assert np.allclose(rdp, expected)

    def test_rdp_scales_linearly_in_steps(self):
        one = compute_rdp(0.01, 1.0, 1)
        many = compute_rdp(0.01, 1.0, 50)
        assert np.allclose(many, 50 * one)

    def test_epsilon_decreases_with_noise(self):
        eps = [compute_epsilon(0.01, s, 1000, 1e-5)
               for s in (0.5, 1.0, 2.0, 4.0)]
        assert eps == sorted(eps, reverse=True)

    def test_epsilon_increases_with_steps(self):
        eps = [compute_epsilon(0.01, 1.0, t, 1e-5)
               for t in (100, 1000, 10000)]
        assert eps == sorted(eps)

    def test_epsilon_increases_with_sampling_rate(self):
        eps = [compute_epsilon(q, 1.0, 1000, 1e-5)
               for q in (0.001, 0.01, 0.1)]
        assert eps == sorted(eps)

    def test_known_ballpark(self):
        # A classic setting: q=0.01, sigma=1.1, T=10000, delta=1e-5 gives
        # an epsilon in the low single digits (TF-Privacy reports ~4).
        eps = compute_epsilon(0.01, 1.1, 10000, 1e-5)
        assert 1.0 < eps < 10.0

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            rdp_to_epsilon(np.ones(3), (2, 3, 4), delta=0.0)

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError):
            compute_rdp(1.5, 1.0, 10)

    def test_invalid_sigma_raises(self):
        with pytest.raises(ValueError):
            compute_rdp(0.1, 0.0, 10)


class TestNoiseSearch:
    def test_binary_search_hits_target(self):
        q, steps, delta, target = 0.05, 500, 1e-5, 2.0
        sigma = noise_multiplier_for_epsilon(q, steps, delta, target)
        achieved = compute_epsilon(q, sigma, steps, delta)
        assert achieved <= target
        # Not over-noised: slightly less noise should violate the target.
        assert compute_epsilon(q, sigma * 0.9, steps, delta) > target * 0.9

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError, match="unreachable"):
            noise_multiplier_for_epsilon(0.5, 10 ** 6, 1e-5, 1e-6)
