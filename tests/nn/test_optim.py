"""Optimizer tests: convergence on quadratics, error handling."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter, Tensor, grad


def quadratic_loss(p: Parameter, target: np.ndarray):
    diff = p - Tensor(target)
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        target = np.array([3.0, -2.0])
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            loss = quadratic_loss(p, target)
            opt.step(grad(loss, [p]))
        assert np.allclose(p.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        target = np.array([5.0])
        histories = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.zeros(1))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.step(grad(quadratic_loss(p, target), [p]))
            histories[momentum] = abs(p.data[0] - 5.0)
        assert histories[0.9] < histories[0.0]

    def test_empty_params_raises(self):
        with pytest.raises(ValueError, match="empty parameter list"):
            SGD([], lr=0.1)

    def test_grad_length_mismatch_raises(self):
        opt = SGD([Parameter(np.zeros(2))], lr=0.1)
        with pytest.raises(ValueError, match="length mismatch"):
            opt.step([])

    def test_none_grad_skipped(self):
        p = Parameter(np.ones(2))
        SGD([p], lr=0.1).step([None])
        assert np.allclose(p.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, 2.0, 3.0])
        p = Parameter(np.zeros(3))
        opt = Adam([p], lr=0.05)
        for _ in range(500):
            opt.step(grad(quadratic_loss(p, target), [p]))
        assert np.allclose(p.data, target, atol=1e-3)

    def test_bias_correction_first_step(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.1, betas=(0.9, 0.999))
        opt.step([Tensor(np.array([1.0]))])
        # With bias correction the first step is ~ lr * sign(grad).
        assert np.isclose(p.data[0], -0.1, atol=1e-6)

    def test_accepts_numpy_grads(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        opt.step([np.array([1.0, -1.0])])
        assert p.data[0] < 0 < p.data[1]

    def test_handles_multiple_params(self):
        a = Parameter(np.zeros(2))
        b = Parameter(np.zeros(3))
        opt = Adam([a, b], lr=0.1)
        loss = (a * a).sum() + ((b - Tensor(np.ones(3))) ** 2).sum()
        opt.step(grad(loss, [a, b]))
        assert np.all(b.data > 0)

    def test_trains_tiny_network(self):
        from repro.nn import MLP
        from repro.nn import functional as F
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] * 2 - x[:, 1:] * 3 + 1)
        net = MLP(2, [16], 1, rng=rng)
        opt = Adam(net.parameters(), lr=1e-2, betas=(0.9, 0.999))
        first = None
        for _ in range(300):
            loss = F.mse_loss(net(Tensor(x)), Tensor(y))
            if first is None:
                first = loss.item()
            opt.step(grad(loss, net.parameters()))
        assert loss.item() < first * 0.05


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        from repro.nn.optim import clip_grad_norm
        g = [np.array([3.0, 4.0])]  # norm 5
        before = clip_grad_norm(g, max_norm=1.0)
        assert before == pytest.approx(5.0)
        assert np.allclose(g[0], [0.6, 0.8])

    def test_leaves_small_gradients(self):
        from repro.nn.optim import clip_grad_norm
        g = [np.array([0.3, 0.4])]
        clip_grad_norm(g, max_norm=10.0)
        assert np.allclose(g[0], [0.3, 0.4])

    def test_global_norm_across_params(self):
        from repro.nn.optim import clip_grad_norm
        g = [np.array([3.0]), np.array([4.0])]
        clip_grad_norm(g, max_norm=1.0)
        assert np.allclose(g[0], [0.6]) and np.allclose(g[1], [0.8])

    def test_skips_none(self):
        from repro.nn.optim import clip_grad_norm
        assert clip_grad_norm([None, np.array([1.0])], 10.0) == 1.0

    def test_invalid_norm(self):
        from repro.nn.optim import clip_grad_norm
        with pytest.raises(ValueError):
            clip_grad_norm([np.ones(2)], 0.0)


class TestStepLR:
    def test_decays_on_schedule(self):
        from repro.nn import StepLR
        opt = Adam([Parameter(np.zeros(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_validation(self):
        from repro.nn import StepLR
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=1, gamma=0.0)


class TestOptimizerStateDict:
    def test_adam_round_trip_preserves_moments(self):
        target = np.array([1.0, -2.0])
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.05)
        for _ in range(10):
            opt.step(grad(quadratic_loss(p, target), [p]))
        state = opt.state_dict()
        assert state["t"] == 10

        q = Parameter(p.data.copy())
        fresh = Adam([q], lr=0.9)  # wrong hyper-params on purpose
        fresh.load_state_dict(state)
        assert fresh.lr == opt.lr and fresh._t == opt._t
        for a, b in zip(fresh._m, opt._m):
            assert np.array_equal(a, b)
        # Identical next step from identical state.
        opt.step(grad(quadratic_loss(p, target), [p]))
        fresh.step(grad(quadratic_loss(q, target), [q]))
        assert np.array_equal(p.data, q.data)

    def test_state_dict_is_a_copy(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.05)
        opt.step([np.ones(2)])
        state = opt.state_dict()
        state["m"][0][:] = 99.0
        assert not np.array_equal(opt._m[0], state["m"][0])

    def test_sgd_round_trip_preserves_velocity(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.1, momentum=0.9)
        opt.step([np.array([1.0, -1.0])])
        state = opt.state_dict()
        q = Parameter(np.zeros(2))
        fresh = SGD([q], lr=0.5)
        fresh.load_state_dict(state)
        assert fresh.momentum == 0.9
        assert np.array_equal(fresh._velocity[0], opt._velocity[0])

    def test_moment_count_mismatch_rejected(self):
        opt = Adam([Parameter(np.zeros(2))], lr=0.1)
        state = opt.state_dict()
        state["m"] = state["m"] + [np.zeros(2)]
        with pytest.raises(ValueError, match="2 arrays"):
            opt.load_state_dict(state)

    def test_moment_shape_mismatch_rejected(self):
        opt = Adam([Parameter(np.zeros(2))], lr=0.1)
        state = opt.state_dict()
        state["v"] = [np.zeros(3)]
        with pytest.raises(ValueError, match="shape"):
            opt.load_state_dict(state)
