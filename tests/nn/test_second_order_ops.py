"""Systematic second-order (grad-of-grad) checks for smooth primitives.

For each op f we build s(x) = sum(g(x) * w) where g = d(sum f(x))/dx is
obtained with create_graph=True, then compare d s/d x against central
finite differences of the analytically-known first derivative.  This is
the machinery the WGAN-GP penalty exercises; any silent VJP bug would
surface here.
"""

import numpy as np
import pytest

from repro.nn import Tensor, grad, ops
from repro.nn import functional as F


RNG = np.random.default_rng(77)


def second_order_check(op, x: np.ndarray, eps: float = 1e-5,
                       atol: float = 1e-5):
    """Compare analytic d/dx [w . d(sum op(x))/dx] to finite differences."""
    w = RNG.normal(size=x.shape)

    def first_grad(values: np.ndarray) -> np.ndarray:
        t = Tensor(values.copy(), requires_grad=True)
        (g,) = grad(op(t).sum(), [t])
        return g.data

    t = Tensor(x.copy(), requires_grad=True)
    (g,) = grad(op(t).sum(), [t], create_graph=True)
    (hvp,) = grad((g * Tensor(w)).sum(), [t], allow_unused=True)
    if hvp is None:
        analytic = np.zeros_like(x)
    else:
        analytic = hvp.data

    numeric = np.zeros_like(x)
    flat = x.reshape(-1)
    out = numeric.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = (first_grad(x) * w).sum()
        flat[i] = orig - eps
        down = (first_grad(x) * w).sum()
        flat[i] = orig
        out[i] = (up - down) / (2 * eps)
    assert np.allclose(analytic, numeric, atol=atol), op


UNARY_CASES = [
    ("exp", ops.exp, RNG.normal(size=(3, 2)) * 0.5),
    ("log", ops.log, RNG.uniform(0.5, 2.0, size=(3, 2))),
    ("tanh", ops.tanh, RNG.normal(size=(3, 2))),
    ("sigmoid", ops.sigmoid, RNG.normal(size=(3, 2))),
    ("sqrt", ops.sqrt, RNG.uniform(0.5, 2.0, size=(3, 2))),
    ("cube", lambda t: ops.power(t, 3.0), RNG.normal(size=(3, 2))),
    ("reciprocal", lambda t: Tensor(1.0) / t,
     RNG.uniform(0.5, 2.0, size=(3, 2))),
    ("square_of_sum", lambda t: ops.sum_(t, axis=1) ** 2,
     RNG.normal(size=(3, 2))),
    ("softmax_entropy",
     lambda t: -(F.softmax(t) * F.log_softmax(t)).sum(axis=-1),
     RNG.normal(size=(2, 4))),
    ("l2_norm", lambda t: F.l2_norm(t, axis=1),
     RNG.uniform(0.5, 1.5, size=(3, 4))),
]


@pytest.mark.parametrize("name,op,x", UNARY_CASES,
                         ids=[c[0] for c in UNARY_CASES])
def test_second_order_unary(name, op, x):
    second_order_check(op, x.copy())


def test_second_order_through_matmul_chain():
    w1 = RNG.normal(size=(3, 4))
    w2 = RNG.normal(size=(4, 1))

    def op(t):
        return ops.tanh(ops.matmul(ops.tanh(ops.matmul(t, Tensor(w1))),
                                   Tensor(w2)))

    second_order_check(op, RNG.normal(size=(5, 3)))


def test_second_order_through_concat_and_slice():
    def op(t):
        joined = ops.concat([t, t * 2.0], axis=1)
        return (joined[:, 1:] ** 2).sum(axis=1)

    second_order_check(op, RNG.normal(size=(3, 2)))


def test_linear_function_has_zero_second_order():
    x = Tensor(RNG.normal(size=(4,)), requires_grad=True)
    (g,) = grad((x * 3.0).sum(), [x], create_graph=True)
    (h,) = grad(g.sum(), [x], allow_unused=True)
    assert h is None  # constant first derivative -> no path back to x
