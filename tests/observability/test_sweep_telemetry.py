"""Sweep telemetry integration: layout, merging, worker invariance.

The full serial-vs-2-worker byte-identity property (which needs fresh
processes to defeat the harness model cache) lives in
``tests/properties/test_determinism_battery.py``; these tests cover the
in-process plumbing.
"""

import json
import os

import pytest

from repro.experiments.configs import TINY
from repro.experiments.harness import clear_cache, run_sweep
from repro.observability.events import read_events
from repro.observability.telemetry import (cell_log_path,
                                           cell_metrics_path, cell_slug)


@pytest.fixture(autouse=True)
def fresh_harness():
    clear_cache()
    yield
    clear_cache()


class TestCellNaming:
    def test_cell_slug_flattens_tuples(self):
        assert cell_slug(("gcut", "dg")) == "gcut_dg"
        assert cell_slug(("gcut", "dg", 3)) == "gcut_dg_3"

    def test_cell_slug_sanitizes(self):
        assert "/" not in cell_slug(("a/b", "c d"))

    def test_cell_paths_under_cells_dir(self, tmp_path):
        path = cell_log_path(tmp_path, ("gcut", "dg"))
        assert path == str(tmp_path / "cells" / "gcut_dg.jsonl")
        assert cell_metrics_path(tmp_path, ("gcut", "dg")).endswith(
            "gcut_dg.metrics.json")


class TestSweepTelemetry:
    def _sweep(self, out, **kwargs):
        return run_sweep(["gcut"], ["dg"], scale=TINY, verbose=False,
                         telemetry=str(out), **kwargs)

    def test_run_directory_layout(self, tmp_path):
        out = tmp_path / "tel"
        result = self._sweep(out)
        assert not result.failures
        for name in ("parent.jsonl", "events.jsonl", "metrics.json",
                     "report.md"):
            assert (out / name).exists(), name
        assert (out / "cells" / "gcut_dg.jsonl").exists()
        assert (out / "cells" / "gcut_dg.metrics.json").exists()

    def test_telemetry_forces_cell_path(self, tmp_path):
        """Even a plain serial sweep must go through the cells path when
        telemetry is on, so workers=1 and workers=2 log identically."""
        self._sweep(tmp_path / "t")
        kinds = [e.kind
                 for e in read_events(tmp_path / "t" / "events.jsonl")]
        assert "cell.start" in kinds
        assert "cell.finish" in kinds

    def test_canonical_log_structure(self, tmp_path):
        self._sweep(tmp_path / "t")
        events = read_events(tmp_path / "t" / "events.jsonl")
        kinds = [e.kind for e in events]
        # Parent events first, then the cell's stream.
        assert kinds[0] == "sweep.start"
        assert kinds[1] == "sweep.finish"
        assert kinds[2] == "cell.start"
        assert kinds[-1] == "cell.finish"
        assert kinds.count("train.iteration") == TINY.dg_iterations
        assert [e.seq for e in events] == list(range(len(events)))
        # Canonical lines carry no volatile keys.
        raw = (tmp_path / "t" / "events.jsonl").read_text()
        assert "volatile" not in raw
        assert "wall" not in raw

    def test_merged_metrics_include_cell_registries(self, tmp_path):
        self._sweep(tmp_path / "t")
        metrics = json.loads((tmp_path / "t" / "metrics.json").read_text())
        assert metrics["counters"]["train.iterations"] == TINY.dg_iterations
        assert metrics["histograms"]["train.d_loss"]["count"] == \
            TINY.dg_iterations

    def test_report_rendered(self, tmp_path):
        self._sweep(tmp_path / "t")
        report = (tmp_path / "t" / "report.md").read_text()
        assert report.startswith("# Run report: sweep")
        assert "gcut/dg" in report

    def test_cache_hits_and_misses_emitted(self, tmp_path):
        cache = tmp_path / "cache"
        self._sweep(tmp_path / "t1", cache_dir=str(cache))
        clear_cache()  # drop the in-process model cache, keep the disk one
        self._sweep(tmp_path / "t2", cache_dir=str(cache))
        first = [e.kind for e in
                 read_events(tmp_path / "t1" / "events.jsonl")]
        second = [e.kind for e in
                  read_events(tmp_path / "t2" / "events.jsonl")]
        assert first.count("cache.miss") == 1
        assert first.count("cache.store") == 1
        assert second.count("cache.hit") == 1
        assert "train.iteration" not in second  # cell never trained

    def test_failed_cell_leaves_failure_event(self, tmp_path):
        result = self._sweep(tmp_path / "t", batch_size=10_000)
        assert len(result.failures) == 1
        events = read_events(tmp_path / "t" / "events.jsonl")
        failures = [e for e in events if e.kind == "cell.failure"]
        assert len(failures) == 1
        p = failures[0].payload
        assert p["dataset"] == "gcut" and p["model"] == "dg"
        assert p["exception_type"]
        finish = [e for e in events if e.kind == "cell.finish"]
        assert finish[0].payload["status"] == "failed"

    def test_multi_seed_sweep_has_per_replica_cells(self, tmp_path):
        result = self._sweep(tmp_path / "t", seeds=2)
        assert len(result.models) == 2
        events = read_events(tmp_path / "t" / "events.jsonl")
        cells = sorted({e.cell for e in events if e.cell})
        assert cells == ["gcut/dg/0", "gcut/dg/1"]
        assert (tmp_path / "t" / "cells" / "gcut_dg_0.jsonl").exists()

    def test_no_telemetry_writes_nothing(self, tmp_path):
        run_sweep(["gcut"], ["dg"], scale=TINY, verbose=False)
        assert not os.listdir(tmp_path)
