"""TrainingHistory windowing: bounded traces, resume closure, pinning."""

import pytest

from repro.core import DoppelGANger
from repro.core.trainer import TrainingHistory
from tests.conftest import tiny_dg_config


def _fresh(dataset, **overrides):
    return DoppelGANger(dataset.schema,
                        tiny_dg_config(iterations=10, **overrides))


class TestWindowing:
    def test_default_bound_is_finite(self):
        assert TrainingHistory().max_points == 4096

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            TrainingHistory(max_points=0)
        TrainingHistory(max_points=1)
        TrainingHistory(max_points=None)  # unbounded is explicit

    def test_record_trims_oldest_in_lockstep(self):
        h = TrainingHistory(max_points=3)
        for i in range(5):
            h.record(i, float(i), float(10 + i), float(20 + i))
        assert h.iterations == [2, 3, 4]
        assert h.d_loss == [2.0, 3.0, 4.0]
        assert h.g_loss == [12.0, 13.0, 14.0]
        assert h.wasserstein == [22.0, 23.0, 24.0]

    def test_window_is_pure_function_of_append_sequence(self):
        """The retained window depends only on what was recorded, never on
        when trimming ran -- the property resume-closure relies on."""
        windowed = TrainingHistory(max_points=10)
        unbounded = TrainingHistory(max_points=None)
        for i in range(100):
            windowed.record(i, i * 0.5, i * 0.25, i * 0.125)
            unbounded.record(i, i * 0.5, i * 0.25, i * 0.125)
        assert windowed.iterations == unbounded.iterations[-10:]
        assert windowed.d_loss == unbounded.d_loss[-10:]

    def test_memory_stays_pinned_over_long_runs(self):
        """A simulated million-iteration run must not grow the traces."""
        h = TrainingHistory(max_points=64)
        for i in range(20_000):
            h.record(i, 0.0, 0.0, 0.0)
            assert len(h.iterations) <= 64
        assert len(h.iterations) == len(h.d_loss) == len(h.g_loss) \
            == len(h.wasserstein) == 64
        assert h.iterations[0] == 20_000 - 64

    def test_unbounded_keeps_everything(self):
        h = TrainingHistory(max_points=None)
        for i in range(5000):
            h.record(i, 0.0, 0.0, 0.0)
        assert len(h.iterations) == 5000


class TestTrainingIntegration:
    def test_fit_history_window_bounds_traces(self, tiny_gcut):
        history = _fresh(tiny_gcut).fit(tiny_gcut, log_every=1,
                                        history_window=4)
        assert len(history.iterations) == 4
        assert history.iterations == [6, 7, 8, 9]

    def test_windowed_resume_closes_exactly(self, tiny_gcut, tmp_path):
        """Stop-at-7/resume with a window must reproduce the uninterrupted
        windowed run exactly -- checkpoints store the already-trimmed
        traces, and trimming is deterministic in the append sequence."""
        ck = tmp_path / "state.npz"
        baseline = _fresh(tiny_gcut).fit(tiny_gcut, log_every=1,
                                         history_window=5)
        _fresh(tiny_gcut).fit(tiny_gcut, log_every=1, iterations=7,
                              train_state_path=ck, checkpoint_every=7,
                              history_window=5)
        resumed = _fresh(tiny_gcut).fit(tiny_gcut, log_every=1,
                                        resume_from=ck, history_window=5)
        assert resumed.iterations == baseline.iterations
        assert resumed.d_loss == baseline.d_loss
        assert resumed.g_loss == baseline.g_loss
        assert resumed.wasserstein == baseline.wasserstein

    def test_window_does_not_change_trained_parameters(self, tiny_gcut):
        a = _fresh(tiny_gcut)
        b = _fresh(tiny_gcut)
        a.fit(tiny_gcut, log_every=1)
        b.fit(tiny_gcut, log_every=1, history_window=2)
        for pa, pb in zip(a.trainer.generator_params,
                          b.trainer.generator_params):
            assert (pa.data == pb.data).all()
